#pragma once

#include <memory>

#include "core/pareto.hpp"
#include "hw/device.hpp"
#include "hw/evaluator.hpp"
#include "hw/robust_eval.hpp"
#include "supernet/accuracy.hpp"
#include "supernet/cost_model.hpp"

namespace hadas::core {

/// The paper's S(b) = Fit(Acc_b, L_b, E_b) vector (eq. 3): backbone accuracy
/// plus hardware latency and energy measured as a standalone static model at
/// the device's default (performance-governor) DVFS setting.
struct StaticEval {
  double accuracy = 0.0;
  double latency_s = 0.0;
  double energy_j = 0.0;

  /// Maximized objective vector: [accuracy, -latency, -energy].
  Objectives objectives() const { return {accuracy, -latency_s, -energy_j}; }
};

/// Throws hw::MeasurementError unless every field is finite. A NaN objective
/// would otherwise flow silently through NSGA-II dominance sorting (NaN
/// comparisons are all false, corrupting front assignment), so every
/// measurement consumer validates before ranking.
void validate_finite(const StaticEval& eval);

/// Evaluates S(b) for backbones on one device — the OOE's fitness function.
/// Owns the cost model, accuracy surrogate and hardware evaluator so that
/// engines and benches share one consistent measurement pipeline.
class StaticEvaluator {
 public:
  StaticEvaluator(const supernet::SearchSpace& space, hw::Target target,
                  std::size_t cost_cache_capacity = 4096,
                  hw::RobustConfig robust = {});

  const supernet::SearchSpace& space() const { return space_; }
  const supernet::CostModel& cost_model() const { return cost_model_; }
  /// Memoized view of the cost model; engines route repeated analyses of
  /// the same backbone (static eval, exit bank, cost tables) through this.
  const supernet::CachedCostModel& cost_cache() const { return cost_cache_; }
  const supernet::AccuracySurrogate& surrogate() const { return *surrogate_; }
  const hw::HardwareEvaluator& hardware() const { return hw_; }
  /// The fault-tolerant measurement wrapper around hardware(). Inactive
  /// (bit-identical pass-through) unless a RobustConfig with faults was
  /// supplied; see DESIGN.md "Fault tolerance".
  const hw::RobustEvaluator& robust() const { return robust_; }

  /// Thread-safe: concurrent evaluations only share the cost cache, which
  /// is internally synchronized, and the robust layer's health tracker.
  /// Measurements route through robust() when it is active and are keyed by
  /// the backbone's genome hash, so injected faults are deterministic per
  /// backbone rather than per call order. Throws hw::MeasurementError on an
  /// unrecoverable (or non-finite) measurement, hw::DeviceUnavailableError
  /// when the device's circuit breaker is open.
  StaticEval evaluate(const supernet::BackboneConfig& config) const;

 private:
  supernet::SearchSpace space_;
  supernet::CostModel cost_model_;
  supernet::CachedCostModel cost_cache_;
  std::unique_ptr<supernet::AccuracySurrogate> surrogate_;
  hw::HardwareEvaluator hw_;
  hw::RobustEvaluator robust_;
};

}  // namespace hadas::core
