#pragma once

#include <memory>

#include "core/pareto.hpp"
#include "hw/device.hpp"
#include "hw/evaluator.hpp"
#include "supernet/accuracy.hpp"
#include "supernet/cost_model.hpp"

namespace hadas::core {

/// The paper's S(b) = Fit(Acc_b, L_b, E_b) vector (eq. 3): backbone accuracy
/// plus hardware latency and energy measured as a standalone static model at
/// the device's default (performance-governor) DVFS setting.
struct StaticEval {
  double accuracy = 0.0;
  double latency_s = 0.0;
  double energy_j = 0.0;

  /// Maximized objective vector: [accuracy, -latency, -energy].
  Objectives objectives() const { return {accuracy, -latency_s, -energy_j}; }
};

/// Evaluates S(b) for backbones on one device — the OOE's fitness function.
/// Owns the cost model, accuracy surrogate and hardware evaluator so that
/// engines and benches share one consistent measurement pipeline.
class StaticEvaluator {
 public:
  StaticEvaluator(const supernet::SearchSpace& space, hw::Target target,
                  std::size_t cost_cache_capacity = 4096);

  const supernet::SearchSpace& space() const { return space_; }
  const supernet::CostModel& cost_model() const { return cost_model_; }
  /// Memoized view of the cost model; engines route repeated analyses of
  /// the same backbone (static eval, exit bank, cost tables) through this.
  const supernet::CachedCostModel& cost_cache() const { return cost_cache_; }
  const supernet::AccuracySurrogate& surrogate() const { return *surrogate_; }
  const hw::HardwareEvaluator& hardware() const { return hw_; }

  /// Thread-safe: concurrent evaluations only share the cost cache, which
  /// is internally synchronized.
  StaticEval evaluate(const supernet::BackboneConfig& config) const;

 private:
  supernet::SearchSpace space_;
  supernet::CostModel cost_model_;
  supernet::CachedCostModel cost_cache_;
  std::unique_ptr<supernet::AccuracySurrogate> surrogate_;
  hw::HardwareEvaluator hw_;
};

}  // namespace hadas::core
