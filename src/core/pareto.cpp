#include "core/pareto.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hadas::core {

bool dominates(const Objectives& a, const Objectives& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dominates: dim mismatch");
  bool strictly_better = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] < b[k]) return false;
    if (a[k] > b[k]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<Objectives>& points) {
  const std::size_t n = points.size();
  std::vector<std::vector<std::size_t>> dominated_by(n);  // i dominates these
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> fronts;

  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (dominates(points[i], points[j]))
        dominated_by[i].push_back(j);
      else if (dominates(points[j], points[i]))
        ++domination_count[i];
    }
    if (domination_count[i] == 0) current.push_back(i);
  }

  while (!current.empty()) {
    fronts.push_back(current);
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominated_by[i]) {
        if (--domination_count[j] == 0) next.push_back(j);
      }
    }
    current = std::move(next);
  }
  return fronts;
}

std::vector<double> crowding_distance(const std::vector<Objectives>& points,
                                      const std::vector<std::size_t>& front) {
  const std::size_t m = front.size();
  std::vector<double> dist(m, 0.0);
  if (m == 0) return dist;
  const std::size_t dims = points[front[0]].size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (m <= 2) {
    std::fill(dist.begin(), dist.end(), kInf);
    return dist;
  }
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;
  for (std::size_t k = 0; k < dims; ++k) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return points[front[a]][k] < points[front[b]][k];
    });
    const double lo = points[front[order.front()]][k];
    const double hi = points[front[order.back()]][k];
    dist[order.front()] = kInf;
    dist[order.back()] = kInf;
    if (hi <= lo) continue;
    for (std::size_t i = 1; i + 1 < m; ++i) {
      if (dist[order[i]] == kInf) continue;
      dist[order[i]] += (points[front[order[i + 1]]][k] -
                         points[front[order[i - 1]]][k]) /
                        (hi - lo);
    }
  }
  return dist;
}

std::vector<std::size_t> pareto_front(const std::vector<Objectives>& points) {
  if (points.empty()) return {};
  return non_dominated_sort(points).front();
}

namespace {
/// Recursive dimension-sweep hypervolume (maximization, exclusive slices).
double hv_recursive(std::vector<Objectives> points, const Objectives& ref) {
  const std::size_t dims = ref.size();
  // Drop points that do not strictly dominate the reference in every axis.
  points.erase(std::remove_if(points.begin(), points.end(),
                              [&](const Objectives& p) {
                                for (std::size_t k = 0; k < dims; ++k)
                                  if (p[k] <= ref[k]) return true;
                                return false;
                              }),
               points.end());
  if (points.empty()) return 0.0;

  if (dims == 1) {
    double best = ref[0];
    for (const auto& p : points) best = std::max(best, p[0]);
    return best - ref[0];
  }

  // Sort by the last axis descending and sweep exclusive slabs.
  std::sort(points.begin(), points.end(),
            [dims](const Objectives& a, const Objectives& b) {
              return a[dims - 1] > b[dims - 1];
            });
  double volume = 0.0;
  std::vector<Objectives> seen;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double upper = points[i][dims - 1];
    const double lower = (i + 1 < points.size()) ? points[i + 1][dims - 1] : ref[dims - 1];
    Objectives proj(points[i].begin(), points[i].end() - 1);
    seen.push_back(std::move(proj));
    if (upper <= lower) continue;
    Objectives sub_ref(ref.begin(), ref.end() - 1);
    volume += (upper - lower) * hv_recursive(seen, sub_ref);
  }
  return volume;
}
}  // namespace

double hypervolume(const std::vector<Objectives>& points,
                   const Objectives& reference) {
  if (reference.empty()) throw std::invalid_argument("hypervolume: empty reference");
  for (const auto& p : points)
    if (p.size() != reference.size())
      throw std::invalid_argument("hypervolume: dim mismatch");
  if (reference.size() == 2) {
    // Exact 2-D sweep: sort by x descending, accumulate staircase area.
    std::vector<Objectives> pts;
    for (const auto& p : points)
      if (p[0] > reference[0] && p[1] > reference[1]) pts.push_back(p);
    if (pts.empty()) return 0.0;
    std::sort(pts.begin(), pts.end(), [](const Objectives& a, const Objectives& b) {
      return a[0] > b[0] || (a[0] == b[0] && a[1] > b[1]);
    });
    double area = 0.0;
    double best_y = reference[1];
    for (const auto& p : pts) {
      if (p[1] > best_y) {
        area += (p[0] - reference[0]) * (p[1] - best_y);
        best_y = p[1];
      }
    }
    return area;
  }
  return hv_recursive(points, reference);
}

double coverage(const std::vector<Objectives>& a,
                const std::vector<Objectives>& b) {
  if (b.empty()) return 0.0;
  std::size_t covered = 0;
  for (const auto& pb : b) {
    for (const auto& pa : a) {
      if (dominates(pa, pb)) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(b.size());
}

double ratio_of_dominance(const std::vector<Objectives>& a,
                          const std::vector<Objectives>& b) {
  if (a.empty()) return 0.0;
  std::size_t dominant = 0;
  for (const auto& pa : a) {
    for (const auto& pb : b) {
      if (dominates(pa, pb)) {
        ++dominant;
        break;
      }
    }
  }
  return static_cast<double>(dominant) / static_cast<double>(a.size());
}

bool ParetoArchive::insert(const Objectives& objectives, std::size_t payload) {
  for (const auto& existing : objs_) {
    if (dominates(existing, objectives) || existing == objectives) return false;
  }
  // Evict entries the newcomer dominates.
  std::size_t write = 0;
  for (std::size_t i = 0; i < objs_.size(); ++i) {
    if (!dominates(objectives, objs_[i])) {
      if (write != i) {
        objs_[write] = std::move(objs_[i]);
        entries_[write] = entries_[i];
      }
      ++write;
    }
  }
  objs_.resize(write);
  entries_.resize(write);
  objs_.push_back(objectives);
  entries_.push_back(payload);
  return true;
}

}  // namespace hadas::core
