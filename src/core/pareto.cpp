#include "core/pareto.hpp"

#include <algorithm>
#include <iterator>
#include <limits>
#include <stdexcept>

#include "core/eval_batch.hpp"

namespace hadas::core {

bool dominates(const Objectives& a, const Objectives& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dominates: dim mismatch");
  return dominates_span(a.data(), b.data(), a.size());
}

bool dominates_span(const double* a, const double* b, std::size_t dims) {
  bool strictly_better = false;
  for (std::size_t k = 0; k < dims; ++k) {
    if (a[k] < b[k]) return false;
    if (a[k] > b[k]) strictly_better = true;
  }
  return strictly_better;
}

namespace {

/// Shared Deb bookkeeping over any row accessor (AoS vector-of-vectors or
/// SoA batch). Fronts come out in ascending index order — the canonical
/// order FrontLevels maintains incrementally.
template <typename RowFn>
std::vector<std::vector<std::size_t>> deb_sort(std::size_t n, std::size_t dims,
                                               RowFn row) {
  std::vector<std::vector<std::size_t>> dominated_by(n);  // i dominates these
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> fronts;

  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    const double* pi = row(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (dominates_span(pi, row(j), dims))
        dominated_by[i].push_back(j);
      else if (dominates_span(row(j), pi, dims))
        ++domination_count[i];
    }
    if (domination_count[i] == 0) current.push_back(i);
  }

  while (!current.empty()) {
    std::sort(current.begin(), current.end());
    fronts.push_back(current);
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominated_by[i]) {
        if (--domination_count[j] == 0) next.push_back(j);
      }
    }
    current = std::move(next);
  }
  return fronts;
}

template <typename RowFn>
std::vector<double> crowding_impl(std::size_t dims, RowFn row,
                                  const std::vector<std::size_t>& front) {
  const std::size_t m = front.size();
  std::vector<double> dist(m, 0.0);
  if (m == 0) return dist;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (m <= 2) {
    std::fill(dist.begin(), dist.end(), kInf);
    return dist;
  }
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;
  for (std::size_t k = 0; k < dims; ++k) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return row(front[a])[k] < row(front[b])[k];
    });
    const double lo = row(front[order.front()])[k];
    const double hi = row(front[order.back()])[k];
    dist[order.front()] = kInf;
    dist[order.back()] = kInf;
    if (hi <= lo) continue;
    for (std::size_t i = 1; i + 1 < m; ++i) {
      if (dist[order[i]] == kInf) continue;
      dist[order[i]] +=
          (row(front[order[i + 1]])[k] - row(front[order[i - 1]])[k]) /
          (hi - lo);
    }
  }
  return dist;
}

}  // namespace

std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<Objectives>& points) {
  const std::size_t dims = points.empty() ? 0 : points.front().size();
  return deb_sort(points.size(), dims,
                  [&](std::size_t i) { return points[i].data(); });
}

std::vector<std::vector<std::size_t>> non_dominated_sort(
    const ObjectiveBatch& points) {
  return deb_sort(points.size(), points.dims(),
                  [&](std::size_t i) { return points.row(i); });
}

std::vector<double> crowding_distance(const std::vector<Objectives>& points,
                                      const std::vector<std::size_t>& front) {
  const std::size_t dims = points.empty() ? 0 : points.front().size();
  return crowding_impl(dims, [&](std::size_t i) { return points[i].data(); },
                       front);
}

std::vector<double> crowding_distance(const ObjectiveBatch& points,
                                      const std::vector<std::size_t>& front) {
  return crowding_impl(points.dims(), [&](std::size_t i) { return points.row(i); },
                       front);
}

void FrontLevels::clear() {
  fronts_.clear();
  rank_.clear();
}

void FrontLevels::rebuild(const ObjectiveBatch& points) {
  fronts_ = non_dominated_sort(points);
  rank_.assign(points.size(), 0);
  for (std::size_t f = 0; f < fronts_.size(); ++f)
    for (std::size_t idx : fronts_[f]) rank_[idx] = f;
}

void FrontLevels::insert(const ObjectiveBatch& points, std::size_t idx) {
  if (idx != rank_.size())
    throw std::invalid_argument("FrontLevels::insert: non-contiguous index");
  const std::size_t dims = points.dims();
  const double* p = points.row(idx);

  // Find the first level where nothing dominates the newcomer.
  std::size_t f = 0;
  for (; f < fronts_.size(); ++f) {
    bool dominated = false;
    for (std::size_t m : fronts_[f]) {
      if (dominates_span(points.row(m), p, dims)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) break;
  }
  rank_.push_back(f);
  if (f == fronts_.size()) {
    fronts_.push_back({idx});
    return;
  }

  // Members of level f the newcomer dominates get displaced downward.
  std::vector<std::size_t> moved;
  auto& front = fronts_[f];
  std::size_t w = 0;
  for (std::size_t r = 0; r < front.size(); ++r) {
    if (dominates_span(p, points.row(front[r]), dims))
      moved.push_back(front[r]);
    else
      front[w++] = front[r];
  }
  front.resize(w);
  front.push_back(idx);  // idx is the largest row index: ascending order kept

  // Cascade: a displaced set from level l can only push members of level
  // l+1 further down (nothing in l+1 can dominate a former member of l), so
  // a single downward sweep restores all invariants.
  std::size_t level = f + 1;
  while (!moved.empty()) {
    if (level == fronts_.size()) {
      for (std::size_t m : moved) rank_[m] = level;
      fronts_.push_back(std::move(moved));
      return;
    }
    auto& cur = fronts_[level];
    std::vector<std::size_t> displaced;
    w = 0;
    for (std::size_t r = 0; r < cur.size(); ++r) {
      bool dom = false;
      for (std::size_t t : moved) {
        if (dominates_span(points.row(t), points.row(cur[r]), dims)) {
          dom = true;
          break;
        }
      }
      if (dom)
        displaced.push_back(cur[r]);
      else
        cur[w++] = cur[r];
    }
    cur.resize(w);
    std::vector<std::size_t> merged;
    merged.reserve(cur.size() + moved.size());
    std::merge(cur.begin(), cur.end(), moved.begin(), moved.end(),
               std::back_inserter(merged));
    cur = std::move(merged);
    for (std::size_t t : moved) rank_[t] = level;
    moved = std::move(displaced);
    ++level;
  }
}

void FrontLevels::select(const std::vector<std::size_t>& keep) {
  std::vector<std::size_t> old_to_new(rank_.size(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < keep.size(); ++i) old_to_new[keep[i]] = i;

  std::vector<std::vector<std::size_t>> next_fronts;
  std::vector<std::size_t> next_rank(keep.size(), 0);
  for (const auto& front : fronts_) {
    std::vector<std::size_t> kept;
    for (std::size_t idx : front) {
      const std::size_t renumbered = old_to_new[idx];
      if (renumbered == static_cast<std::size_t>(-1)) continue;
      kept.push_back(renumbered);
    }
    if (kept.empty()) continue;
    // keep[] is front-major ascending, so renumbering is monotone within a
    // front and `kept` stays ascending.
    for (std::size_t idx : kept) next_rank[idx] = next_fronts.size();
    next_fronts.push_back(std::move(kept));
  }
  fronts_ = std::move(next_fronts);
  rank_ = std::move(next_rank);
}

bool FrontLevels::matches_full_sort(const ObjectiveBatch& points) const {
  return fronts_ == non_dominated_sort(points);
}

std::vector<std::size_t> pareto_front(const std::vector<Objectives>& points) {
  if (points.empty()) return {};
  return non_dominated_sort(points).front();
}

namespace {
/// Recursive dimension-sweep hypervolume (maximization, exclusive slices).
double hv_recursive(std::vector<Objectives> points, const Objectives& ref) {
  const std::size_t dims = ref.size();
  // Drop points that do not strictly dominate the reference in every axis.
  points.erase(std::remove_if(points.begin(), points.end(),
                              [&](const Objectives& p) {
                                for (std::size_t k = 0; k < dims; ++k)
                                  if (p[k] <= ref[k]) return true;
                                return false;
                              }),
               points.end());
  if (points.empty()) return 0.0;

  if (dims == 1) {
    double best = ref[0];
    for (const auto& p : points) best = std::max(best, p[0]);
    return best - ref[0];
  }

  // Sort by the last axis descending and sweep exclusive slabs.
  std::sort(points.begin(), points.end(),
            [dims](const Objectives& a, const Objectives& b) {
              return a[dims - 1] > b[dims - 1];
            });
  double volume = 0.0;
  std::vector<Objectives> seen;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double upper = points[i][dims - 1];
    const double lower = (i + 1 < points.size()) ? points[i + 1][dims - 1] : ref[dims - 1];
    Objectives proj(points[i].begin(), points[i].end() - 1);
    seen.push_back(std::move(proj));
    if (upper <= lower) continue;
    Objectives sub_ref(ref.begin(), ref.end() - 1);
    volume += (upper - lower) * hv_recursive(seen, sub_ref);
  }
  return volume;
}
}  // namespace

double hypervolume(const std::vector<Objectives>& points,
                   const Objectives& reference) {
  if (reference.empty()) throw std::invalid_argument("hypervolume: empty reference");
  for (const auto& p : points)
    if (p.size() != reference.size())
      throw std::invalid_argument("hypervolume: dim mismatch");
  if (reference.size() == 2) {
    // Exact 2-D sweep: sort by x descending, accumulate staircase area.
    std::vector<Objectives> pts;
    for (const auto& p : points)
      if (p[0] > reference[0] && p[1] > reference[1]) pts.push_back(p);
    if (pts.empty()) return 0.0;
    std::sort(pts.begin(), pts.end(), [](const Objectives& a, const Objectives& b) {
      return a[0] > b[0] || (a[0] == b[0] && a[1] > b[1]);
    });
    double area = 0.0;
    double best_y = reference[1];
    for (const auto& p : pts) {
      if (p[1] > best_y) {
        area += (p[0] - reference[0]) * (p[1] - best_y);
        best_y = p[1];
      }
    }
    return area;
  }
  return hv_recursive(points, reference);
}

double coverage(const std::vector<Objectives>& a,
                const std::vector<Objectives>& b) {
  if (b.empty()) return 0.0;
  std::size_t covered = 0;
  for (const auto& pb : b) {
    for (const auto& pa : a) {
      if (dominates(pa, pb)) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(b.size());
}

double ratio_of_dominance(const std::vector<Objectives>& a,
                          const std::vector<Objectives>& b) {
  if (a.empty()) return 0.0;
  std::size_t dominant = 0;
  for (const auto& pa : a) {
    for (const auto& pb : b) {
      if (dominates(pa, pb)) {
        ++dominant;
        break;
      }
    }
  }
  return static_cast<double>(dominant) / static_cast<double>(a.size());
}

bool ParetoArchive::insert(const Objectives& objectives, std::size_t payload) {
  for (const auto& existing : objs_) {
    if (dominates(existing, objectives) || existing == objectives) return false;
  }
  // Evict entries the newcomer dominates.
  std::size_t write = 0;
  for (std::size_t i = 0; i < objs_.size(); ++i) {
    if (!dominates(objectives, objs_[i])) {
      if (write != i) {
        objs_[write] = std::move(objs_[i]);
        entries_[write] = entries_[i];
      }
      ++write;
    }
  }
  objs_.resize(write);
  entries_.resize(write);
  objs_.push_back(objectives);
  entries_.push_back(payload);
  return true;
}

}  // namespace hadas::core
