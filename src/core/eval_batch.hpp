#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/pareto.hpp"

namespace hadas::core {

/// Integer genome alias (mirrors nsga2.hpp; kept here so the batch layer has
/// no dependency on the engine header).
using IntGenomeSpan = const std::int32_t*;

/// Structure-of-arrays storage for objective vectors: `size x dims` doubles
/// in one contiguous allocation. The dominance and crowding kernels in
/// pareto.cpp run over these flat rows instead of chasing one heap-allocated
/// std::vector<double> per individual, which is what made `rank_population`
/// copy every Objectives vector into scratch on every call.
class ObjectiveBatch {
 public:
  ObjectiveBatch() = default;
  explicit ObjectiveBatch(std::size_t dims) : dims_(dims) {}

  std::size_t size() const { return dims_ == 0 ? 0 : values_.size() / dims_; }
  std::size_t dims() const { return dims_; }
  bool empty() const { return values_.empty(); }

  const double* row(std::size_t i) const { return values_.data() + i * dims_; }
  double* row(std::size_t i) { return values_.data() + i * dims_; }

  /// Append one point; the batch adopts the dimensionality of the first
  /// point it sees. Returns the new row index.
  std::size_t push_back(const Objectives& point);

  /// Copy row i back out as an owning Objectives vector (boundary use only).
  Objectives to_objectives(std::size_t i) const;

  /// Replace the contents with the given points (shared dimensionality).
  void assign(const std::vector<Objectives>& points);

  /// Keep exactly the rows listed in `keep` (old indices, any order),
  /// renumbering them 0..keep.size()-1 in list order. Compacts in place.
  void select(const std::vector<std::size_t>& keep);

  void clear() { values_.clear(); }
  void reserve(std::size_t points) { values_.reserve(points * dims_); }

 private:
  std::size_t dims_ = 0;
  std::vector<double> values_;
};

/// Structure-of-arrays storage for fixed-length integer genomes:
/// `size x genome_len` int32 in one contiguous allocation.
class GenomeBatch {
 public:
  GenomeBatch() = default;
  explicit GenomeBatch(std::size_t genome_len) : len_(genome_len) {}

  std::size_t size() const { return len_ == 0 ? 0 : values_.size() / len_; }
  std::size_t genome_len() const { return len_; }

  const std::int32_t* row(std::size_t i) const { return values_.data() + i * len_; }
  std::int32_t* row(std::size_t i) { return values_.data() + i * len_; }

  std::size_t push_back(const std::vector<std::int32_t>& genome);

  std::vector<std::int32_t> to_genome(std::size_t i) const;

  void select(const std::vector<std::size_t>& keep);

  void clear() { values_.clear(); }
  void reserve(std::size_t genomes) { values_.reserve(genomes * len_); }

 private:
  std::size_t len_ = 0;
  std::vector<std::int32_t> values_;
};

/// One evaluated population in SoA form: genome i lives at genomes.row(i),
/// its objective vector at objectives.row(i). This is the layout the NSGA-II
/// inner loop works on; AoS Individual structs only appear at the API
/// boundary (results, observers).
struct EvalBatch {
  GenomeBatch genomes;
  ObjectiveBatch objectives;

  std::size_t size() const { return objectives.size(); }

  /// Keep the listed rows (renumbered in list order) in both arrays.
  void select(const std::vector<std::size_t>& keep) {
    genomes.select(keep);
    objectives.select(keep);
  }
};

}  // namespace hadas::core
