#include "core/eval_batch.hpp"

#include <stdexcept>

namespace hadas::core {

std::size_t ObjectiveBatch::push_back(const Objectives& point) {
  if (dims_ == 0) dims_ = point.size();
  if (point.size() != dims_)
    throw std::invalid_argument("ObjectiveBatch: dim mismatch");
  values_.insert(values_.end(), point.begin(), point.end());
  return size() - 1;
}

Objectives ObjectiveBatch::to_objectives(std::size_t i) const {
  const double* r = row(i);
  return Objectives(r, r + dims_);
}

void ObjectiveBatch::assign(const std::vector<Objectives>& points) {
  values_.clear();
  if (!points.empty() && dims_ == 0) dims_ = points.front().size();
  values_.reserve(points.size() * dims_);
  for (const auto& p : points) {
    if (p.size() != dims_)
      throw std::invalid_argument("ObjectiveBatch: dim mismatch");
    values_.insert(values_.end(), p.begin(), p.end());
  }
}

void ObjectiveBatch::select(const std::vector<std::size_t>& keep) {
  std::vector<double> next;
  next.reserve(keep.size() * dims_);
  for (std::size_t old : keep) {
    const double* r = row(old);
    next.insert(next.end(), r, r + dims_);
  }
  values_ = std::move(next);
}

std::size_t GenomeBatch::push_back(const std::vector<std::int32_t>& genome) {
  if (len_ == 0) len_ = genome.size();
  if (genome.size() != len_)
    throw std::invalid_argument("GenomeBatch: length mismatch");
  values_.insert(values_.end(), genome.begin(), genome.end());
  return size() - 1;
}

std::vector<std::int32_t> GenomeBatch::to_genome(std::size_t i) const {
  const std::int32_t* r = row(i);
  return std::vector<std::int32_t>(r, r + len_);
}

void GenomeBatch::select(const std::vector<std::size_t>& keep) {
  std::vector<std::int32_t> next;
  next.reserve(keep.size() * len_);
  for (std::size_t old : keep) {
    const std::int32_t* r = row(old);
    next.insert(next.end(), r, r + len_);
  }
  values_ = std::move(next);
}

}  // namespace hadas::core
