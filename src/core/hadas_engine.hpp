#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ioe.hpp"
#include "core/static_eval.hpp"
#include "data/synthetic_task.hpp"
#include "dynn/exit_bank.hpp"
#include "dynn/multi_exit_cost.hpp"
#include "exec/dispatcher.hpp"
#include "exec/eval_cache.hpp"
#include "util/rng.hpp"

namespace hadas::core {

/// Budgets and hyper-parameters of a full bi-level HADAS run. The paper's
/// budgets (Sec. V-A) are 450 OOE iterations and 3500 IOE iterations with
/// #iterations = generations x population; the defaults here match that at
/// a laptop-friendly scale and can be raised to paper scale.
struct HadasConfig {
  std::size_t outer_population = 30;
  std::size_t outer_generations = 15;
  /// |P_B^g'| — backbones per generation handed to an IOE (early selection).
  std::size_t ioe_backbones_per_generation = 3;
  double crossover_prob = 0.9;
  double mutation_prob = -1.0;  ///< per-gene; <0 means 1/genome_length
  IoeConfig ioe;
  dynn::ExitBankConfig bank;
  data::DataConfig data;
  /// Keep per-candidate IOE exploration histories (Fig. 5 bottom clouds).
  bool keep_inner_history = true;
  /// Optional deployment constraint: backbones whose STATIC latency exceeds
  /// this budget are demoted below every feasible candidate in the outer
  /// ranking (constrained-domination, Deb's rule), so the search spends its
  /// IOE budget only on deployable designs. <= 0 disables the constraint.
  double max_latency_s = 0.0;
  std::uint64_t seed = 2023;
  /// Fault-tolerant measurement envelope (retry/backoff, sample aggregation,
  /// circuit breaker). Inactive by default: all measurements pass through
  /// bit-identically. Activated by non-zero fault rates in robust.faults or
  /// by robust.engage; see DESIGN.md "Fault tolerance".
  hw::RobustConfig robust;
  /// When non-empty, run() writes a resumable checkpoint chain rooted at
  /// this path after every `checkpoint_every` completed outer generations.
  /// Each write is durable (write-to-temp + fsync + atomic rename, with a
  /// versioned header and CRC-64 footer) and the last `checkpoint_keep`
  /// snapshots are rotated as <path>, <path>.1, ... On startup run()
  /// resumes from the newest snapshot that passes validation and matches
  /// this config's fingerprint, skipping corrupt snapshots with a warning
  /// through `checkpoint_warn`. A resumed search reproduces the
  /// uninterrupted run's final result bit-identically.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 1;
  /// Rotated checkpoint snapshots retained (clamped to >= 1).
  std::size_t checkpoint_keep = 3;
  /// Sink for checkpoint-recovery warnings (corrupt snapshot skipped during
  /// resume). Empty = stderr.
  std::function<void(const std::string&)> checkpoint_warn;
  /// Parallel-execution knobs: per-generation static evaluations and the
  /// per-generation IOE runs are dispatched over `exec.threads` workers
  /// (0 = auto, 1 = serial fallback; HADAS_THREADS overrides). The result
  /// is bit-identical at any thread count — see DESIGN.md "Parallel
  /// execution" for the determinism contract.
  exec::ExecConfig exec;
  /// Extra material mixed into the checkpoint fingerprint (appended only
  /// when non-empty, so existing checkpoints keep validating). The dist
  /// layer salts each island ("island:<i>/<K>") so one island can never
  /// resume from another island's chain even when their budgets coincide.
  std::string fingerprint_salt;
  /// Cooperative cancellation: when set and it becomes true, run() stops at
  /// the next generation boundary, writes a checkpoint (if checkpointing is
  /// on) and returns with HadasResult::interrupted set. The state written is
  /// exactly the boundary state, so a later resume reproduces the
  /// uninterrupted run bit-identically. Used for graceful SIGINT/SIGTERM.
  const std::atomic<bool>* cancel = nullptr;
  /// Observe-only hook invoked after every completed outer generation with
  /// the number of generations finished so far. Must not mutate search
  /// state; the dist worker uses it to refresh its heartbeat file.
  std::function<void(std::size_t)> on_generation;
};

/// A fully specified dynamic design: the paper's (b*, x*, f*) triple with
/// its static and dynamic evaluations.
struct FinalSolution {
  supernet::BackboneConfig backbone;
  dynn::ExitPlacement placement;
  hw::DvfsSetting setting;
  StaticEval static_eval;
  dynn::DynamicMetrics dynamic;
};

/// Everything learned about one explored backbone.
struct BackboneOutcome {
  supernet::BackboneConfig config;
  StaticEval static_eval;
  bool ioe_ran = false;
  std::vector<InnerSolution> inner_pareto;
  std::vector<InnerSolution> inner_history;  ///< kept if keep_inner_history
  double inner_hv = 0.0;  ///< hypervolume of inner_pareto in (gain, acc)
};

/// Result of a bi-level run.
struct HadasResult {
  std::vector<BackboneOutcome> backbones;   ///< every distinct S-evaluated b
  std::vector<std::size_t> static_front;    ///< indices: Pareto set under S
  std::vector<FinalSolution> final_pareto;  ///< (b*, x*, f*) set, non-dominated
                                            ///< in (energy_gain, oracle_acc)
  std::size_t outer_evaluations = 0;        ///< distinct S(b) evaluations
  std::size_t inner_evaluations = 0;        ///< summed IOE evaluations
  /// Health of this engine's device under the robust measurement envelope
  /// (all-zero when the robust layer is inactive).
  hw::HealthReport device_health;
  /// Generation the run resumed from (0 = started fresh).
  std::size_t resumed_from_generation = 0;
  /// Chain slot the run resumed from (empty = started fresh).
  std::string resumed_from_file;
  /// Corrupt newer snapshots skipped before finding a valid one.
  std::size_t corrupt_checkpoints_skipped = 0;
  /// True when run() stopped early at a generation boundary because
  /// HadasConfig::cancel fired. The partial result is valid as far as it
  /// goes; rerunning with the same checkpoint chain continues the search.
  bool interrupted = false;
};

/// Mid-search snapshot: everything run() needs to continue from the start of
/// generation `next_generation` exactly as the uninterrupted run would.
/// Serialized via core/serialize (checkpoint_to_json / checkpoint_from_json).
struct SearchCheckpoint {
  /// Fingerprint of the searched problem (seed, budgets, space shape).
  /// Resume refuses a checkpoint whose fingerprint mismatches the engine's —
  /// except outer_generations, which may grow between runs (extending a
  /// finished search is the legitimate use-case).
  std::string fingerprint;
  std::size_t next_generation = 0;
  hadas::util::Rng::State rng;
  std::vector<supernet::Genome> population;
  std::vector<BackboneOutcome> backbones;
  std::size_t outer_evaluations = 0;
  std::size_t inner_evaluations = 0;
};

/// Canonical fingerprint of the searched problem for checkpoint validation.
/// Covers everything that changes the evaluation/evolution stream (seed,
/// population size, IOE budgets, data/bank parameters, fault model) but NOT
/// outer_generations or execution knobs (thread count, cache sizes) — those
/// may differ between the interrupted and the resuming process.
std::string checkpoint_fingerprint(const supernet::SearchSpace& space,
                                   const HadasConfig& config);

/// Constrained-domination objectives (Deb's rule) used by the outer ranking:
/// feasible evaluations keep their real objective vector; latency-infeasible
/// ones collapse to a uniformly-worse vector ordered by violation.
/// max_latency_s <= 0 disables the constraint.
Objectives constrained_objectives(const StaticEval& eval, double max_latency_s);

/// The final (b*, x*, f*) Pareto set in (energy_gain, oracle_accuracy) over
/// every inner solution of `backbones` — the pure function run() finishes
/// with. Exposed so the dist layer can regenerate an island's final result
/// from its last checkpoint byte-identically after a crash.
std::vector<FinalSolution> final_pareto_of(
    const std::vector<BackboneOutcome>& backbones);

/// Seed material for continuing a search: genomes to inject into the first
/// generation plus backbones whose evaluations are already known (their
/// static evals are reused verbatim; backbones with ioe_ran keep their inner
/// Pareto sets and are not re-explored).
struct WarmStart {
  std::vector<supernet::Genome> population;
  std::vector<BackboneOutcome> known;
  /// Migrant genomes to splice into the population tail — but ONLY when the
  /// run resumes from a checkpoint whose next_generation equals
  /// `immigrants_at_generation`. The guard makes island migration replayable:
  /// a worker that crashes mid-round and resumes from a later (mid-round)
  /// checkpoint must not re-apply immigrants the population already absorbed.
  /// At least one native genome is always kept.
  std::vector<supernet::Genome> immigrants;
  std::size_t immigrants_at_generation = 0;
};

/// Build a warm start from a previously saved final Pareto set (e.g. loaded
/// via core::final_pareto_from_json): each distinct backbone becomes a known
/// outcome carrying its solutions, and seeds the initial population.
WarmStart warm_start_from_solutions(const supernet::SearchSpace& space,
                                    const std::vector<FinalSolution>& solutions);

/// Warm-seed pool for one IOE launch: elite inner solutions from every
/// backbone whose IOE already ran (elites change little between
/// generations), re-encoded into the target backbone's (X, F) genome space —
/// placement bits are translated by eligible-position index and DVFS indices
/// clamped to the device tables. Sources round-robin so no single inner
/// front monopolizes the pool. A pure function of the (checkpointed)
/// outcomes, so a resumed run rebuilds the identical pool.
std::vector<IntGenome> ioe_seed_pool(const std::vector<BackboneOutcome>& backbones,
                                     std::size_t target_num_eligible,
                                     const hw::DeviceSpec& device,
                                     std::size_t max_seeds);

class HadasEngine;

/// Export an engine's post-run statistics into the global metrics registry
/// as gauges: S(b) / cost-model memo counters ("exec.cache.*") and the
/// robust-measurement health report ("hw.health.*"). Called by the CLI
/// before writing a --metrics-out snapshot; pure observation, no effect on
/// engine state or results.
void export_search_metrics(const HadasEngine& engine,
                           const HadasResult& result);

/// The bi-level HADAS engine (Fig. 3): an outer NSGA-II loop over B with
/// early selection, per-elite inner engines over (X, F), combined ranking,
/// and evolutionary variation — plus the exit-bank training that the inner
/// engines amortize.
class HadasEngine {
 public:
  HadasEngine(const supernet::SearchSpace& space, hw::Target target,
              HadasConfig config);

  const HadasConfig& config() const { return config_; }
  const StaticEvaluator& static_evaluator() const { return static_eval_; }
  const data::SyntheticTask& task() const { return task_; }

  /// Full bi-level search.
  HadasResult run() { return run(WarmStart{}); }

  /// Bi-level search seeded from previous results; see WarmStart.
  HadasResult run(const WarmStart& warm);

  /// Run the IOE for one explicit backbone (used for the "optimized
  /// baselines" of Fig. 5/6, Table III, and the Fig. 7 ablation). The exit
  /// bank is trained once per backbone and cached across calls.
  IoeResult run_ioe(const supernet::BackboneConfig& config) const;

  /// Same, overriding the score regularization (Fig. 7 ablation).
  IoeResult run_ioe(const supernet::BackboneConfig& config,
                    const dynn::DynamicScoreConfig& score) const;

  /// Same, with a fully custom IOE configuration (budget/objective-set
  /// overrides for ablations). The NSGA seed is still mixed with the
  /// backbone hash for per-backbone determinism.
  IoeResult run_ioe_with(const supernet::BackboneConfig& config,
                         const IoeConfig& ioe_config) const;

  /// The trained exit bank of a backbone (trains and caches on first use).
  const dynn::ExitBank& exit_bank(const supernet::BackboneConfig& config) const;

  /// Evaluate one explicit (x, f | b) candidate against the backbone's
  /// trained exit bank (used by the stage-wise comparisons of Fig. 1 and
  /// Table III: e.g. re-measuring a searched placement at default DVFS).
  InnerSolution evaluate_dynamic(const supernet::BackboneConfig& config,
                                 const dynn::ExitPlacement& placement,
                                 hw::DvfsSetting setting) const;

  /// The per-position cost table of a backbone on this engine's device.
  const dynn::MultiExitCostTable& cost_table(
      const supernet::BackboneConfig& config) const;

  /// Resolved worker count of the parallel dispatcher (>= 1).
  std::size_t threads() const { return dispatcher_.threads(); }

  /// Counters of the S(b) memo table (hits appear on warm starts and on
  /// repeated run() calls against the same engine).
  exec::CacheStats static_cache_stats() const { return static_cache_.stats(); }

  /// Counters of the shared cost-model memo (hit whenever static eval,
  /// exit-bank training and cost-table construction reuse one analysis).
  exec::CacheStats cost_cache_stats() const {
    return static_eval_.cost_cache().stats();
  }

 private:
  struct BankEntry {
    std::unique_ptr<dynn::ExitBank> bank;
    std::unique_ptr<dynn::MultiExitCostTable> cost;
  };
  const BankEntry& bank_entry(const supernet::BackboneConfig& config) const;

  supernet::SearchSpace space_;
  HadasConfig config_;
  StaticEvaluator static_eval_;
  data::SyntheticTask task_;
  exec::ParallelDispatcher dispatcher_;
  /// S(b) memo across run() calls (warm starts); keyed by genome hash.
  mutable exec::EvalCache<StaticEval> static_cache_;
  /// Guards bank_cache_ lookup/insert; bank construction happens outside
  /// the lock so distinct backbones train their exit banks concurrently.
  mutable std::mutex bank_mutex_;
  mutable std::unordered_map<std::uint64_t, BankEntry> bank_cache_;
};

}  // namespace hadas::core
