#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/pareto.hpp"
#include "util/rng.hpp"

namespace hadas::core {

/// Integer genome: gene i takes values in [0, cardinality_i).
using IntGenome = std::vector<std::int32_t>;

/// Problem interface for the evolutionary engines. Objectives are all
/// maximized. Genomes are categorical integer vectors, which covers every
/// HADAS subspace: backbone choice indices (B), exit indicator bits (X, with
/// cardinality 2) and DVFS table indices (F).
class Problem {
 public:
  virtual ~Problem() = default;

  /// Choice count per gene.
  virtual std::vector<std::size_t> gene_cardinalities() const = 0;

  /// Evaluate a genome; returns the (maximized) objective vector.
  virtual Objectives evaluate(const IntGenome& genome) = 0;

  /// Repair an infeasible genome in place (default: no-op). Called after
  /// random initialization, crossover and mutation.
  virtual void repair(IntGenome& genome, hadas::util::Rng& rng) const;

  /// Uniformly random (then repaired) genome.
  IntGenome random_genome(hadas::util::Rng& rng) const;
};

/// NSGA-II settings. #iterations = generations * population (the budget
/// notion of the paper's Sec. V-A).
struct Nsga2Config {
  std::size_t population = 40;
  std::size_t generations = 20;
  double crossover_prob = 0.9;   ///< probability a pair is crossed (uniform)
  double mutation_prob = -1.0;   ///< per-gene reset prob; <0 means 1/len
  std::uint64_t seed = 123;
  /// Reference point for the per-generation hypervolume in
  /// Nsga2Result::generations; empty disables HV tracking (the default —
  /// HV is cubic-ish in front size and not free).
  Objectives hv_reference{};
  /// Warm-start seeds: up to `population` genomes injected (after repair)
  /// into the initial population before random fill. Empty (the default)
  /// reproduces the fully random cold start, RNG-stream-identical to
  /// earlier spec versions. Seeds longer than the population are truncated.
  std::vector<IntGenome> initial_population{};
};

/// One evaluated individual.
struct Individual {
  IntGenome genome;
  Objectives objectives;
};

/// Per-generation convergence record.
struct GenerationStats {
  std::size_t generation = 0;
  std::vector<double> best;       ///< per-objective max over the population
  std::vector<double> mean;       ///< per-objective population mean
  std::size_t front_size = 0;     ///< size of the population's first front
  double hypervolume = 0.0;       ///< of the first front vs the configured ref
};

/// Result of an NSGA-II run.
struct Nsga2Result {
  std::vector<Individual> final_population;
  std::vector<Individual> front;    ///< non-dominated subset of all evaluated
  std::vector<Individual> history;  ///< every distinct evaluation, in order
  std::vector<GenerationStats> generations;  ///< convergence trajectory
  std::size_t evaluations = 0;      ///< total evaluate() calls (incl. cached hits)
};

/// Textbook NSGA-II (Deb et al. 2002) over categorical integer genomes:
/// binary tournament on (rank, crowding), uniform crossover, per-gene reset
/// mutation, elitist (mu + lambda) environmental selection by fronts with
/// crowding-distance truncation. Duplicate genomes are looked up in an
/// evaluation cache so wall-clock tracks distinct evaluations.
class Nsga2 {
 public:
  explicit Nsga2(Nsga2Config config) : config_(config) {}

  Nsga2Result run(Problem& problem);

  /// Per-generation observer (e.g. convergence logging in the benches).
  using Observer = std::function<void(std::size_t generation,
                                      const std::vector<Individual>& population)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

 private:
  Nsga2Config config_;
  Observer observer_;
};

/// Uniform crossover: each gene independently from either parent.
void uniform_crossover(const IntGenome& a, const IntGenome& b, IntGenome& child1,
                       IntGenome& child2, hadas::util::Rng& rng);

/// Per-gene reset mutation: with probability `per_gene_prob` a gene is
/// redrawn uniformly from its choice list (excluding its current value when
/// the cardinality allows it).
void reset_mutation(IntGenome& genome, const std::vector<std::size_t>& cardinalities,
                    double per_gene_prob, hadas::util::Rng& rng);

/// Environmental selection: keep `target` individuals from `candidates` by
/// non-dominated rank, breaking ties with crowding distance.
std::vector<Individual> select_by_rank_crowding(std::vector<Individual> candidates,
                                                std::size_t target);

}  // namespace hadas::core
