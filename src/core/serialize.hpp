#pragma once

#include <string>

#include "core/hadas_engine.hpp"
#include "util/json.hpp"

namespace hadas::core {

/// JSON (de)serialization of the search artifacts, so designs found by a
/// search can be saved, diffed, shipped to a deployment host, and re-loaded
/// without re-running the search. All functions throw std::logic_error /
/// std::invalid_argument on malformed input.

hadas::util::Json to_json(const supernet::BackboneConfig& config);
supernet::BackboneConfig backbone_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const dynn::ExitPlacement& placement);
dynn::ExitPlacement placement_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const hw::DvfsSetting& setting);
hw::DvfsSetting setting_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const StaticEval& eval);
StaticEval static_eval_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const dynn::DynamicMetrics& metrics);
dynn::DynamicMetrics dynamic_metrics_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const FinalSolution& solution);
FinalSolution final_solution_from_json(const hadas::util::Json& json);

/// The full deliverable of a search: device, budgets and the final Pareto
/// set. (Exploration history is not persisted — re-run for that.)
hadas::util::Json result_to_json(const HadasResult& result,
                                 hw::Target target);
std::vector<FinalSolution> final_pareto_from_json(const hadas::util::Json& json);

/// --- Checkpoint serialization (see HadasConfig::checkpoint_path). ---
///
/// Doubles survive the JSON round trip exactly (emitted at %.17g), and RNG
/// words are stored as hex strings (they do not fit in a double), so a
/// resumed search is bit-identical to the uninterrupted one.

hadas::util::Json to_json(const hadas::util::Rng::State& state);
hadas::util::Rng::State rng_state_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const InnerSolution& solution);
InnerSolution inner_solution_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const BackboneOutcome& outcome);
BackboneOutcome backbone_outcome_from_json(const hadas::util::Json& json);

hadas::util::Json checkpoint_to_json(const SearchCheckpoint& checkpoint);
SearchCheckpoint checkpoint_from_json(const hadas::util::Json& json);

/// Atomic save: writes `path` + ".tmp" then renames over `path`, so a crash
/// mid-write never corrupts the previous checkpoint.
void save_checkpoint(const std::string& path,
                     const SearchCheckpoint& checkpoint);
SearchCheckpoint load_checkpoint(const std::string& path);

/// File helpers.
void save_json(const std::string& path, const hadas::util::Json& json);
hadas::util::Json load_json(const std::string& path);

}  // namespace hadas::core
