#pragma once

#include <string>

#include "core/hadas_engine.hpp"
#include "util/json.hpp"

namespace hadas::core {

/// JSON (de)serialization of the search artifacts, so designs found by a
/// search can be saved, diffed, shipped to a deployment host, and re-loaded
/// without re-running the search. All functions throw std::logic_error /
/// std::invalid_argument on malformed input.

hadas::util::Json to_json(const supernet::BackboneConfig& config);
supernet::BackboneConfig backbone_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const dynn::ExitPlacement& placement);
dynn::ExitPlacement placement_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const hw::DvfsSetting& setting);
hw::DvfsSetting setting_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const StaticEval& eval);
StaticEval static_eval_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const dynn::DynamicMetrics& metrics);
dynn::DynamicMetrics dynamic_metrics_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const FinalSolution& solution);
FinalSolution final_solution_from_json(const hadas::util::Json& json);

/// The full deliverable of a search: device, budgets and the final Pareto
/// set. (Exploration history is not persisted — re-run for that.)
hadas::util::Json result_to_json(const HadasResult& result,
                                 hw::Target target);
std::vector<FinalSolution> final_pareto_from_json(const hadas::util::Json& json);

/// File helpers.
void save_json(const std::string& path, const hadas::util::Json& json);
hadas::util::Json load_json(const std::string& path);

}  // namespace hadas::core
