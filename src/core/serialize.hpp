#pragma once

#include <optional>
#include <string>

#include "core/hadas_engine.hpp"
#include "util/durable/checkpoint_chain.hpp"
#include "util/json.hpp"

namespace hadas::core {

/// JSON (de)serialization of the search artifacts, so designs found by a
/// search can be saved, diffed, shipped to a deployment host, and re-loaded
/// without re-running the search. All functions throw std::logic_error /
/// std::invalid_argument on malformed input.

hadas::util::Json to_json(const supernet::BackboneConfig& config);
supernet::BackboneConfig backbone_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const dynn::ExitPlacement& placement);
dynn::ExitPlacement placement_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const hw::DvfsSetting& setting);
hw::DvfsSetting setting_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const StaticEval& eval);
StaticEval static_eval_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const dynn::DynamicMetrics& metrics);
dynn::DynamicMetrics dynamic_metrics_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const FinalSolution& solution);
FinalSolution final_solution_from_json(const hadas::util::Json& json);

/// The full deliverable of a search: device, budgets and the final Pareto
/// set. (Exploration history is not persisted — re-run for that.)
hadas::util::Json result_to_json(const HadasResult& result,
                                 hw::Target target);
std::vector<FinalSolution> final_pareto_from_json(const hadas::util::Json& json);

/// --- Checkpoint serialization (see HadasConfig::checkpoint_path). ---
///
/// Doubles survive the JSON round trip exactly (emitted at %.17g), and RNG
/// words are stored as hex strings (they do not fit in a double), so a
/// resumed search is bit-identical to the uninterrupted one.

hadas::util::Json to_json(const hadas::util::Rng::State& state);
hadas::util::Rng::State rng_state_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const InnerSolution& solution);
InnerSolution inner_solution_from_json(const hadas::util::Json& json);

hadas::util::Json to_json(const BackboneOutcome& outcome);
BackboneOutcome backbone_outcome_from_json(const hadas::util::Json& json);

hadas::util::Json checkpoint_to_json(const SearchCheckpoint& checkpoint);
SearchCheckpoint checkpoint_from_json(const hadas::util::Json& json);

/// Durable-envelope format tag of search checkpoints.
inline constexpr const char* kCheckpointFormatTag = "hadas-checkpoint-v1";

/// Semantic invariants a checkpoint must satisfy beyond JSON
/// well-formedness: non-empty population of equal-length genomes, finite
/// objective/metric values, and a non-empty fingerprint. (The RNG word
/// count is enforced during parsing by rng_state_from_json.) Throws
/// util::durable::CheckpointCorruptError with stage kInvariant — the file
/// name is filled in by whichever load path knows it.
void validate_checkpoint(const SearchCheckpoint& checkpoint);

/// Crash-safe save through util::durable::DurableFile: write-to-temp +
/// fsync + atomic rename, with a versioned header and CRC-64 footer.
void save_checkpoint(const std::string& path,
                     const SearchCheckpoint& checkpoint);

/// Load + validate one checkpoint file. Envelope, parse or invariant
/// failures throw util::durable::CheckpointCorruptError naming the file,
/// byte offset and failing stage. A file with no durable envelope is
/// accepted as a legacy (pre-durable) raw-JSON checkpoint.
SearchCheckpoint load_checkpoint(const std::string& path);

/// A checkpoint recovered from a rotating chain: which slot supplied it and
/// how many newer (corrupt) slots were skipped to reach it.
struct LoadedCheckpoint {
  SearchCheckpoint checkpoint;
  std::string file;
  std::size_t skipped = 0;
};

/// Rotate `chain` and durably write `checkpoint` as the newest slot.
void save_checkpoint_chain(const hadas::util::durable::CheckpointChain& chain,
                           const SearchCheckpoint& checkpoint);

/// Newest chain slot that passes envelope + parse + invariant validation;
/// every rejected newer slot is reported through `warn`. Returns nullopt if
/// no slot exists; throws CheckpointCorruptError if every slot is corrupt.
std::optional<LoadedCheckpoint> load_checkpoint_chain(
    const hadas::util::durable::CheckpointChain& chain,
    const std::function<void(const std::string& warning)>& warn = {});

/// File helpers.
void save_json(const std::string& path, const hadas::util::Json& json);
hadas::util::Json load_json(const std::string& path);

}  // namespace hadas::core
