#pragma once

#include <string>
#include <vector>

#include "core/static_eval.hpp"

namespace hadas::core {

/// One-gene ablation record: what changing a single design decision of a
/// backbone to its neighbouring choices does to accuracy/latency/energy.
struct GeneSensitivity {
  std::size_t gene = 0;        ///< genome position
  std::string name;            ///< human-readable, e.g. "mb5.width"
  std::int32_t current = 0;    ///< the design's current choice index
  std::size_t cardinality = 0;
  /// Largest accuracy loss over all single-gene perturbations (>= 0).
  double max_accuracy_drop = 0.0;
  /// Largest energy saving over all single-gene perturbations (>= 0, J).
  double max_energy_saving_j = 0.0;
  /// Accuracy delta per joule saved for the best perturbation of this gene
  /// (lower magnitude = cheaper knob to turn); 0 when no perturbation saves.
  double accuracy_per_joule = 0.0;
};

/// Names of the genome positions of the Table-II space, genome order.
std::vector<std::string> gene_names(const supernet::SearchSpace& space);

/// Single-gene sensitivity analysis of a backbone: for every genome
/// position, evaluate all alternative choices and record the accuracy /
/// energy movements. Answers "which design decision is this backbone's
/// efficiency most sensitive to?" — useful when a found design must be
/// hand-tweaked (e.g. to fit a memory budget) without rerunning the search.
std::vector<GeneSensitivity> analyze_sensitivity(
    const StaticEvaluator& evaluator, const supernet::BackboneConfig& config);

}  // namespace hadas::core
