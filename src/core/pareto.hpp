#pragma once

#include <cstddef>
#include <vector>

namespace hadas::core {

/// A point in objective space. ALL objectives are maximized throughout the
/// library; minimized quantities (latency, energy) are negated at the
/// problem boundary.
using Objectives = std::vector<double>;

/// True if `a` Pareto-dominates `b`: a >= b on every objective and a > b on
/// at least one. Requires equal dimensionality.
bool dominates(const Objectives& a, const Objectives& b);

/// Fast non-dominated sorting (Deb et al., NSGA-II). Returns fronts of
/// indices into `points`; front 0 is the non-dominated set.
std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<Objectives>& points);

/// Crowding distance of each member of one front (indices into `points`).
/// Boundary points get +infinity.
std::vector<double> crowding_distance(const std::vector<Objectives>& points,
                                      const std::vector<std::size_t>& front);

/// Indices of the non-dominated subset of `points` (front 0).
std::vector<std::size_t> pareto_front(const std::vector<Objectives>& points);

/// Exact hypervolume of the region dominated by `points` and bounded below
/// by `reference` (maximization; points not strictly above the reference on
/// every axis contribute nothing). Supports 2-D exactly and N-D by
/// dimension-sweep recursion (fine at the small front sizes used here).
double hypervolume(const std::vector<Objectives>& points,
                   const Objectives& reference);

/// Coverage C(A, B): fraction of B's points dominated by at least one point
/// of A (Zitzler's C-metric).
double coverage(const std::vector<Objectives>& a,
                const std::vector<Objectives>& b);

/// Ratio of dominance (the paper's Fig. 6 metric): the fraction of A's
/// points that dominate at least one point of B — "the percentage of
/// solutions found by HADAS that dominate the optimized baselines".
double ratio_of_dominance(const std::vector<Objectives>& a,
                          const std::vector<Objectives>& b);

/// Incremental Pareto archive: keeps only mutually non-dominated entries
/// with a payload index attached.
class ParetoArchive {
 public:
  /// Try to insert; returns false if the candidate is dominated by (or equal
  /// to) an archived point. Dominated archive members are evicted.
  bool insert(const Objectives& objectives, std::size_t payload);

  std::size_t size() const { return entries_.size(); }

  const std::vector<Objectives>& objectives() const { return objs_; }
  const std::vector<std::size_t>& payloads() const { return entries_; }

 private:
  std::vector<Objectives> objs_;
  std::vector<std::size_t> entries_;
};

}  // namespace hadas::core
