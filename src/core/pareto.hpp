#pragma once

#include <cstddef>
#include <vector>

namespace hadas::core {

/// A point in objective space. ALL objectives are maximized throughout the
/// library; minimized quantities (latency, energy) are negated at the
/// problem boundary.
using Objectives = std::vector<double>;

class ObjectiveBatch;  // SoA storage, core/eval_batch.hpp

/// True if `a` Pareto-dominates `b`: a >= b on every objective and a > b on
/// at least one. Requires equal dimensionality.
bool dominates(const Objectives& a, const Objectives& b);

/// Span form of `dominates` for SoA batches: compares `dims` doubles.
bool dominates_span(const double* a, const double* b, std::size_t dims);

/// Fast non-dominated sorting (Deb et al., NSGA-II). Returns fronts of
/// indices into `points`; front 0 is the non-dominated set. Every front is
/// in ascending index order (the canonical order the incremental
/// FrontLevels structure also maintains, so the two are comparable).
std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<Objectives>& points);

/// Overload over SoA objective storage — no per-point heap vectors.
std::vector<std::vector<std::size_t>> non_dominated_sort(
    const ObjectiveBatch& points);

/// Crowding distance of each member of one front (indices into `points`).
/// Boundary points get +infinity.
std::vector<double> crowding_distance(const std::vector<Objectives>& points,
                                      const std::vector<std::size_t>& front);

/// Overload over SoA objective storage.
std::vector<double> crowding_distance(const ObjectiveBatch& points,
                                      const std::vector<std::size_t>& front);

/// Incrementally maintained non-domination levels (ENLU-style; Li et al.
/// 2014). Instead of re-running the O(N^2) full sort every generation, the
/// engine keeps this structure alive: offspring are inserted one at a time
/// (each insertion only touches the fronts the newcomer displaces), and the
/// post-selection truncation reuses the surviving levels directly.
///
/// Invariants:
///  * every front is an antichain, stored in ascending index order;
///  * rank_of(i) is the front index of point i;
///  * after select(keep) with a front-prefix-closed keep set (all whole
///    fronts above the cut plus any subset of the cut front — exactly what
///    NSGA-II elitist selection produces), the structure equals a full sort
///    of the survivors. This holds because every member of front k has a
///    dominator in front k-1, which selection always retains.
class FrontLevels {
 public:
  void clear();

  /// Rebuild from scratch (full Deb sort over the batch).
  void rebuild(const ObjectiveBatch& points);

  /// ENLU insertion of row `idx`, which must be the next unseen row
  /// (idx == size()). Displaced points cascade down one level at a time.
  void insert(const ObjectiveBatch& points, std::size_t idx);

  /// Truncate to the kept rows, renumbering them 0..keep.size()-1 in list
  /// order. `keep` must be front-prefix closed (see class comment) and
  /// listed front-major in ascending index order within each front.
  void select(const std::vector<std::size_t>& keep);

  const std::vector<std::vector<std::size_t>>& fronts() const { return fronts_; }
  std::size_t rank_of(std::size_t idx) const { return rank_[idx]; }
  std::size_t size() const { return rank_.size(); }

  /// Debug cross-check: true iff fronts() equals a from-scratch
  /// non_dominated_sort of `points`.
  bool matches_full_sort(const ObjectiveBatch& points) const;

 private:
  std::vector<std::vector<std::size_t>> fronts_;
  std::vector<std::size_t> rank_;
};

/// Indices of the non-dominated subset of `points` (front 0).
std::vector<std::size_t> pareto_front(const std::vector<Objectives>& points);

/// Exact hypervolume of the region dominated by `points` and bounded below
/// by `reference` (maximization; points not strictly above the reference on
/// every axis contribute nothing). Supports 2-D exactly and N-D by
/// dimension-sweep recursion (fine at the small front sizes used here).
double hypervolume(const std::vector<Objectives>& points,
                   const Objectives& reference);

/// Coverage C(A, B): fraction of B's points dominated by at least one point
/// of A (Zitzler's C-metric).
double coverage(const std::vector<Objectives>& a,
                const std::vector<Objectives>& b);

/// Ratio of dominance (the paper's Fig. 6 metric): the fraction of A's
/// points that dominate at least one point of B — "the percentage of
/// solutions found by HADAS that dominate the optimized baselines".
double ratio_of_dominance(const std::vector<Objectives>& a,
                          const std::vector<Objectives>& b);

/// Incremental Pareto archive: keeps only mutually non-dominated entries
/// with a payload index attached.
class ParetoArchive {
 public:
  /// Try to insert; returns false if the candidate is dominated by (or equal
  /// to) an archived point. Dominated archive members are evicted.
  bool insert(const Objectives& objectives, std::size_t payload);

  std::size_t size() const { return entries_.size(); }

  const std::vector<Objectives>& objectives() const { return objs_; }
  const std::vector<std::size_t>& payloads() const { return entries_; }

 private:
  std::vector<Objectives> objs_;
  std::vector<std::size_t> entries_;
};

}  // namespace hadas::core
