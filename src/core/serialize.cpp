#include "core/serialize.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace hadas::core {

using hadas::util::Json;
using hadas::util::durable::CheckpointChain;
using hadas::util::durable::CheckpointCorruptError;
using hadas::util::durable::CorruptStage;
using hadas::util::durable::DurableFile;

Json to_json(const supernet::BackboneConfig& config) {
  Json json;
  json["resolution"] = Json(config.resolution);
  json["stem_width"] = Json(config.stem_width);
  json["last_width"] = Json(config.last_width);
  Json::Array stages;
  for (const auto& stage : config.stages) {
    Json s;
    s["width"] = Json(stage.width);
    s["depth"] = Json(stage.depth);
    s["kernel"] = Json(stage.kernel);
    s["expand"] = Json(stage.expand);
    stages.push_back(std::move(s));
  }
  json["stages"] = Json(std::move(stages));
  return json;
}

supernet::BackboneConfig backbone_from_json(const Json& json) {
  supernet::BackboneConfig config;
  config.resolution = json.at("resolution").as_int();
  config.stem_width = json.at("stem_width").as_int();
  config.last_width = json.at("last_width").as_int();
  const auto& stages = json.at("stages").as_array();
  if (stages.size() != supernet::kNumStages)
    throw std::invalid_argument("backbone_from_json: wrong stage count");
  for (std::size_t s = 0; s < stages.size(); ++s) {
    config.stages[s].width = stages[s].at("width").as_int();
    config.stages[s].depth = stages[s].at("depth").as_int();
    config.stages[s].kernel = stages[s].at("kernel").as_int();
    config.stages[s].expand = stages[s].at("expand").as_int();
  }
  return config;
}

Json to_json(const dynn::ExitPlacement& placement) {
  Json json;
  json["total_layers"] = Json(placement.total_layers());
  Json::Array exits;
  for (std::size_t layer : placement.positions()) exits.push_back(Json(layer));
  json["exits"] = Json(std::move(exits));
  return json;
}

dynn::ExitPlacement placement_from_json(const Json& json) {
  std::vector<std::size_t> exits;
  for (const Json& layer : json.at("exits").as_array())
    exits.push_back(layer.as_index());
  return dynn::ExitPlacement(json.at("total_layers").as_index(), exits);
}

Json to_json(const hw::DvfsSetting& setting) {
  Json json;
  json["core_idx"] = Json(setting.core_idx);
  json["emc_idx"] = Json(setting.emc_idx);
  return json;
}

hw::DvfsSetting setting_from_json(const Json& json) {
  return {json.at("core_idx").as_index(), json.at("emc_idx").as_index()};
}

Json to_json(const StaticEval& eval) {
  Json json;
  json["accuracy"] = Json(eval.accuracy);
  json["latency_s"] = Json(eval.latency_s);
  json["energy_j"] = Json(eval.energy_j);
  return json;
}

StaticEval static_eval_from_json(const Json& json) {
  StaticEval eval;
  eval.accuracy = json.at("accuracy").as_number();
  eval.latency_s = json.at("latency_s").as_number();
  eval.energy_j = json.at("energy_j").as_number();
  return eval;
}

Json to_json(const dynn::DynamicMetrics& metrics) {
  Json json;
  json["score_eq5"] = Json(metrics.score_eq5);
  json["mean_n"] = Json(metrics.mean_n);
  json["oracle_accuracy"] = Json(metrics.oracle_accuracy);
  json["energy_per_sample_j"] = Json(metrics.energy_per_sample_j);
  json["latency_per_sample_s"] = Json(metrics.latency_per_sample_s);
  json["energy_gain"] = Json(metrics.energy_gain);
  json["latency_gain"] = Json(metrics.latency_gain);
  return json;
}

dynn::DynamicMetrics dynamic_metrics_from_json(const Json& json) {
  dynn::DynamicMetrics metrics;
  metrics.score_eq5 = json.at("score_eq5").as_number();
  metrics.mean_n = json.at("mean_n").as_number();
  metrics.oracle_accuracy = json.at("oracle_accuracy").as_number();
  metrics.energy_per_sample_j = json.at("energy_per_sample_j").as_number();
  metrics.latency_per_sample_s = json.at("latency_per_sample_s").as_number();
  metrics.energy_gain = json.at("energy_gain").as_number();
  metrics.latency_gain = json.at("latency_gain").as_number();
  return metrics;
}

Json to_json(const FinalSolution& solution) {
  Json json;
  json["backbone"] = to_json(solution.backbone);
  json["placement"] = to_json(solution.placement);
  json["setting"] = to_json(solution.setting);
  json["static"] = to_json(solution.static_eval);
  json["dynamic"] = to_json(solution.dynamic);
  return json;
}

FinalSolution final_solution_from_json(const Json& json) {
  return FinalSolution{backbone_from_json(json.at("backbone")),
                       placement_from_json(json.at("placement")),
                       setting_from_json(json.at("setting")),
                       static_eval_from_json(json.at("static")),
                       dynamic_metrics_from_json(json.at("dynamic"))};
}

Json result_to_json(const HadasResult& result, hw::Target target) {
  Json json;
  json["device"] = Json(hw::target_name(target));
  json["outer_evaluations"] = Json(result.outer_evaluations);
  json["inner_evaluations"] = Json(result.inner_evaluations);
  json["explored_backbones"] = Json(result.backbones.size());
  Json::Array pareto;
  for (const auto& solution : result.final_pareto)
    pareto.push_back(to_json(solution));
  json["final_pareto"] = Json(std::move(pareto));
  return json;
}

std::vector<FinalSolution> final_pareto_from_json(const Json& json) {
  std::vector<FinalSolution> solutions;
  for (const Json& entry : json.at("final_pareto").as_array())
    solutions.push_back(final_solution_from_json(entry));
  return solutions;
}

namespace {

std::string hex_u64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

std::uint64_t u64_from_hex(const std::string& text) {
  if (text.empty() || text.size() > 16)
    throw std::invalid_argument("u64_from_hex: bad length '" + text + "'");
  std::uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else throw std::invalid_argument("u64_from_hex: bad digit in '" + text + "'");
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

}  // namespace

Json to_json(const hadas::util::Rng::State& state) {
  Json json;
  Json::Array words;
  for (std::uint64_t w : state.words) words.push_back(Json(hex_u64(w)));
  json["words"] = Json(std::move(words));
  json["has_cached_normal"] = Json(state.has_cached_normal);
  json["cached_normal"] = Json(state.cached_normal);
  return json;
}

hadas::util::Rng::State rng_state_from_json(const Json& json) {
  hadas::util::Rng::State state;
  const auto& words = json.at("words").as_array();
  if (words.size() != state.words.size())
    throw std::invalid_argument("rng_state_from_json: wrong word count");
  for (std::size_t i = 0; i < words.size(); ++i)
    state.words[i] = u64_from_hex(words[i].as_string());
  state.has_cached_normal = json.at("has_cached_normal").as_bool();
  state.cached_normal = json.at("cached_normal").as_number();
  return state;
}

Json to_json(const InnerSolution& solution) {
  Json json;
  json["placement"] = to_json(solution.placement);
  json["setting"] = to_json(solution.setting);
  json["metrics"] = to_json(solution.metrics);
  Json::Array objectives;
  for (double v : solution.objectives) objectives.push_back(Json(v));
  json["objectives"] = Json(std::move(objectives));
  return json;
}

InnerSolution inner_solution_from_json(const Json& json) {
  InnerSolution solution{placement_from_json(json.at("placement")),
                         setting_from_json(json.at("setting")),
                         dynamic_metrics_from_json(json.at("metrics")),
                         {}};
  for (const Json& v : json.at("objectives").as_array())
    solution.objectives.push_back(v.as_number());
  return solution;
}

Json to_json(const BackboneOutcome& outcome) {
  Json json;
  json["config"] = to_json(outcome.config);
  json["static"] = to_json(outcome.static_eval);
  json["ioe_ran"] = Json(outcome.ioe_ran);
  json["inner_hv"] = Json(outcome.inner_hv);
  Json::Array pareto;
  for (const auto& sol : outcome.inner_pareto) pareto.push_back(to_json(sol));
  json["inner_pareto"] = Json(std::move(pareto));
  Json::Array history;
  for (const auto& sol : outcome.inner_history) history.push_back(to_json(sol));
  json["inner_history"] = Json(std::move(history));
  return json;
}

BackboneOutcome backbone_outcome_from_json(const Json& json) {
  BackboneOutcome outcome;
  outcome.config = backbone_from_json(json.at("config"));
  outcome.static_eval = static_eval_from_json(json.at("static"));
  outcome.ioe_ran = json.at("ioe_ran").as_bool();
  outcome.inner_hv = json.at("inner_hv").as_number();
  for (const Json& sol : json.at("inner_pareto").as_array())
    outcome.inner_pareto.push_back(inner_solution_from_json(sol));
  for (const Json& sol : json.at("inner_history").as_array())
    outcome.inner_history.push_back(inner_solution_from_json(sol));
  return outcome;
}

Json checkpoint_to_json(const SearchCheckpoint& checkpoint) {
  Json json;
  json["format"] = Json("hadas-checkpoint-v1");
  json["fingerprint"] = Json(checkpoint.fingerprint);
  json["next_generation"] = Json(checkpoint.next_generation);
  json["rng"] = to_json(checkpoint.rng);
  Json::Array population;
  for (const supernet::Genome& genome : checkpoint.population) {
    Json::Array genes;
    for (std::int32_t g : genome) genes.push_back(Json(static_cast<int>(g)));
    population.push_back(Json(std::move(genes)));
  }
  json["population"] = Json(std::move(population));
  Json::Array backbones;
  for (const auto& outcome : checkpoint.backbones)
    backbones.push_back(to_json(outcome));
  json["backbones"] = Json(std::move(backbones));
  json["outer_evaluations"] = Json(checkpoint.outer_evaluations);
  json["inner_evaluations"] = Json(checkpoint.inner_evaluations);
  return json;
}

SearchCheckpoint checkpoint_from_json(const Json& json) {
  if (!json.contains("format") ||
      json.at("format").as_string() != "hadas-checkpoint-v1")
    throw std::invalid_argument("checkpoint_from_json: unknown format");
  SearchCheckpoint checkpoint;
  checkpoint.fingerprint = json.at("fingerprint").as_string();
  checkpoint.next_generation = json.at("next_generation").as_index();
  checkpoint.rng = rng_state_from_json(json.at("rng"));
  for (const Json& genes : json.at("population").as_array()) {
    supernet::Genome genome;
    for (const Json& g : genes.as_array())
      genome.push_back(static_cast<std::int32_t>(g.as_int()));
    checkpoint.population.push_back(std::move(genome));
  }
  for (const Json& outcome : json.at("backbones").as_array())
    checkpoint.backbones.push_back(backbone_outcome_from_json(outcome));
  checkpoint.outer_evaluations = json.at("outer_evaluations").as_index();
  checkpoint.inner_evaluations = json.at("inner_evaluations").as_index();
  return checkpoint;
}

namespace {

/// Invariant helper: reject with a kInvariant error (file filled in later).
[[noreturn]] void invariant_fail(const std::string& detail) {
  throw CheckpointCorruptError("", 0, CorruptStage::kInvariant, detail);
}

void require_finite(double v, const std::string& what) {
  if (!std::isfinite(v)) invariant_fail(what + " is not finite");
}

void validate_inner_solution(const InnerSolution& solution,
                             const std::string& where) {
  if (solution.objectives.empty())
    invariant_fail(where + " has no objectives");
  for (double v : solution.objectives)
    require_finite(v, where + " objective");
  require_finite(solution.metrics.score_eq5, where + " score_eq5");
  require_finite(solution.metrics.oracle_accuracy, where + " oracle_accuracy");
  require_finite(solution.metrics.energy_gain, where + " energy_gain");
  require_finite(solution.metrics.latency_gain, where + " latency_gain");
}

}  // namespace

void validate_checkpoint(const SearchCheckpoint& checkpoint) {
  if (checkpoint.fingerprint.empty())
    invariant_fail("checkpoint has an empty fingerprint");
  if (checkpoint.population.empty())
    invariant_fail("checkpoint has an empty population");
  const std::size_t genome_size = checkpoint.population.front().size();
  if (genome_size == 0) invariant_fail("checkpoint has an empty genome");
  for (const supernet::Genome& genome : checkpoint.population)
    if (genome.size() != genome_size)
      invariant_fail("checkpoint population has mixed genome lengths (" +
                     std::to_string(genome.size()) + " vs " +
                     std::to_string(genome_size) + ")");
  require_finite(checkpoint.rng.cached_normal, "rng cached_normal");
  for (std::size_t b = 0; b < checkpoint.backbones.size(); ++b) {
    const BackboneOutcome& outcome = checkpoint.backbones[b];
    const std::string where = "backbone[" + std::to_string(b) + "]";
    require_finite(outcome.static_eval.accuracy, where + " accuracy");
    require_finite(outcome.static_eval.latency_s, where + " latency_s");
    require_finite(outcome.static_eval.energy_j, where + " energy_j");
    require_finite(outcome.inner_hv, where + " inner_hv");
    for (const InnerSolution& sol : outcome.inner_pareto)
      validate_inner_solution(sol, where + " pareto solution");
    for (const InnerSolution& sol : outcome.inner_history)
      validate_inner_solution(sol, where + " history solution");
  }
}

namespace {

/// Parse + validate one checkpoint payload (raw JSON text). Throws
/// CheckpointCorruptError (stage kParse or kInvariant) with no file name.
SearchCheckpoint checkpoint_from_payload(const std::string& payload) {
  SearchCheckpoint checkpoint;
  try {
    checkpoint = checkpoint_from_json(Json::parse(payload));
  } catch (const std::exception& e) {
    throw CheckpointCorruptError("", 0, CorruptStage::kParse, e.what());
  }
  validate_checkpoint(checkpoint);
  return checkpoint;
}

}  // namespace

void save_checkpoint(const std::string& path,
                     const SearchCheckpoint& checkpoint) {
  DurableFile::write(path, kCheckpointFormatTag,
                     checkpoint_to_json(checkpoint).dump(2) + "\n");
}

SearchCheckpoint load_checkpoint(const std::string& path) {
  std::string payload;
  try {
    payload = DurableFile::read(path, kCheckpointFormatTag);
  } catch (const CheckpointCorruptError& e) {
    // No envelope at all: a legacy (pre-durable) raw-JSON checkpoint.
    if (e.stage() != CorruptStage::kHeader || e.byte_offset() != 0) throw;
    std::ifstream in(path, std::ios::binary);
    if (!in)
      throw std::runtime_error("load_checkpoint: cannot open " + path);
    payload.assign((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  }
  try {
    return checkpoint_from_payload(payload);
  } catch (const CheckpointCorruptError& e) {
    throw CheckpointCorruptError(path, e.byte_offset(), e.stage(), e.detail());
  }
}

void save_checkpoint_chain(const CheckpointChain& chain,
                           const SearchCheckpoint& checkpoint) {
  chain.save(kCheckpointFormatTag,
             checkpoint_to_json(checkpoint).dump(2) + "\n");
}

std::optional<LoadedCheckpoint> load_checkpoint_chain(
    const CheckpointChain& chain,
    const std::function<void(const std::string& warning)>& warn) {
  std::optional<SearchCheckpoint> parsed;
  const auto loaded = chain.load_newest_valid(
      kCheckpointFormatTag,
      [&parsed](const std::string& payload) {
        parsed.reset();
        parsed = checkpoint_from_payload(payload);
      },
      warn);
  if (!loaded) return std::nullopt;
  return LoadedCheckpoint{std::move(*parsed), loaded->file, loaded->skipped};
}

void save_json(const std::string& path, const Json& json) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_json: cannot open " + path);
  out << json.dump(2) << '\n';
}

Json load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_json: cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Json::parse(text);
}

}  // namespace hadas::core
