#include "core/serialize.hpp"

#include <fstream>
#include <stdexcept>

namespace hadas::core {

using hadas::util::Json;

Json to_json(const supernet::BackboneConfig& config) {
  Json json;
  json["resolution"] = Json(config.resolution);
  json["stem_width"] = Json(config.stem_width);
  json["last_width"] = Json(config.last_width);
  Json::Array stages;
  for (const auto& stage : config.stages) {
    Json s;
    s["width"] = Json(stage.width);
    s["depth"] = Json(stage.depth);
    s["kernel"] = Json(stage.kernel);
    s["expand"] = Json(stage.expand);
    stages.push_back(std::move(s));
  }
  json["stages"] = Json(std::move(stages));
  return json;
}

supernet::BackboneConfig backbone_from_json(const Json& json) {
  supernet::BackboneConfig config;
  config.resolution = json.at("resolution").as_int();
  config.stem_width = json.at("stem_width").as_int();
  config.last_width = json.at("last_width").as_int();
  const auto& stages = json.at("stages").as_array();
  if (stages.size() != supernet::kNumStages)
    throw std::invalid_argument("backbone_from_json: wrong stage count");
  for (std::size_t s = 0; s < stages.size(); ++s) {
    config.stages[s].width = stages[s].at("width").as_int();
    config.stages[s].depth = stages[s].at("depth").as_int();
    config.stages[s].kernel = stages[s].at("kernel").as_int();
    config.stages[s].expand = stages[s].at("expand").as_int();
  }
  return config;
}

Json to_json(const dynn::ExitPlacement& placement) {
  Json json;
  json["total_layers"] = Json(placement.total_layers());
  Json::Array exits;
  for (std::size_t layer : placement.positions()) exits.push_back(Json(layer));
  json["exits"] = Json(std::move(exits));
  return json;
}

dynn::ExitPlacement placement_from_json(const Json& json) {
  std::vector<std::size_t> exits;
  for (const Json& layer : json.at("exits").as_array())
    exits.push_back(layer.as_index());
  return dynn::ExitPlacement(json.at("total_layers").as_index(), exits);
}

Json to_json(const hw::DvfsSetting& setting) {
  Json json;
  json["core_idx"] = Json(setting.core_idx);
  json["emc_idx"] = Json(setting.emc_idx);
  return json;
}

hw::DvfsSetting setting_from_json(const Json& json) {
  return {json.at("core_idx").as_index(), json.at("emc_idx").as_index()};
}

Json to_json(const StaticEval& eval) {
  Json json;
  json["accuracy"] = Json(eval.accuracy);
  json["latency_s"] = Json(eval.latency_s);
  json["energy_j"] = Json(eval.energy_j);
  return json;
}

StaticEval static_eval_from_json(const Json& json) {
  StaticEval eval;
  eval.accuracy = json.at("accuracy").as_number();
  eval.latency_s = json.at("latency_s").as_number();
  eval.energy_j = json.at("energy_j").as_number();
  return eval;
}

Json to_json(const dynn::DynamicMetrics& metrics) {
  Json json;
  json["score_eq5"] = Json(metrics.score_eq5);
  json["mean_n"] = Json(metrics.mean_n);
  json["oracle_accuracy"] = Json(metrics.oracle_accuracy);
  json["energy_per_sample_j"] = Json(metrics.energy_per_sample_j);
  json["latency_per_sample_s"] = Json(metrics.latency_per_sample_s);
  json["energy_gain"] = Json(metrics.energy_gain);
  json["latency_gain"] = Json(metrics.latency_gain);
  return json;
}

dynn::DynamicMetrics dynamic_metrics_from_json(const Json& json) {
  dynn::DynamicMetrics metrics;
  metrics.score_eq5 = json.at("score_eq5").as_number();
  metrics.mean_n = json.at("mean_n").as_number();
  metrics.oracle_accuracy = json.at("oracle_accuracy").as_number();
  metrics.energy_per_sample_j = json.at("energy_per_sample_j").as_number();
  metrics.latency_per_sample_s = json.at("latency_per_sample_s").as_number();
  metrics.energy_gain = json.at("energy_gain").as_number();
  metrics.latency_gain = json.at("latency_gain").as_number();
  return metrics;
}

Json to_json(const FinalSolution& solution) {
  Json json;
  json["backbone"] = to_json(solution.backbone);
  json["placement"] = to_json(solution.placement);
  json["setting"] = to_json(solution.setting);
  json["static"] = to_json(solution.static_eval);
  json["dynamic"] = to_json(solution.dynamic);
  return json;
}

FinalSolution final_solution_from_json(const Json& json) {
  return FinalSolution{backbone_from_json(json.at("backbone")),
                       placement_from_json(json.at("placement")),
                       setting_from_json(json.at("setting")),
                       static_eval_from_json(json.at("static")),
                       dynamic_metrics_from_json(json.at("dynamic"))};
}

Json result_to_json(const HadasResult& result, hw::Target target) {
  Json json;
  json["device"] = Json(hw::target_name(target));
  json["outer_evaluations"] = Json(result.outer_evaluations);
  json["inner_evaluations"] = Json(result.inner_evaluations);
  json["explored_backbones"] = Json(result.backbones.size());
  Json::Array pareto;
  for (const auto& solution : result.final_pareto)
    pareto.push_back(to_json(solution));
  json["final_pareto"] = Json(std::move(pareto));
  return json;
}

std::vector<FinalSolution> final_pareto_from_json(const Json& json) {
  std::vector<FinalSolution> solutions;
  for (const Json& entry : json.at("final_pareto").as_array())
    solutions.push_back(final_solution_from_json(entry));
  return solutions;
}

void save_json(const std::string& path, const Json& json) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_json: cannot open " + path);
  out << json.dump(2) << '\n';
}

Json load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_json: cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Json::parse(text);
}

}  // namespace hadas::core
