#pragma once

#include <cstddef>
#include <vector>

/// No-alias qualifier for hot kernels; expands to nothing on compilers
/// without a __restrict__ extension.
#if defined(__GNUC__) || defined(__clang__)
#define HADAS_RESTRICT __restrict__
#else
#define HADAS_RESTRICT
#endif

namespace hadas::nn {

/// Dense row-major matrix of floats. This is the only tensor type the exit
/// training engine needs: batches of feature vectors and weight matrices.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const float* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  /// Set every element to `v`.
  void fill(float v);

  /// Elementwise in-place scale.
  void scale(float s);

  /// this += s * other (same shape required).
  void axpy(float s, const Matrix& other);

  /// C = A * B. Throws on shape mismatch.
  static Matrix matmul(const Matrix& a, const Matrix& b);

  /// C = A * B^T (common case: activations x weight-rows).
  static Matrix matmul_nt(const Matrix& a, const Matrix& b);

  /// C = A^T * B (gradient accumulation case).
  static Matrix matmul_tn(const Matrix& a, const Matrix& b);

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace hadas::nn
