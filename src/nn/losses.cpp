#include "nn/losses.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hadas::nn {

Matrix log_softmax(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.row_ptr(r);
    float* o = out.row_ptr(r);
    float mx = in[0];
    for (std::size_t c = 1; c < logits.cols(); ++c) mx = std::max(mx, in[c]);
    double total = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c)
      total += std::exp(static_cast<double>(in[c] - mx));
    const float lse = mx + static_cast<float>(std::log(total));
    for (std::size_t c = 0; c < logits.cols(); ++c) o[c] = in[c] - lse;
  }
  return out;
}

Matrix softmax(const Matrix& logits, double temperature) {
  if (temperature <= 0.0) throw std::invalid_argument("softmax: temperature <= 0");
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.row_ptr(r);
    float* o = out.row_ptr(r);
    double mx = in[0];
    for (std::size_t c = 1; c < logits.cols(); ++c)
      mx = std::max(mx, static_cast<double>(in[c]));
    double total = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const double e = std::exp((in[c] - mx) / temperature);
      o[c] = static_cast<float>(e);
      total += e;
    }
    const auto inv = static_cast<float>(1.0 / total);
    for (std::size_t c = 0; c < logits.cols(); ++c) o[c] *= inv;
  }
  return out;
}

LossResult nll_loss(const Matrix& logits, const std::vector<std::int32_t>& labels) {
  if (labels.size() != logits.rows())
    throw std::invalid_argument("nll_loss: label count mismatch");
  LossResult res;
  res.dlogits = Matrix(logits.rows(), logits.cols());
  const double inv_n = 1.0 / static_cast<double>(logits.rows());
  double loss = 0.0;
  // Fused softmax + NLL: one exp pass per row (the textbook formulation via
  // log_softmax took two — one for the log-sum-exp, one to turn log-probs
  // back into the softmax gradient).
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto label = static_cast<std::size_t>(labels[r]);
    if (label >= logits.cols()) throw std::invalid_argument("nll_loss: bad label");
    const float* in = logits.row_ptr(r);
    float* g = res.dlogits.row_ptr(r);
    float mx = in[0];
    for (std::size_t c = 1; c < logits.cols(); ++c) mx = std::max(mx, in[c]);
    double total = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const double e = std::exp(static_cast<double>(in[c] - mx));
      g[c] = static_cast<float>(e);
      total += e;
    }
    loss -= static_cast<double>(in[label] - mx) - std::log(total);
    const auto scale = static_cast<float>(inv_n / total);
    for (std::size_t c = 0; c < logits.cols(); ++c) g[c] *= scale;
    g[label] -= static_cast<float>(inv_n);
  }
  res.loss = loss * inv_n;
  return res;
}

SoftTargets soften_teacher(const Matrix& teacher_logits, double temperature) {
  if (temperature <= 0.0)
    throw std::invalid_argument("soften_teacher: temperature <= 0");
  SoftTargets soft;
  soft.temperature = temperature;
  soft.probs = softmax(teacher_logits, temperature);
  soft.row_plogp.resize(teacher_logits.rows());
  for (std::size_t r = 0; r < teacher_logits.rows(); ++r) {
    const float* p = soft.probs.row_ptr(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < teacher_logits.cols(); ++c)
      if (p[c] > 0.0f)
        acc += static_cast<double>(p[c]) * std::log(static_cast<double>(p[c]));
    soft.row_plogp[r] = acc;
  }
  return soft;
}

LossResult kd_loss_soft(const Matrix& student_logits, const SoftTargets& soft,
                        const std::vector<std::size_t>& rows, std::size_t begin) {
  if (student_logits.cols() != soft.probs.cols())
    throw std::invalid_argument("kd_loss_soft: shape mismatch");
  if (begin + student_logits.rows() > rows.size())
    throw std::invalid_argument("kd_loss_soft: row index range out of bounds");
  const double temperature = soft.temperature;
  if (temperature <= 0.0) throw std::invalid_argument("kd_loss_soft: temperature <= 0");

  LossResult res;
  res.dlogits = Matrix(student_logits.rows(), student_logits.cols());
  const std::size_t ncols = student_logits.cols();
  const double inv_n = 1.0 / static_cast<double>(student_logits.rows());
  const double inv_t = 1.0 / temperature;
  const double t2 = temperature * temperature;
  double loss = 0.0;
  std::vector<double> e(ncols);  // scratch: exp of the softened student row
  for (std::size_t r = 0; r < student_logits.rows(); ++r) {
    const float* in = student_logits.row_ptr(r);
    const float* p = soft.probs.row_ptr(rows[begin + r]);
    float* g = res.dlogits.row_ptr(r);
    double mx = static_cast<double>(in[0]) * inv_t;
    for (std::size_t c = 1; c < ncols; ++c)
      mx = std::max(mx, static_cast<double>(in[c]) * inv_t);
    double total = 0.0;
    for (std::size_t c = 0; c < ncols; ++c) {
      e[c] = std::exp(static_cast<double>(in[c]) * inv_t - mx);
      total += e[c];
    }
    const double shift = mx + std::log(total);
    const double inv_total = 1.0 / total;
    // KL(p || q) per row = Σ p·log p − Σ p·log q, with
    // log q_c = in_c/T − (mx + log Σ exp). One exp pass serves both the loss
    // and the (q − p)·T gradient.
    double p_dot_s = 0.0, p_sum = 0.0;
    for (std::size_t c = 0; c < ncols; ++c) {
      p_dot_s += static_cast<double>(p[c]) * (static_cast<double>(in[c]) * inv_t);
      p_sum += static_cast<double>(p[c]);
      g[c] = static_cast<float>((e[c] * inv_total - static_cast<double>(p[c])) *
                                temperature * inv_n);
    }
    loss += soft.row_plogp[rows[begin + r]] - (p_dot_s - shift * p_sum);
  }
  res.loss = loss * t2 * inv_n;
  return res;
}

LossResult kd_loss(const Matrix& student_logits, const Matrix& teacher_logits,
                   double temperature) {
  if (student_logits.rows() != teacher_logits.rows() ||
      student_logits.cols() != teacher_logits.cols())
    throw std::invalid_argument("kd_loss: shape mismatch");
  const SoftTargets soft = soften_teacher(teacher_logits, temperature);
  std::vector<std::size_t> rows(student_logits.rows());
  for (std::size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  return kd_loss_soft(student_logits, soft, rows, 0);
}

double accuracy(const Matrix& logits, const std::vector<std::int32_t>& labels) {
  const auto mask = correct_mask(logits, labels);
  if (mask.empty()) return 0.0;
  std::size_t correct = 0;
  for (bool b : mask) correct += b ? 1 : 0;
  return static_cast<double>(correct) / static_cast<double>(mask.size());
}

std::vector<bool> correct_mask(const Matrix& logits,
                               const std::vector<std::int32_t>& labels) {
  if (labels.size() != logits.rows())
    throw std::invalid_argument("correct_mask: label count mismatch");
  std::vector<bool> mask(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* row = logits.row_ptr(r);
    std::size_t arg = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c)
      if (row[c] > row[arg]) arg = c;
    mask[r] = (arg == static_cast<std::size_t>(labels[r]));
  }
  return mask;
}

std::vector<double> row_normalized_entropy(const Matrix& logits) {
  std::vector<double> out(logits.rows());
  const double log_n = std::log(static_cast<double>(std::max<std::size_t>(logits.cols(), 2)));
  // H = −Σ p·log p with p = e_c / Σe and log p_c = (x_c − mx) − log Σe, so
  // H = log Σe − (Σ e_c·(x_c − mx)) / Σe: one exp pass, no per-element log,
  // no materialized probability matrix.
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.row_ptr(r);
    double mx = in[0];
    for (std::size_t c = 1; c < logits.cols(); ++c)
      mx = std::max(mx, static_cast<double>(in[c]));
    double total = 0.0, weighted = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const double s = static_cast<double>(in[c]) - mx;
      const double e = std::exp(s);
      total += e;
      weighted += e * s;
    }
    out[r] = (std::log(total) - weighted / total) / log_n;
  }
  return out;
}

std::vector<double> row_max_prob(const Matrix& logits) {
  std::vector<double> out(logits.rows());
  // The max softmax probability is exp(0)/Σ exp(x_c − mx) = 1/Σe — no
  // probability matrix needed.
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.row_ptr(r);
    double mx = in[0];
    for (std::size_t c = 1; c < logits.cols(); ++c)
      mx = std::max(mx, static_cast<double>(in[c]));
    double total = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c)
      total += std::exp(static_cast<double>(in[c]) - mx);
    out[r] = 1.0 / total;
  }
  return out;
}

}  // namespace hadas::nn
