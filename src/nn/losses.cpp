#include "nn/losses.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hadas::nn {

Matrix log_softmax(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.row_ptr(r);
    float* o = out.row_ptr(r);
    float mx = in[0];
    for (std::size_t c = 1; c < logits.cols(); ++c) mx = std::max(mx, in[c]);
    double total = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c)
      total += std::exp(static_cast<double>(in[c] - mx));
    const float lse = mx + static_cast<float>(std::log(total));
    for (std::size_t c = 0; c < logits.cols(); ++c) o[c] = in[c] - lse;
  }
  return out;
}

Matrix softmax(const Matrix& logits, double temperature) {
  if (temperature <= 0.0) throw std::invalid_argument("softmax: temperature <= 0");
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.row_ptr(r);
    float* o = out.row_ptr(r);
    double mx = in[0];
    for (std::size_t c = 1; c < logits.cols(); ++c)
      mx = std::max(mx, static_cast<double>(in[c]));
    double total = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const double e = std::exp((in[c] - mx) / temperature);
      o[c] = static_cast<float>(e);
      total += e;
    }
    const auto inv = static_cast<float>(1.0 / total);
    for (std::size_t c = 0; c < logits.cols(); ++c) o[c] *= inv;
  }
  return out;
}

LossResult nll_loss(const Matrix& logits, const std::vector<std::int32_t>& labels) {
  if (labels.size() != logits.rows())
    throw std::invalid_argument("nll_loss: label count mismatch");
  const Matrix lsm = log_softmax(logits);
  LossResult res;
  res.dlogits = Matrix(logits.rows(), logits.cols());
  const double inv_n = 1.0 / static_cast<double>(logits.rows());
  double loss = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto label = static_cast<std::size_t>(labels[r]);
    if (label >= logits.cols()) throw std::invalid_argument("nll_loss: bad label");
    loss -= lsm.at(r, label);
    const float* l = lsm.row_ptr(r);
    float* g = res.dlogits.row_ptr(r);
    for (std::size_t c = 0; c < logits.cols(); ++c)
      g[c] = static_cast<float>(std::exp(static_cast<double>(l[c])) * inv_n);
    g[label] -= static_cast<float>(inv_n);
  }
  res.loss = loss * inv_n;
  return res;
}

LossResult kd_loss(const Matrix& student_logits, const Matrix& teacher_logits,
                   double temperature) {
  if (student_logits.rows() != teacher_logits.rows() ||
      student_logits.cols() != teacher_logits.cols())
    throw std::invalid_argument("kd_loss: shape mismatch");
  if (temperature <= 0.0) throw std::invalid_argument("kd_loss: temperature <= 0");

  const Matrix p_teacher = softmax(teacher_logits, temperature);
  // log-softmax of student at temperature T.
  Matrix scaled = student_logits;
  scaled.scale(static_cast<float>(1.0 / temperature));
  const Matrix log_q = log_softmax(scaled);
  const Matrix q = softmax(student_logits, temperature);

  LossResult res;
  res.dlogits = Matrix(student_logits.rows(), student_logits.cols());
  const double inv_n = 1.0 / static_cast<double>(student_logits.rows());
  const double t2 = temperature * temperature;
  double loss = 0.0;
  for (std::size_t r = 0; r < student_logits.rows(); ++r) {
    const float* p = p_teacher.row_ptr(r);
    const float* lq = log_q.row_ptr(r);
    const float* qr = q.row_ptr(r);
    float* g = res.dlogits.row_ptr(r);
    for (std::size_t c = 0; c < student_logits.cols(); ++c) {
      if (p[c] > 0.0f)
        loss += static_cast<double>(p[c]) *
                (std::log(static_cast<double>(p[c])) - static_cast<double>(lq[c]));
      // d/d(student_logit) of KL * T^2 = (q - p) * T  (the 1/T of the softened
      // softmax cancels one factor of T^2).
      g[c] = static_cast<float>((qr[c] - p[c]) * temperature * inv_n);
    }
  }
  res.loss = loss * t2 * inv_n;
  return res;
}

double accuracy(const Matrix& logits, const std::vector<std::int32_t>& labels) {
  const auto mask = correct_mask(logits, labels);
  if (mask.empty()) return 0.0;
  std::size_t correct = 0;
  for (bool b : mask) correct += b ? 1 : 0;
  return static_cast<double>(correct) / static_cast<double>(mask.size());
}

std::vector<bool> correct_mask(const Matrix& logits,
                               const std::vector<std::int32_t>& labels) {
  if (labels.size() != logits.rows())
    throw std::invalid_argument("correct_mask: label count mismatch");
  std::vector<bool> mask(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* row = logits.row_ptr(r);
    std::size_t arg = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c)
      if (row[c] > row[arg]) arg = c;
    mask[r] = (arg == static_cast<std::size_t>(labels[r]));
  }
  return mask;
}

std::vector<double> row_normalized_entropy(const Matrix& logits) {
  const Matrix p = softmax(logits);
  std::vector<double> out(logits.rows());
  const double log_n = std::log(static_cast<double>(std::max<std::size_t>(logits.cols(), 2)));
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* row = p.row_ptr(r);
    double h = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c)
      if (row[c] > 0.0f) h -= static_cast<double>(row[c]) * std::log(static_cast<double>(row[c]));
    out[r] = h / log_n;
  }
  return out;
}

std::vector<double> row_max_prob(const Matrix& logits) {
  const Matrix p = softmax(logits);
  std::vector<double> out(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* row = p.row_ptr(r);
    float mx = row[0];
    for (std::size_t c = 1; c < logits.cols(); ++c) mx = std::max(mx, row[c]);
    out[r] = static_cast<double>(mx);
  }
  return out;
}

}  // namespace hadas::nn
