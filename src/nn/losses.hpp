#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.hpp"

namespace hadas::nn {

/// Result of a loss evaluation: scalar mean loss plus the gradient with
/// respect to the logits (already averaged over the batch).
struct LossResult {
  double loss = 0.0;
  Matrix dlogits;  // same shape as the logits
};

/// Row-wise log-softmax (numerically stable).
Matrix log_softmax(const Matrix& logits);

/// Row-wise softmax with a temperature.
Matrix softmax(const Matrix& logits, double temperature = 1.0);

/// Mean negative log-likelihood of the true labels under softmax(logits) —
/// the L_NLL term of HADAS eq. (4). `labels[i]` is the class of row i.
LossResult nll_loss(const Matrix& logits, const std::vector<std::int32_t>& labels);

/// Temperature-scaled knowledge-distillation loss — the L_KD term of HADAS
/// eq. (4): KL(softmax(teacher/T) || softmax(student/T)) * T^2, averaged over
/// the batch. The gradient is w.r.t. the *student* logits only (the teacher —
/// the backbone's final classifier — is frozen in HADAS).
LossResult kd_loss(const Matrix& student_logits, const Matrix& teacher_logits,
                   double temperature);

/// Precomputed softened teacher targets for the KD loss: softmax(teacher/T)
/// plus the per-row sum of p·log p (the teacher-entropy half of the KL term).
/// The teacher is frozen, so these are computed ONCE per fit instead of once
/// per batch per epoch — softmax is row-wise, so batch-gathered rows are
/// identical to per-batch recomputation.
struct SoftTargets {
  Matrix probs;                   // softmax(teacher / T), full training set
  std::vector<double> row_plogp;  // per-row Σ p·log p
  double temperature = 0.0;
};

SoftTargets soften_teacher(const Matrix& teacher_logits, double temperature);

/// KD loss against precomputed soft targets. Student row r is matched with
/// teacher row `rows[begin + r]`, so shuffled minibatches need no gather of
/// the teacher matrix at all. Single exp pass over the student logits.
LossResult kd_loss_soft(const Matrix& student_logits, const SoftTargets& soft,
                        const std::vector<std::size_t>& rows, std::size_t begin);

/// Fraction of rows whose argmax matches the label.
double accuracy(const Matrix& logits, const std::vector<std::int32_t>& labels);

/// Per-row correctness mask (1 = argmax matches label).
std::vector<bool> correct_mask(const Matrix& logits,
                               const std::vector<std::int32_t>& labels);

/// Per-row normalized entropy of softmax(logits), in [0,1]. Used by the
/// entropy-based runtime controller.
std::vector<double> row_normalized_entropy(const Matrix& logits);

/// Per-row max softmax probability. Used by the confidence controller.
std::vector<double> row_max_prob(const Matrix& logits);

}  // namespace hadas::nn
