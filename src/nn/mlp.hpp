#pragma once

#include <cstddef>

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace hadas::nn {

/// One-hidden-layer MLP classifier with ReLU, or a plain linear classifier
/// when hidden_dim == 0. This is the functional analog of a HADAS exit head
/// (conv + BN + activation block followed by a classifier) operating on the
/// backbone's intermediate feature vector.
class MlpClassifier {
 public:
  /// He-initialized weights drawn from `rng`.
  MlpClassifier(std::size_t in_dim, std::size_t hidden_dim,
                std::size_t num_classes, hadas::util::Rng& rng);

  std::size_t in_dim() const { return in_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }
  std::size_t num_classes() const { return num_classes_; }

  /// Number of trainable parameters.
  std::size_t parameter_count() const;

  /// Forward pass: rows of `x` are samples. Returns logits.
  Matrix forward(const Matrix& x) const;

  /// Forward pass that caches activations for a subsequent backward().
  Matrix forward_cached(const Matrix& x);

  /// Backward from dlogits (as produced by the loss functions, already
  /// batch-averaged); accumulates parameter gradients internally.
  /// Must follow a forward_cached() on the same batch.
  void backward(const Matrix& dlogits);

  /// SGD step with momentum and weight decay, then clears gradients.
  void sgd_step(double lr, double momentum, double weight_decay);

  /// Zero the accumulated gradients.
  void zero_grad();

  /// L2 norm of all gradients (diagnostic / tests).
  double grad_norm() const;

 private:
  std::size_t in_dim_;
  std::size_t hidden_dim_;
  std::size_t num_classes_;

  // Parameters. With hidden_dim_ == 0 only w2_/b2_ are used (in -> classes).
  Matrix w1_, b1_;  // hidden x in, 1 x hidden
  Matrix w2_, b2_;  // classes x (hidden or in), 1 x classes

  // Gradients and momentum buffers, same shapes as the parameters.
  Matrix gw1_, gb1_, gw2_, gb2_;
  Matrix mw1_, mb1_, mw2_, mb2_;

  // Cached activations for backward.
  Matrix cache_x_, cache_h_;  // input batch, post-ReLU hidden batch
  bool has_cache_ = false;
};

}  // namespace hadas::nn
