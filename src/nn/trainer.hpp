#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace hadas::nn {

/// Hyper-parameters for exit-head training (HADAS eq. 4 hybrid loss).
struct TrainConfig {
  std::size_t epochs = 12;
  std::size_t batch_size = 64;
  double lr = 0.15;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  bool cosine_lr = true;      ///< cosine decay of lr over epochs
  double kd_weight = 1.0;     ///< weight of the L_KD term (0 disables KD)
  double kd_temperature = 4.0;
  std::uint64_t shuffle_seed = 1;
  /// Test hook for the NaN guard: when < epochs, the first batch of that
  /// epoch reports a non-finite combined loss — once by default, or on every
  /// attempt (so rollback cannot recover) when inject_nan_repeat is set.
  std::size_t inject_nan_epoch = static_cast<std::size_t>(-1);
  bool inject_nan_repeat = false;
};

/// Per-epoch record of the training trajectory.
struct EpochStats {
  double train_loss = 0.0;  ///< mean combined loss over the epoch
  double nll_loss = 0.0;
  double kd_loss = 0.0;
  double val_accuracy = 0.0;
};

/// Outcome of a full training run.
struct TrainResult {
  std::vector<EpochStats> epochs;
  double final_val_accuracy = 0.0;
  /// Epochs restarted by the NaN guard (0 in a healthy run).
  std::size_t nan_rollbacks = 0;
};

/// In-memory classification dataset: one feature row per sample, with hard
/// labels and (optionally) frozen teacher logits for knowledge distillation.
struct FeatureDataset {
  Matrix features;                       // n x d
  std::vector<std::int32_t> labels;      // n
  Matrix teacher_logits;                 // n x classes, may be empty (no KD)

  std::size_t size() const { return features.rows(); }
};

/// Mini-batch SGD trainer for an exit head. The backbone is frozen (its
/// features and teacher logits are inputs), exactly matching HADAS's exit
/// training scheme: only the head's parameters are optimized.
class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(config) {}

  const TrainConfig& config() const { return config_; }

  /// Train `head` on `train`, reporting validation accuracy on `val` after
  /// every epoch. KD is used only when teacher logits are present and
  /// kd_weight > 0.
  ///
  /// NaN guard: the combined loss of every batch is checked before the
  /// gradients touch the parameters. On the first non-finite loss the epoch
  /// is abandoned, the head (parameters, momentum) and the shuffle stream
  /// are rolled back to the end of the last good epoch, and the epoch is
  /// retried once; a second non-finite loss anywhere in the run aborts with
  /// a std::runtime_error naming the epoch and batch, so a diverged head
  /// can never silently poison downstream accuracy numbers.
  TrainResult fit(MlpClassifier& head, const FeatureDataset& train,
                  const FeatureDataset& val) const;

  /// Evaluate accuracy of `head` on a dataset.
  static double evaluate(const MlpClassifier& head, const FeatureDataset& data);

 private:
  TrainConfig config_;
};

}  // namespace hadas::nn
