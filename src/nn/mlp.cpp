#include "nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

namespace hadas::nn {

namespace {
Matrix he_init(std::size_t rows, std::size_t cols, hadas::util::Rng& rng) {
  Matrix m(rows, cols);
  const double scale = std::sqrt(2.0 / static_cast<double>(cols));
  for (auto& v : m.data()) v = static_cast<float>(rng.normal(0.0, scale));
  return m;
}

void add_bias(Matrix& y, const Matrix& b) {
  for (std::size_t r = 0; r < y.rows(); ++r) {
    float* row = y.row_ptr(r);
    const float* bias = b.row_ptr(0);
    for (std::size_t c = 0; c < y.cols(); ++c) row[c] += bias[c];
  }
}

void momentum_step(Matrix& param, Matrix& grad, Matrix& mom, double lr,
                   double momentum, double weight_decay) {
  auto& p = param.data();
  auto& g = grad.data();
  auto& m = mom.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float total_grad = g[i] + static_cast<float>(weight_decay) * p[i];
    m[i] = static_cast<float>(momentum) * m[i] + total_grad;
    p[i] -= static_cast<float>(lr) * m[i];
    g[i] = 0.0f;
  }
}
}  // namespace

MlpClassifier::MlpClassifier(std::size_t in_dim, std::size_t hidden_dim,
                             std::size_t num_classes, hadas::util::Rng& rng)
    : in_dim_(in_dim), hidden_dim_(hidden_dim), num_classes_(num_classes) {
  if (in_dim == 0 || num_classes == 0)
    throw std::invalid_argument("MlpClassifier: zero dimension");
  if (hidden_dim_ > 0) {
    w1_ = he_init(hidden_dim_, in_dim_, rng);
    b1_ = Matrix(1, hidden_dim_);
    gw1_ = Matrix(hidden_dim_, in_dim_);
    gb1_ = Matrix(1, hidden_dim_);
    mw1_ = Matrix(hidden_dim_, in_dim_);
    mb1_ = Matrix(1, hidden_dim_);
  }
  const std::size_t feat = hidden_dim_ > 0 ? hidden_dim_ : in_dim_;
  w2_ = he_init(num_classes_, feat, rng);
  b2_ = Matrix(1, num_classes_);
  gw2_ = Matrix(num_classes_, feat);
  gb2_ = Matrix(1, num_classes_);
  mw2_ = Matrix(num_classes_, feat);
  mb2_ = Matrix(1, num_classes_);
}

std::size_t MlpClassifier::parameter_count() const {
  std::size_t n = w2_.size() + b2_.size();
  if (hidden_dim_ > 0) n += w1_.size() + b1_.size();
  return n;
}

Matrix MlpClassifier::forward(const Matrix& x) const {
  if (x.cols() != in_dim_) throw std::invalid_argument("MlpClassifier: input dim");
  if (hidden_dim_ == 0) {
    Matrix logits = Matrix::matmul_nt(x, w2_);
    add_bias(logits, b2_);
    return logits;
  }
  Matrix h = Matrix::matmul_nt(x, w1_);
  add_bias(h, b1_);
  for (auto& v : h.data()) v = v > 0.0f ? v : 0.0f;
  Matrix logits = Matrix::matmul_nt(h, w2_);
  add_bias(logits, b2_);
  return logits;
}

Matrix MlpClassifier::forward_cached(const Matrix& x) {
  if (x.cols() != in_dim_) throw std::invalid_argument("MlpClassifier: input dim");
  cache_x_ = x;
  if (hidden_dim_ == 0) {
    has_cache_ = true;
    Matrix logits = Matrix::matmul_nt(x, w2_);
    add_bias(logits, b2_);
    return logits;
  }
  Matrix h = Matrix::matmul_nt(x, w1_);
  add_bias(h, b1_);
  for (auto& v : h.data()) v = v > 0.0f ? v : 0.0f;
  cache_h_ = h;
  has_cache_ = true;
  Matrix logits = Matrix::matmul_nt(h, w2_);
  add_bias(logits, b2_);
  return logits;
}

void MlpClassifier::backward(const Matrix& dlogits) {
  if (!has_cache_) throw std::logic_error("MlpClassifier: backward before forward");
  const Matrix& feat = hidden_dim_ > 0 ? cache_h_ : cache_x_;
  // dW2 += dlogits^T * feat ; db2 += column sums of dlogits.
  gw2_.axpy(1.0f, Matrix::matmul_tn(dlogits, feat));
  for (std::size_t r = 0; r < dlogits.rows(); ++r) {
    const float* row = dlogits.row_ptr(r);
    float* g = gb2_.row_ptr(0);
    for (std::size_t c = 0; c < dlogits.cols(); ++c) g[c] += row[c];
  }
  if (hidden_dim_ == 0) {
    has_cache_ = false;
    return;
  }
  // dh = dlogits * W2, masked by ReLU.
  Matrix dh = Matrix::matmul(dlogits, w2_);
  for (std::size_t i = 0; i < dh.data().size(); ++i)
    if (cache_h_.data()[i] <= 0.0f) dh.data()[i] = 0.0f;
  gw1_.axpy(1.0f, Matrix::matmul_tn(dh, cache_x_));
  for (std::size_t r = 0; r < dh.rows(); ++r) {
    const float* row = dh.row_ptr(r);
    float* g = gb1_.row_ptr(0);
    for (std::size_t c = 0; c < dh.cols(); ++c) g[c] += row[c];
  }
  has_cache_ = false;
}

void MlpClassifier::sgd_step(double lr, double momentum, double weight_decay) {
  if (hidden_dim_ > 0) {
    momentum_step(w1_, gw1_, mw1_, lr, momentum, weight_decay);
    momentum_step(b1_, gb1_, mb1_, lr, momentum, 0.0);
  }
  momentum_step(w2_, gw2_, mw2_, lr, momentum, weight_decay);
  momentum_step(b2_, gb2_, mb2_, lr, momentum, 0.0);
}

void MlpClassifier::zero_grad() {
  if (hidden_dim_ > 0) {
    gw1_.fill(0.0f);
    gb1_.fill(0.0f);
  }
  gw2_.fill(0.0f);
  gb2_.fill(0.0f);
}

double MlpClassifier::grad_norm() const {
  double acc = gw2_.frobenius_norm() * gw2_.frobenius_norm() +
               gb2_.frobenius_norm() * gb2_.frobenius_norm();
  if (hidden_dim_ > 0)
    acc += gw1_.frobenius_norm() * gw1_.frobenius_norm() +
           gb1_.frobenius_norm() * gb1_.frobenius_norm();
  return std::sqrt(acc);
}

}  // namespace hadas::nn
