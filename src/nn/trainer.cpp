#include "nn/trainer.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "nn/losses.hpp"

namespace hadas::nn {

namespace {
Matrix gather_rows(const Matrix& m, const std::vector<std::size_t>& idx,
                   std::size_t begin, std::size_t end) {
  Matrix out(end - begin, m.cols());
  for (std::size_t i = begin; i < end; ++i) {
    const float* src = m.row_ptr(idx[i]);
    float* dst = out.row_ptr(i - begin);
    for (std::size_t c = 0; c < m.cols(); ++c) dst[c] = src[c];
  }
  return out;
}
}  // namespace

TrainResult Trainer::fit(MlpClassifier& head, const FeatureDataset& train,
                         const FeatureDataset& val) const {
  if (train.size() == 0) throw std::invalid_argument("Trainer: empty train set");
  if (train.labels.size() != train.size())
    throw std::invalid_argument("Trainer: label count mismatch");
  const bool use_kd =
      config_.kd_weight > 0.0 && train.teacher_logits.rows() == train.size();
  // The teacher is frozen: soften its logits once per fit instead of
  // re-running softmax on every gathered minibatch of every epoch.
  const SoftTargets soft =
      use_kd ? soften_teacher(train.teacher_logits, config_.kd_temperature)
             : SoftTargets{};

  hadas::util::Rng rng(config_.shuffle_seed);
  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  TrainResult result;
  result.epochs.reserve(config_.epochs);

  // NaN guard: last-good-epoch snapshot of everything a rolled-back epoch
  // must not have perturbed — parameters + momentum, the shuffle stream and
  // the permutation it acts on.
  MlpClassifier good_head = head;
  hadas::util::Rng good_rng = rng;
  std::vector<std::size_t> good_order = order;
  bool rolled_back = false;
  bool nan_injected = false;

  for (std::size_t epoch = 0; epoch < config_.epochs;) {
    double lr = config_.lr;
    if (config_.cosine_lr && config_.epochs > 1) {
      const double t = static_cast<double>(epoch) /
                       static_cast<double>(config_.epochs - 1);
      lr = 0.5 * config_.lr * (1.0 + std::cos(std::numbers::pi * t));
      lr = std::max(lr, 1e-4 * config_.lr);
    }
    rng.shuffle(order);

    EpochStats stats;
    std::size_t batches = 0;
    std::size_t bad_batch = 0;
    bool bad_epoch = false;
    for (std::size_t begin = 0; begin < train.size();
         begin += config_.batch_size) {
      const std::size_t end = std::min(begin + config_.batch_size, train.size());
      const Matrix x = gather_rows(train.features, order, begin, end);
      std::vector<std::int32_t> y(end - begin);
      for (std::size_t i = begin; i < end; ++i) y[i - begin] = train.labels[order[i]];

      const Matrix logits = head.forward_cached(x);
      LossResult nll = nll_loss(logits, y);
      double combined = nll.loss;

      if (use_kd) {
        const LossResult kd = kd_loss_soft(logits, soft, order, begin);
        stats.kd_loss += kd.loss;
        combined += config_.kd_weight * kd.loss;
        nll.dlogits.axpy(static_cast<float>(config_.kd_weight), kd.dlogits);
      }

      if (epoch == config_.inject_nan_epoch && batches == 0 &&
          (config_.inject_nan_repeat || !nan_injected)) {
        nan_injected = true;
        combined = std::numeric_limits<double>::quiet_NaN();
      }
      if (!std::isfinite(combined)) {
        bad_epoch = true;
        bad_batch = batches;
        break;  // before backward/sgd_step: the parameters stay untouched
      }

      stats.nll_loss += nll.loss;
      stats.train_loss += combined;
      head.backward(nll.dlogits);
      head.sgd_step(lr, config_.momentum, config_.weight_decay);
      ++batches;
    }
    if (bad_epoch) {
      if (rolled_back)
        throw std::runtime_error(
            "Trainer: non-finite loss at epoch " + std::to_string(epoch) +
            ", batch " + std::to_string(bad_batch) +
            " recurred after rolling back to the last good epoch — "
            "training has diverged");
      rolled_back = true;
      ++result.nan_rollbacks;
      head = good_head;
      rng = good_rng;
      order = good_order;
      head.zero_grad();
      continue;  // retry the same epoch from the restored state
    }
    if (batches > 0) {
      stats.train_loss /= static_cast<double>(batches);
      stats.nll_loss /= static_cast<double>(batches);
      stats.kd_loss /= static_cast<double>(batches);
    }
    stats.val_accuracy = evaluate(head, val);
    result.epochs.push_back(stats);
    good_head = head;
    good_rng = rng;
    good_order = order;
    ++epoch;
  }
  result.final_val_accuracy =
      result.epochs.empty() ? evaluate(head, val) : result.epochs.back().val_accuracy;
  return result;
}

double Trainer::evaluate(const MlpClassifier& head, const FeatureDataset& data) {
  if (data.size() == 0) return 0.0;
  const Matrix logits = head.forward(data.features);
  return accuracy(logits, data.labels);
}

}  // namespace hadas::nn
