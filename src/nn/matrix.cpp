#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hadas::nn {

void Matrix::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::scale(float s) {
  for (auto& x : data_) x *= s;
}

void Matrix::axpy(float s, const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix::axpy: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

Matrix Matrix::matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row_ptr(i);
    float* crow = c.row_ptr(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b.row_ptr(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

namespace {

/// Eight-lane dot product. The eight independent accumulator chains let the
/// compiler keep the loop in vector registers without reassociating a single
/// serial reduction (which strict FP forbids); the final combine order is
/// fixed, so results are identical on every host and thread count.
inline float dot8(const float* HADAS_RESTRICT a, const float* HADAS_RESTRICT b,
                  std::size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  float acc4 = 0.0f, acc5 = 0.0f, acc6 = 0.0f, acc7 = 0.0f;
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    acc0 += a[k + 0] * b[k + 0];
    acc1 += a[k + 1] * b[k + 1];
    acc2 += a[k + 2] * b[k + 2];
    acc3 += a[k + 3] * b[k + 3];
    acc4 += a[k + 4] * b[k + 4];
    acc5 += a[k + 5] * b[k + 5];
    acc6 += a[k + 6] * b[k + 6];
    acc7 += a[k + 7] * b[k + 7];
  }
  float tail = 0.0f;
  for (; k < n; ++k) tail += a[k] * b[k];
  return (((acc0 + acc4) + (acc1 + acc5)) + ((acc2 + acc6) + (acc3 + acc7))) +
         tail;
}

}  // namespace

Matrix Matrix::matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("matmul_nt: shape mismatch");
  Matrix c(a.rows(), b.rows());
  const std::size_t kk = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row_ptr(i);
    float* crow = c.row_ptr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) crow[j] = dot8(arow, b.row_ptr(j), kk);
  }
  return c;
}

Matrix Matrix::matmul_tn(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_tn: shape mismatch");
  Matrix c(a.cols(), b.cols());
  const std::size_t nj = b.cols();
  // Four rows of A^T at a time: each pass over a C row does four fused
  // multiply-adds, quartering the C-row memory traffic versus the old
  // one-row-at-a-time axpy loop.
  std::size_t k = 0;
  for (; k + 4 <= a.rows(); k += 4) {
    const float* a0 = a.row_ptr(k + 0);
    const float* a1 = a.row_ptr(k + 1);
    const float* a2 = a.row_ptr(k + 2);
    const float* a3 = a.row_ptr(k + 3);
    const float* b0 = b.row_ptr(k + 0);
    const float* b1 = b.row_ptr(k + 1);
    const float* b2 = b.row_ptr(k + 2);
    const float* b3 = b.row_ptr(k + 3);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float s0 = a0[i], s1 = a1[i], s2 = a2[i], s3 = a3[i];
      if (s0 == 0.0f && s1 == 0.0f && s2 == 0.0f && s3 == 0.0f) continue;
      float* HADAS_RESTRICT crow = c.row_ptr(i);
      for (std::size_t j = 0; j < nj; ++j)
        crow[j] += (s0 * b0[j] + s1 * b1[j]) + (s2 * b2[j] + s3 * b3[j]);
    }
  }
  for (; k < a.rows(); ++k) {
    const float* arow = a.row_ptr(k);
    const float* brow = b.row_ptr(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* HADAS_RESTRICT crow = c.row_ptr(i);
      for (std::size_t j = 0; j < nj; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

}  // namespace hadas::nn
