#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hadas::nn {

void Matrix::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::scale(float s) {
  for (auto& x : data_) x *= s;
}

void Matrix::axpy(float s, const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix::axpy: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

Matrix Matrix::matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row_ptr(i);
    float* crow = c.row_ptr(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b.row_ptr(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix Matrix::matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("matmul_nt: shape mismatch");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row_ptr(i);
    float* crow = c.row_ptr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.row_ptr(j);
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
  return c;
}

Matrix Matrix::matmul_tn(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_tn: shape mismatch");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.row_ptr(k);
    const float* brow = b.row_ptr(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c.row_ptr(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

}  // namespace hadas::nn
