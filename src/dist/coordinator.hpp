#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dist/island.hpp"
#include "util/json.hpp"
#include "util/strutil.hpp"

namespace hadas::net {
class SocketHandler;
}

namespace hadas::dist {

/// Supervision knobs of the island coordinator. The defaults suit a real
/// search; tests shrink the timeouts to exercise the watchdog quickly.
struct DistOptions {
  /// Run islands as `hadas worker` subprocesses (the production topology).
  /// false = evolve every island in-process, sequentially round-major —
  /// the reference mode the chaos tests byte-compare against.
  bool spawn = true;
  /// A worker whose heartbeat counter does not advance for this long is
  /// declared hung and SIGKILLed (then handled like any other crash).
  std::size_t heartbeat_ms = 30000;
  std::size_t poll_ms = 30;          ///< supervision loop period
  std::size_t backoff_ms = 100;      ///< first restart delay (doubles)
  std::size_t backoff_max_ms = 2000; ///< restart delay ceiling
  /// Consecutive worker failures that trip an island's circuit breaker.
  /// A tripped island is quarantined: no more subprocess attempts; the
  /// coordinator finishes it inline after the healthy islands are done.
  std::size_t island_failure_threshold = 3;
  /// Worker-side wait budget for inbound migrants (exit 3 past it).
  std::size_t worker_wait_timeout_ms = 120000;
  /// Chaos schedules (HADAS_CHAOS) are forwarded to first spawns and
  /// stripped from respawns so an every-hit crash rule cannot crash-loop
  /// every incarnation. true keeps forwarding them — the breaker test uses
  /// this to force a crash loop and the quarantine path.
  bool chaos_respawn_keep = false;
  /// Worker executable; empty = this binary (/proc/self/exe).
  std::string worker_binary;
  /// Multi-host mode (`hadas search --dist K --listen host:port`): instead
  /// of forking local workers, accept `hadas worker --connect` sessions on
  /// this endpoint and exchange migrants over the resumable net layer.
  /// Ignored when spawn is false (inline reference mode).
  std::optional<util::HostPort> listen;
  /// Socket stack for net mode; nullptr = real TCP. Tests inject the
  /// deterministic FakeSocketHandler (or a FlakySocketHandler around it).
  net::SocketHandler* socket_handler = nullptr;
  const std::atomic<bool>* cancel = nullptr;  ///< SIGINT/SIGTERM flag
  /// Supervision diagnostics sink; nullptr = stderr.
  std::function<void(const std::string&)> log;
};

/// What a distributed run did, beyond the merged result itself. The same
/// numbers are published as dist.* metrics through the global registry.
struct DistReport {
  util::Json merged;  ///< merge_islands() output (unset when interrupted)
  std::size_t islands = 0;
  std::size_t workers_spawned = 0;    ///< first spawns + respawns
  std::size_t workers_restarted = 0;  ///< respawns after a failure
  std::size_t workers_quarantined = 0;
  std::size_t heartbeat_misses = 0;   ///< hang detections (SIGKILLs)
  std::size_t migrants_exchanged = 0; ///< genomes in valid migrant files
  bool interrupted = false;           ///< cancel fired; workdir resumable
};

/// Island-model coordinator: partitions the outer population into
/// spec.islands islands, supervises one worker subprocess per island
/// (heartbeat watchdog, restart with exponential backoff, per-island
/// circuit breaker with inline salvage), and merges the island fronts into
/// one Pareto set. Every decision is derived from the workdir's durable
/// state, so a killed coordinator is rerun with the same arguments and
/// converges to the same merged front.
class DistCoordinator {
 public:
  DistCoordinator(DistSpec spec, std::string workdir, DistOptions options = {});

  DistReport run();

 private:
  bool run_islands_inline(const std::vector<std::size_t>& islands,
                          bool failpoints_on);
  void say(const std::string& message) const;

  DistSpec spec_;
  std::string workdir_;
  DistOptions options_;
};

}  // namespace hadas::dist
