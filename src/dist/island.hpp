#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/hadas_engine.hpp"
#include "util/json.hpp"

namespace hadas::dist {

/// Durable-envelope format tags of the dist layer's on-disk artifacts.
inline constexpr const char* kDistSpecFormatTag = "hadas-dist-spec-v1";
inline constexpr const char* kMigrantsFormatTag = "hadas-migrants-v1";
inline constexpr const char* kIslandResultFormatTag = "hadas-island-result-v1";

/// Worker-process exit codes the coordinator distinguishes. Anything else
/// (including the chaos crash code 86 and signal deaths) counts as a
/// failure and triggers restart-with-backoff.
inline constexpr int kWorkerExitDone = 0;         ///< island result written
inline constexpr int kWorkerExitInterrupted = 75; ///< SIGTERM, checkpointed
inline constexpr int kWorkerExitWaitTimeout = 3;  ///< inbound migrants never came

/// The complete, serializable description of one distributed search: the
/// base search problem (exactly the `hadas search` flags that shape the
/// evaluation/evolution stream) plus the island topology. The coordinator
/// writes it durably into the workdir; workers reconstruct their island
/// configuration from it alone, so a respawned worker needs nothing but
/// `--spec F --island I`.
struct DistSpec {
  std::string device = "tx2-gpu";  ///< CLI device key (see devices cmd)
  std::string space = "attentive"; ///< "attentive" | "ofa"
  std::size_t outer_population = 16;
  std::size_t outer_generations = 6;
  std::size_t ioe_backbones_per_generation = 2;
  std::size_t ioe_population = 30;
  std::size_t ioe_generations = 20;
  std::uint64_t seed = 2023;
  std::size_t train_size = 1500;
  std::size_t epochs = 8;
  double max_latency_s = 0.0;
  std::string faults;  ///< hw::parse_fault_config spec, empty = none
  std::size_t checkpoint_keep = 3;
  std::size_t threads = 0;  ///< per-worker exec threads (0 = auto)
  // Island topology. Migration is a deterministic ring: after every
  // `migration_every` generations island i sends its `migrants` best
  // genomes to island (i+1) % islands.
  std::size_t islands = 2;
  std::size_t migration_every = 2;
  std::size_t migrants = 2;
  /// Fleet scoping: per-island device keys — island i searches
  /// island_devices[i] instead of the spec-wide `device`, so a coordinator
  /// can pin each island to one fleet device group (`--fleet` on the dist
  /// CLI). Empty = homogeneous. Non-empty must have exactly `islands`
  /// entries; serialized only when present, so homogeneous specs round-trip
  /// byte-identically with pre-fleet coordinators.
  std::vector<std::string> island_devices;
};

/// Throws std::invalid_argument when the topology cannot work: zero islands
/// or rounds, or islands so numerous that some island's population share
/// would drop below 2 genomes (NSGA-II needs a pair to cross over).
void validate_spec(const DistSpec& spec);

util::Json spec_to_json(const DistSpec& spec);
DistSpec spec_from_json(const util::Json& json);

/// Durable spec I/O. load_spec throws util::durable::CheckpointCorruptError
/// (stage kParse/kInvariant) on a well-enveloped but malformed payload, so
/// `hadas verify-checkpoint` can triage spec files like checkpoints.
void save_spec(const std::string& path, const DistSpec& spec);
DistSpec load_spec(const std::string& path);

/// --- Workdir layout. Every path of the distributed run lives under one
/// directory so a run is resumed (or post-mortemed) from the workdir alone.
std::string spec_path(const std::string& workdir);
std::string chain_path(const std::string& workdir, std::size_t island);
std::string final_path(const std::string& workdir, std::size_t island);
std::string migrants_path(const std::string& workdir, std::size_t island,
                          std::size_t round);
std::string heartbeat_path(const std::string& workdir, std::size_t island);
std::string log_path(const std::string& workdir, std::size_t island);

/// --- Round arithmetic. A round is `migration_every` generations (the last
/// round may be shorter); checkpoints are written exactly at round
/// boundaries, so every crash replays at most one round — deterministically,
/// because the inbound migrant files it consumes are already durable.
std::size_t round_count(const DistSpec& spec);
std::size_t round_end_generation(const DistSpec& spec, std::size_t round);
/// The island whose emigrants island `i` receives (ring predecessor).
std::size_t inbound_neighbor(const DistSpec& spec, std::size_t island);

/// Deterministic per-island seed: the base seed for a single island (so a
/// 1-island dist run is bit-identical to a plain `hadas search`), an
/// island-indexed SplitMix64 derivation otherwise.
std::uint64_t island_seed(std::uint64_t seed, std::size_t island,
                          std::size_t islands);

/// Outer-population share of one island (pop/K, the first pop%K islands get
/// one extra).
std::size_t island_population(const DistSpec& spec, std::size_t island);

/// The HadasConfig island `island` evolves: its population share and seed,
/// a fingerprint salt ("island:<i>/<K>") so islands can never resume each
/// other's chains, and checkpoint cadence locked to the migration cadence.
core::HadasConfig island_config(const DistSpec& spec,
                                const std::string& workdir,
                                std::size_t island);

/// The spec's target and search space, resolved from their CLI names.
hw::Target spec_target(const DistSpec& spec);
supernet::SearchSpace spec_space(const DistSpec& spec);

/// Target island `island` searches: its island_devices entry when the spec
/// is fleet-scoped, otherwise the spec-wide device.
hw::Target island_target(const DistSpec& spec, std::size_t island);

/// --- Migrant files. A migrant set is a pure function of the sender's
/// round-boundary checkpoint (non-dominated sort + crowding order over its
/// evaluated backbones, constrained by the latency budget), so a file lost
/// with a crashed worker is regenerated byte-identically from the chain.
struct MigrantSet {
  std::size_t island = 0;
  std::size_t round = 0;
  std::vector<supernet::Genome> genomes;
};

/// The spec.migrants best genomes of a round-boundary checkpoint, in elite
/// (front, then crowding) order.
std::vector<supernet::Genome> select_migrants(
    const supernet::SearchSpace& space, const DistSpec& spec,
    const core::SearchCheckpoint& checkpoint);

/// `failpoints_on = false` (coordinator salvage) suppresses the
/// dist.migrate.write failpoint, so a chaos schedule that kills workers
/// cannot also kill the supervisor performing last-resort recovery.
void write_migrants_file(const std::string& path, const MigrantSet& migrants,
                         bool failpoints_on = true);
/// Throws CheckpointCorruptError on a corrupt envelope or payload.
MigrantSet load_migrants_file(const std::string& path);

/// True when the migrant file exists and passes envelope validation.
bool migrants_file_valid(const std::string& path);

/// Regenerate (or verify) the migrant file island `island` emits after
/// `round`: a no-op when a valid file already exists, otherwise the island's
/// chain is searched for the round-boundary checkpoint and the file
/// rewritten from it. Returns false when no slot holds that boundary (the
/// caller keeps waiting — the owner is still evolving toward it). Safe to
/// call from any process: the bytes are deterministic and the write atomic.
bool ensure_migrants_file(const supernet::SearchSpace& space,
                          const DistSpec& spec, const std::string& workdir,
                          std::size_t island, std::size_t round,
                          bool failpoints_on = true);

/// --- Island results. The final file is always derived from the island's
/// newest checkpoint (never from in-memory engine state), so a worker that
/// crashes after its last round and a worker that finishes undisturbed
/// write byte-identical results.
void write_island_final(const DistSpec& spec, const std::string& workdir,
                        std::size_t island, bool failpoints_on = true);
/// Parsed + validated island result payload. Throws CheckpointCorruptError.
util::Json load_island_result(const std::string& path);
/// True when the final file exists and passes envelope validation.
bool island_final_valid(const std::string& path);

/// --- Merge. Union of the island fronts, re-filtered through a Pareto
/// archive in island order; evaluation counters are summed. The result JSON
/// has the `hadas search` result shape plus the topology fields, so
/// `hadas show` renders it unchanged.
util::Json merge_islands(const DistSpec& spec, const std::string& workdir);

}  // namespace hadas::dist
