#include "dist/net_transport.hpp"

#include <cstdio>
#include <filesystem>

#include "dist/metrics.hpp"
#include "dist/worker.hpp"
#include "obs/metrics.hpp"
#include "util/durable/durable_file.hpp"
#include "util/failpoint.hpp"
#include "util/strutil.hpp"

namespace hadas::dist {

namespace {

net::Frame ack_frame(std::uint64_t read_seq) {
  net::Frame frame;
  frame.type = net::FrameType::kAck;
  net::put_u64(frame.payload, read_seq);
  return frame;
}

const net::BackedWriter& empty_writer() {
  static const net::BackedWriter writer;
  return writer;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

util::Json rounds_to_json(const std::set<std::size_t>& rounds) {
  util::Json::Array array;
  for (std::size_t round : rounds)
    array.emplace_back(std::to_string(round));
  return util::Json(std::move(array));
}

std::set<std::size_t> rounds_from_json(const util::Json& json) {
  std::set<std::size_t> rounds;
  for (const util::Json& entry : json.as_array())
    rounds.insert(util::parse_size("session round", entry.as_string()));
  return rounds;
}

}  // namespace

std::string dist_session_id(std::size_t island) {
  return "island-" + std::to_string(island);
}

std::optional<std::size_t> parse_dist_session_id(const std::string& id) {
  const std::string prefix = "island-";
  if (!util::starts_with(id, prefix)) return std::nullopt;
  try {
    return util::parse_size("dist session island", id.substr(prefix.size()));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::string dist_session_path(const std::string& workdir, std::size_t island) {
  return workdir + "/session-" + dist_session_id(island) + ".json";
}

std::string spec_fingerprint(const DistSpec& spec) {
  return "spec-" + hex16(util::durable::crc64(spec_to_json(spec).dump(0)));
}

void append_blob(net::BackedWriter& writer, net::FrameType type,
                 std::size_t island, std::size_t round,
                 const std::string& text) {
  for (std::size_t at = 0;; at += kDistChunkBytes) {
    const bool last = at + kDistChunkBytes >= text.size();
    std::string payload;
    net::put_u64(payload, island);
    net::put_u64(payload, round);
    net::put_u32(payload, last ? 1 : 0);
    payload += text.substr(at, kDistChunkBytes);
    writer.append(net::encode_frame(type, payload));
    if (last) break;
  }
}

DistChunk parse_dist_chunk(const net::Frame& frame) {
  if (frame.payload.size() < 8 + 8 + 4)
    throw net::ProtocolError(std::string("dist-net: malformed ") +
                             net::frame_type_name(frame.type) + " frame");
  DistChunk chunk;
  chunk.type = frame.type;
  chunk.island = net::get_u64(frame.payload, 0);
  chunk.round = net::get_u64(frame.payload, 8);
  chunk.last = (net::get_u32(frame.payload, 16) & 1) != 0;
  chunk.bytes = frame.payload.substr(20);
  return chunk;
}

std::string dist_chunk_key(const DistChunk& chunk) {
  if (chunk.type == net::FrameType::kDistFinal)
    return "f:" + std::to_string(chunk.island);
  return "m:" + std::to_string(chunk.island) + ":" +
         std::to_string(chunk.round);
}

DistNetMetrics& dist_net_metrics() {
  static DistNetMetrics metrics;
  return metrics;
}

NetTransport::NetTransport(DistSpec spec, std::string workdir,
                           const DistOptions& options,
                           std::function<void(const std::string&)> say)
    : spec_(std::move(spec)),
      workdir_(std::move(workdir)),
      options_(options),
      say_(std::move(say)),
      fingerprint_(spec_fingerprint(spec_)),
      space_(spec_space(spec_)) {
  if (!options_.listen.has_value())
    throw std::invalid_argument("NetTransport: options.listen is required");
  if (options_.socket_handler == nullptr)
    owned_handler_ = std::make_unique<net::TcpSocketHandler>();
  // Materialize the dist.net.* family up front so a --metrics-out snapshot
  // lists it (at zero) even for a run with no network traffic at all.
  dist_net_metrics();
}

NetTransport::~NetTransport() {
  for (const std::unique_ptr<Conn>& conn : connections_)
    if (conn != nullptr) conn->transport.drop();
  if (started_) handler().close_listener(listener_);
}

net::SocketHandler& NetTransport::handler() {
  return options_.socket_handler != nullptr ? *options_.socket_handler
                                            : *owned_handler_;
}

bool NetTransport::cancelled() const {
  return options_.cancel != nullptr &&
         options_.cancel->load(std::memory_order_relaxed);
}

void NetTransport::start() {
  if (started_) return;
  std::filesystem::create_directories(workdir_);
  sessions_.resize(spec_.islands);
  done_.assign(spec_.islands, false);
  const auto now = Clock::now();
  for (std::size_t i = 0; i < spec_.islands; ++i) {
    done_[i] = island_final_valid(final_path(workdir_, i));
    sessions_[i].last_activity = now;
  }
  listener_ = handler().listen(*options_.listen);
  started_ = true;
}

bool NetTransport::finished() const {
  for (std::size_t i = 0; i < done_.size(); ++i)
    if (!done_[i]) return false;
  return !done_.empty();
}

std::size_t NetTransport::quarantined_count() const {
  std::size_t count = 0;
  for (const IslandSession& session : sessions_)
    if (session.quarantined) ++count;
  return count;
}

void NetTransport::touch_activity(std::size_t island) {
  IslandSession& session = sessions_[island];
  session.last_activity = Clock::now();
  session.misses = 0;
}

void NetTransport::observe_acked(IslandSession& session,
                                 std::uint64_t acked) {
  if (session.inflight.empty()) return;
  const auto now = Clock::now();
  auto& inflight = session.inflight;
  std::size_t kept = 0;
  for (auto& entry : inflight) {
    if (entry.first <= acked) {
      dist_net_metrics().migration_latency.observe(
          std::chrono::duration<double>(now - entry.second).count());
    } else {
      inflight[kept++] = entry;
    }
  }
  inflight.resize(kept);
}

NetTransport::IslandSession* NetTransport::find_session(std::size_t island) {
  IslandSession& session = sessions_[island];
  if (session.live) return &session;
  std::optional<net::SessionState> state = net::load_session_state(
      dist_session_path(workdir_, island), kDistSessionFormatTag);
  if (!state) return nullptr;
  if (state->fingerprint != fingerprint_)
    throw net::ProtocolError(
        "dist-net: session journal of island " + std::to_string(island) +
        " was written under a different spec (journaled '" +
        state->fingerprint + "', running '" + fingerprint_ + "')");
  session.writer.restore(state->write_acked, state->write_unacked);
  session.reader.restore(state->read_seq);
  session.pushed = rounds_from_json(state->app.at("pushed"));
  session.partial = state->app.at("partial").as_string();
  session.partial_key = state->app.at("partial_key").as_string();
  session.live = true;
  dist_net_metrics().sessions_resumed.inc();
  return &session;
}

void NetTransport::save_session(std::size_t island) {
  const IslandSession& session = sessions_[island];
  net::SessionState state;
  state.session_id = dist_session_id(island);
  state.fingerprint = fingerprint_;
  state.write_acked = session.writer.acked();
  state.write_unacked = session.writer.unacked();
  state.read_seq = session.reader.read_seq();
  util::Json::Object app;
  app["pushed"] = rounds_to_json(session.pushed);
  app["partial"] = util::Json(session.partial);
  app["partial_key"] = util::Json(session.partial_key);
  state.app = util::Json(std::move(app));
  net::save_session_state(dist_session_path(workdir_, island), state,
                          kDistSessionFormatTag);
}

bool NetTransport::refuse(Conn& conn, const std::string& reason) {
  net::Frame frame;
  frame.type = net::FrameType::kRefuse;
  frame.payload = reason;
  conn.transport.send_frame(frame);
  conn.closing = true;  // drain the refusal, then drop
  dist_net_metrics().refusals.inc();
  return true;
}

bool NetTransport::handle_hello(Conn& conn, const net::Frame& frame) {
  if (frame.payload.size() < 4 + 8)
    return refuse(conn, "malformed hello frame");
  const std::uint32_t version = net::get_u32(frame.payload, 0);
  if (version != net::kProtocolVersion)
    return refuse(conn, "protocol version " + std::to_string(version) +
                            " not supported (coordinator speaks " +
                            std::to_string(net::kProtocolVersion) + ")");
  const std::uint64_t worker_read_seq = net::get_u64(frame.payload, 4);
  const std::string id = frame.payload.substr(12);
  const std::optional<std::size_t> island = parse_dist_session_id(id);
  if (!island.has_value())
    return refuse(conn, "invalid dist session id '" + id +
                            "' (expected island-<index>)");
  if (*island >= spec_.islands)
    return refuse(conn, "island " + std::to_string(*island) +
                            " out of range (spec has " +
                            std::to_string(spec_.islands) + " islands)");
  if (sessions_[*island].quarantined)
    return refuse(conn, "island " + std::to_string(*island) +
                            " was quarantined after repeated partitions and "
                            "is being finished inline by the coordinator");

  // A newer connection for an island steals the session from a stale one (a
  // worker that rebooted while its old socket is still half-open).
  for (const std::unique_ptr<Conn>& other : connections_) {
    if (other != nullptr && other.get() != &conn && other->island == *island)
      other->transport.drop();
  }

  IslandSession* session = nullptr;
  try {
    session = find_session(*island);
  } catch (const net::ProtocolError& error) {
    return refuse(conn, error.what());
  } catch (const util::durable::CheckpointCorruptError& error) {
    // An unreadable coordinator journal cannot serve this session; the
    // refusal loop ends in quarantine + inline salvage, which converges.
    return refuse(conn, std::string("dist-net: session journal corrupt: ") +
                            error.what());
  }
  const auto welcome_tail = [&](net::Frame& welcome) {
    const std::string spec_json = spec_to_json(spec_).dump(0);
    net::put_u32(welcome.payload,
                 static_cast<std::uint32_t>(fingerprint_.size()));
    welcome.payload += fingerprint_;
    welcome.payload += spec_json;
  };
  if (session == nullptr && done_[*island]) {
    // The island's result is durable and its session was garbage-collected:
    // the worker only needs to learn that it is done.
    net::Frame welcome;
    welcome.type = net::FrameType::kWelcome;
    net::put_u64(welcome.payload, net::kSessionCompleted);
    welcome_tail(welcome);
    conn.transport.send_frame(welcome);
    conn.island = *island;
    conn.handshaken = true;
    conn.closing = true;
    return true;
  }
  if (session == nullptr && worker_read_seq > 0)
    // The worker durably consumed stream bytes this coordinator has no
    // journal for, and the island is not finished — unservable.
    return refuse(conn, "durable read_seq " + std::to_string(worker_read_seq) +
                            " for island " + std::to_string(*island) +
                            " but the coordinator holds no session journal — "
                            "worker journal and coordinator workdir disagree");
  if (session == nullptr) {
    session = &sessions_[*island];
    session->live = true;
  }
  if (worker_read_seq < session->writer.acked() ||
      worker_read_seq > session->writer.write_seq())
    return refuse(conn, "durable read_seq " + std::to_string(worker_read_seq) +
                            " is outside island " + std::to_string(*island) +
                            " replay window [" +
                            std::to_string(session->writer.acked()) + ", " +
                            std::to_string(session->writer.write_seq()) +
                            "] — worker journal lost or regressed");

  session->writer.ack(worker_read_seq);
  session->reader.clear_inbox();  // un-consumed bytes come back via replay
  conn.transport.set_flush_cursor(worker_read_seq);

  net::Frame welcome;
  welcome.type = net::FrameType::kWelcome;
  net::put_u64(welcome.payload, session->reader.read_seq());
  welcome_tail(welcome);
  conn.transport.send_frame(welcome);
  conn.island = *island;
  conn.handshaken = true;
  touch_activity(*island);
  return true;
}

void NetTransport::apply_app_frame(std::size_t island, IslandSession& session,
                                   const net::Frame& frame, bool& completed,
                                   DistReport& report) {
  if (frame.type != net::FrameType::kDistMigrants &&
      frame.type != net::FrameType::kDistFinal)
    throw net::ProtocolError(
        std::string("dist-net: unexpected app frame '") +
        net::frame_type_name(frame.type) + "' from island " +
        std::to_string(island));
  const DistChunk chunk = parse_dist_chunk(frame);
  if (chunk.island != island)
    throw net::ProtocolError(
        "dist-net: island " + std::to_string(island) +
        " sent an artifact labelled island " + std::to_string(chunk.island));
  const std::string key = dist_chunk_key(chunk);
  if (!session.partial_key.empty() && session.partial_key != key)
    throw net::ProtocolError("dist-net: interleaved chunk runs ('" +
                             session.partial_key + "' interrupted by '" + key +
                             "') from island " + std::to_string(island));
  if (!chunk.last) {
    session.partial_key = key;
    session.partial += chunk.bytes;
    return;
  }
  const std::string text = session.partial + chunk.bytes;
  session.partial.clear();
  session.partial_key.clear();

  if (chunk.type == net::FrameType::kDistMigrants) {
    if (chunk.round + 1 >= round_count(spec_))
      throw net::ProtocolError("dist-net: migrant round " +
                               std::to_string(chunk.round) + " out of range");
    const std::string path = migrants_path(workdir_, island, chunk.round);
    const bool wrote = util::durable::DurableFile::write_idempotent(
        path, kMigrantsFormatTag, text);
    try {
      const MigrantSet set = load_migrants_file(path);
      if (set.island != island || set.round != chunk.round)
        throw net::ProtocolError(
            "dist-net: migrant payload of island " + std::to_string(island) +
            " round " + std::to_string(chunk.round) +
            " carries island " + std::to_string(set.island) + " round " +
            std::to_string(set.round));
    } catch (const util::durable::CheckpointCorruptError& error) {
      std::error_code ec;
      std::filesystem::remove(path, ec);
      throw net::ProtocolError(
          std::string("dist-net: malformed migrant payload: ") + error.what());
    }
    dist_net_metrics().migrant_sets_received.inc();
    if (!wrote) dist_net_metrics().migrant_sets_replayed.inc();
    return;
  }

  // kDistFinal: the island result. Written verbatim, validated, then the
  // session completes (journal GC'd after the ack below).
  const std::string path = final_path(workdir_, island);
  util::durable::DurableFile::write_idempotent(path, kIslandResultFormatTag,
                                               text);
  try {
    (void)load_island_result(path);
  } catch (const util::durable::CheckpointCorruptError& error) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    throw net::ProtocolError(
        std::string("dist-net: malformed island result payload: ") +
        error.what());
  }
  dist_net_metrics().finals_received.inc();
  done_[island] = true;
  (void)report;
  completed = true;
}

bool NetTransport::advance_session(Conn& conn, DistReport& report) {
  IslandSession& session = sessions_[conn.island];
  bool mutated = false;
  bool completed = false;
  while (std::optional<net::PeekedFrame> peeked =
             net::peek_frame(session.reader.inbox())) {
    apply_app_frame(conn.island, session, peeked->frame, completed, report);
    session.reader.consume(peeked->encoded_size);
    mutated = true;
  }
  if (!mutated) return false;
  touch_activity(conn.island);
  if (completed) {
    // Ack the final so the worker can exit, then garbage-collect. A lost
    // ack is covered by the kSessionCompleted handshake answer.
    conn.transport.send_frame(ack_frame(session.reader.read_seq()));
    std::error_code ec;
    std::filesystem::remove(dist_session_path(workdir_, conn.island), ec);
    const bool quarantined = session.quarantined;
    session = IslandSession{};
    session.quarantined = quarantined;
    session.last_activity = Clock::now();
    conn.closing = true;
    say_("dist-net: island " + std::to_string(conn.island) +
         " result received; session complete");
  } else {
    // save-before-ack: the ack must never outrun the journal.
    save_session(conn.island);
    conn.transport.send_frame(ack_frame(session.reader.read_seq()));
  }
  return true;
}

bool NetTransport::push_migrants(Conn& conn) {
  if (spec_.islands <= 1) return false;
  IslandSession& session = sessions_[conn.island];
  if (!session.live) return false;
  const std::size_t sender = inbound_neighbor(spec_, conn.island);
  const bool timed = obs::enabled();
  bool appended = false;
  for (std::size_t round = 0; round + 1 < round_count(spec_); ++round) {
    if (session.pushed.count(round) != 0) continue;
    const std::string path = migrants_path(workdir_, sender, round);
    if (!migrants_file_valid(path)) continue;
    const std::string text =
        util::durable::DurableFile::read(path, kMigrantsFormatTag);
    append_blob(session.writer, net::FrameType::kDistMigrants, sender, round,
                text);
    session.pushed.insert(round);
    dist_net_metrics().migrant_sets_sent.inc();
    if (timed)
      session.inflight.emplace_back(session.writer.write_seq(), Clock::now());
    appended = true;
  }
  // Journal the appended bytes before any pump can flush them: a crash
  // after sending un-journaled bytes would leave the worker's durable
  // read_seq ahead of the restored writer — an unservable session.
  if (appended) save_session(conn.island);
  return appended;
}

void NetTransport::quarantine(std::size_t island, DistReport& report) {
  IslandSession& session = sessions_[island];
  session.quarantined = true;
  ++report.workers_quarantined;
  dist_metrics().quarantined.inc();
  dist_net_metrics().quarantines.inc();
  hadas::util::failpoint("dist.salvage");
  for (const std::unique_ptr<Conn>& conn : connections_)
    if (conn != nullptr && conn->island == island) conn->transport.drop();
  say_("dist-net: WARNING island " + std::to_string(island) +
       " quarantined after " +
       std::to_string(std::max<std::size_t>(
           1, options_.island_failure_threshold)) +
       " missed heartbeat windows (partitioned?); finishing it inline");
}

bool NetTransport::watchdog(DistReport& report) {
  const auto now = Clock::now();
  const auto window = std::chrono::milliseconds(
      std::max<std::size_t>(1, options_.heartbeat_ms));
  const std::size_t threshold =
      std::max<std::size_t>(1, options_.island_failure_threshold);
  bool progress = false;
  for (std::size_t island = 0; island < sessions_.size(); ++island) {
    IslandSession& session = sessions_[island];
    if (done_[island] || session.quarantined) continue;
    if (now - session.last_activity <= window) continue;
    session.last_activity = now;
    ++session.misses;
    ++report.heartbeat_misses;
    dist_metrics().heartbeat_misses.inc();
    say_("dist-net: island " + std::to_string(island) +
         " heartbeat window missed (" + std::to_string(session.misses) + "/" +
         std::to_string(threshold) + ")");
    progress = true;
    if (session.misses >= threshold) quarantine(island, report);
  }
  return progress;
}

bool NetTransport::salvage_step() {
  bool progress = false;
  bool ran_round = false;
  for (std::size_t island = 0; island < sessions_.size(); ++island) {
    if (!sessions_[island].quarantined || done_[island]) continue;
    if (cancelled()) return progress;
    const IslandProgress state = inspect_island(spec_, workdir_, island);
    if (state.final_written) {
      done_[island] = true;
      progress = true;
      continue;
    }
    if (state.next_round >= round_count(spec_)) {
      write_island_final(spec_, workdir_, island, /*failpoints_on=*/false);
      done_[island] = true;
      progress = true;
      continue;
    }
    // A remote sender's migrants arrive through its session as durable
    // files; a local (also-quarantined) sender's are regenerable from its
    // chain. Neither ready: keep the event loop moving and retry next step.
    if (!inbound_ready(space_, spec_, workdir_, island, state.next_round,
                       /*failpoints_on=*/false))
      continue;
    if (!run_island_round(spec_, workdir_, island, state.next_round,
                          /*failpoints_on=*/false, options_.cancel))
      return progress;  // cancelled mid-round (state checkpointed)
    if (state.next_round + 1 == round_count(spec_))
      done_[island] = island_final_valid(final_path(workdir_, island));
    ran_round = true;
    progress = true;
  }
  if (ran_round) {
    // An inline round blocked this loop for seconds; the silence was ours,
    // not the workers' — restart every live island's activity window.
    const auto now = Clock::now();
    for (IslandSession& session : sessions_) session.last_activity = now;
  }
  return progress;
}

bool NetTransport::step(DistReport& report) {
  if (!started_) start();
  bool progress = false;
  while (std::unique_ptr<net::Socket> socket = handler().accept(listener_)) {
    auto conn = std::make_unique<Conn>();
    conn->transport.attach(std::move(socket));
    connections_.push_back(std::move(conn));
    progress = true;
  }
  // Dead slots are nulled in place (never reordered) so handle_hello's
  // session-steal scan sees every still-live connection during the pass;
  // the vector is compacted once at the end.
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    Conn& conn = *connections_[i];
    bool alive = true;
    try {
      const auto writer_of = [&]() -> const net::BackedWriter& {
        return conn.handshaken && sessions_[conn.island].live
                   ? sessions_[conn.island].writer
                   : empty_writer();
      };
      alive = conn.transport.pump(writer_of());
      bool ok = true;
      std::optional<net::Frame> frame;
      while (ok && !conn.closing && (frame = conn.transport.next())) {
        progress = true;
        if (!conn.handshaken) {
          ok = frame->type == net::FrameType::kHello &&
               handle_hello(conn, *frame);
        } else if (frame->type == net::FrameType::kData) {
          if (frame->payload.size() < 8)
            throw net::ProtocolError("dist-net: malformed data frame");
          sessions_[conn.island].reader.offer(
              net::get_u64(frame->payload, 0),
              std::string_view(frame->payload).substr(8));
          touch_activity(conn.island);
        } else if (frame->type == net::FrameType::kAck) {
          IslandSession& session = sessions_[conn.island];
          session.writer.ack(net::get_u64(frame->payload, 0));
          observe_acked(session, session.writer.acked());
          // Heartbeats piggyback on acks: a worker deep inside a round
          // keeps re-sending its current read_seq, and any ack — novel or
          // duplicate — proves the island alive.
          touch_activity(conn.island);
        } else {
          throw net::ProtocolError(
              std::string("dist-net: unexpected transport frame '") +
              net::frame_type_name(frame->type) + "'");
        }
      }
      if (ok && conn.handshaken && !conn.closing &&
          sessions_[conn.island].live)
        progress |= advance_session(conn, report);
      if (ok && conn.handshaken && !conn.closing &&
          !sessions_[conn.island].quarantined)
        progress |= push_migrants(conn);
      if (!ok) alive = false;
      if (alive) alive = conn.transport.pump(writer_of());
    } catch (const net::ProtocolError& error) {
      say_("dist-net: connection error: " + std::string(error.what()));
      alive = false;
    } catch (const net::FrameError&) {
      alive = false;
    }
    if (!alive) {
      conn.transport.drop();
      connections_[i] = nullptr;  // dies; session state stays for a resume
      progress = true;
    } else if (conn.closing && conn.transport.outbox_size() == 0) {
      conn.transport.drop();
      connections_[i] = nullptr;
      progress = true;
    }
  }
  std::erase_if(connections_,
                [](const std::unique_ptr<Conn>& c) { return c == nullptr; });
  progress |= watchdog(report);
  progress |= salvage_step();
  return progress;
}

SuperviseOutcome NetTransport::supervise(DistReport& report) {
  start();
  SuperviseOutcome outcome;
  say_("dist-net: listening on " + options_.listen->host + ":" +
       std::to_string(options_.listen->port) + " for " +
       std::to_string(spec_.islands) + " island worker(s)");
  std::optional<Clock::time_point> finished_at;
  while (true) {
    if (cancelled()) {
      outcome.interrupted = true;
      return outcome;
    }
    const bool progress = step(report);
    if (finished()) {
      // Drain: closing connections still hold final acks the workers need
      // to exit; keep pumping briefly, then stop accepting new work.
      if (connections_.empty()) break;
      if (!finished_at.has_value()) finished_at = Clock::now();
      if (Clock::now() - *finished_at > std::chrono::seconds(5)) break;
    }
    if (!progress)
      handler().wait(
          static_cast<int>(std::max<std::size_t>(1, options_.poll_ms)));
  }
  return outcome;
}

}  // namespace hadas::dist
