#pragma once

#include "obs/metrics.hpp"

namespace hadas::dist {

/// dist.* instruments, resolved once against the global MetricsRegistry and
/// shared by the coordinator and its transports. Strictly observe-only.
struct DistMetrics {
  obs::Counter& spawned;
  obs::Counter& restarted;
  obs::Counter& quarantined;
  obs::Counter& heartbeat_misses;
  obs::Counter& migrants;
  obs::Gauge& islands;
  obs::Histogram& merge_seconds;
};

DistMetrics& dist_metrics();

}  // namespace hadas::dist
