#pragma once

#include <functional>
#include <string>

#include "dist/coordinator.hpp"
#include "dist/transport.hpp"

namespace hadas::dist {

/// The single-host transport: one supervised `hadas worker` subprocess per
/// island, all sharing the coordinator's workdir. Migrants travel as the
/// durable files the workers write directly into that directory; the
/// heartbeat watchdog reads the per-island heartbeat files; a crashed
/// worker is respawned with exponential backoff until its circuit breaker
/// trips, which quarantines the island for the coordinator's inline
/// salvage. This is PR 7's spawn loop, unchanged in behavior, behind the
/// DistTransport seam.
class ForkTransport : public DistTransport {
 public:
  ForkTransport(DistSpec spec, std::string workdir, const DistOptions& options,
                std::function<void(const std::string&)> say);

  const char* name() const override { return "fork"; }

  SuperviseOutcome supervise(DistReport& report) override;

 private:
  DistSpec spec_;
  std::string workdir_;
  const DistOptions& options_;
  std::function<void(const std::string&)> say_;
};

}  // namespace hadas::dist
