#include "dist/fork_transport.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dist/metrics.hpp"
#include "dist/worker.hpp"
#include "hw/robust_eval.hpp"
#include "util/failpoint.hpp"
#include "util/strutil.hpp"

extern char** environ;

namespace hadas::dist {

namespace {

using Clock = std::chrono::steady_clock;

/// One supervised worker slot.
struct IslandState {
  pid_t pid = -1;  ///< -1 when not running
  bool done = false;
  bool quarantined = false;
  std::size_t restarts = 0;
  Clock::time_point next_start = Clock::time_point::min();
  std::uint64_t last_beat = 0;
  Clock::time_point last_beat_change = Clock::time_point::min();
  hw::DeviceHealth breaker;

  explicit IslandState(const hw::BreakerConfig& config) : breaker(config) {}
};

std::string describe_exit(int status) {
  if (WIFEXITED(status))
    return "exit code " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "signal " + std::to_string(WTERMSIG(status));
  return "status " + std::to_string(status);
}

/// The child environment: HADAS_DIST_HANG never survives a respawn (it is a
/// one-shot hang injection), and HADAS_CHAOS only does in keep mode — a
/// plain crash schedule gets exactly one incarnation to fire, so recovery
/// runs clean, while keep mode deliberately produces a crash loop for the
/// circuit-breaker path.
std::vector<std::string> child_environment(bool respawn, bool chaos_keep) {
  std::vector<std::string> env;
  for (char** e = environ; *e != nullptr; ++e) {
    const std::string entry(*e);
    if (respawn && util::starts_with(entry, "HADAS_DIST_HANG=")) continue;
    if (respawn && !chaos_keep && util::starts_with(entry, "HADAS_CHAOS="))
      continue;
    env.push_back(entry);
  }
  return env;
}

}  // namespace

ForkTransport::ForkTransport(DistSpec spec, std::string workdir,
                             const DistOptions& options,
                             std::function<void(const std::string&)> say)
    : spec_(std::move(spec)),
      workdir_(std::move(workdir)),
      options_(options),
      say_(std::move(say)) {}

SuperviseOutcome ForkTransport::supervise(DistReport& report) {
  SuperviseOutcome outcome;
  DistMetrics& metrics = dist_metrics();
  const auto cancelled = [&] {
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed);
  };

  hw::BreakerConfig breaker_config;
  breaker_config.failure_threshold =
      std::max<std::size_t>(1, options_.island_failure_threshold);
  // deque: IslandState holds a DeviceHealth (mutex, non-movable), so the
  // container must construct elements in place and never relocate them.
  std::deque<IslandState> states;
  for (std::size_t i = 0; i < spec_.islands; ++i)
    states.emplace_back(breaker_config);
  const std::string spec_file = spec_path(workdir_);
  const std::string binary = options_.worker_binary.empty()
                                 ? "/proc/self/exe"
                                 : options_.worker_binary;
  const auto backoff_after = [&](std::size_t restarts) {
    std::size_t delay = std::max<std::size_t>(1, options_.backoff_ms);
    for (std::size_t i = 0;
         i + 1 < restarts && delay < options_.backoff_max_ms; ++i)
      delay *= 2;
    return std::chrono::milliseconds(
        std::min(delay, std::max<std::size_t>(1, options_.backoff_max_ms)));
  };

  const auto spawn = [&](std::size_t island) {
    IslandState& state = states[island];
    hadas::util::failpoint("dist.spawn");
    const bool respawn = state.restarts > 0;
    const std::vector<std::string> env =
        child_environment(respawn, options_.chaos_respawn_keep);
    const std::string spec_arg = spec_file;
    const std::string island_arg = std::to_string(island);
    const std::string log_file = log_path(workdir_, island);
    const pid_t pid = fork();
    if (pid < 0)
      throw std::runtime_error(std::string("dist: fork failed: ") +
                               std::strerror(errno));
    if (pid == 0) {
      // Child: worker stdout/stderr append to the island's log file.
      const int fd =
          ::open(log_file.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO) ::close(fd);
      }
      std::vector<char*> argv;
      std::vector<std::string> args = {binary,     "worker",  "--spec",
                                       spec_arg,   "--island", island_arg,
                                       "--wait-timeout-ms",
                                       std::to_string(
                                           options_.worker_wait_timeout_ms)};
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      std::vector<char*> envp;
      envp.reserve(env.size() + 1);
      for (const std::string& e : env)
        envp.push_back(const_cast<char*>(e.c_str()));
      envp.push_back(nullptr);
      ::execve(binary.c_str(), argv.data(), envp.data());
      std::fprintf(stderr, "dist: exec %s failed: %s\n", binary.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    state.pid = pid;
    state.last_beat = read_heartbeat(heartbeat_path(workdir_, island))
                          .value_or(0);
    state.last_beat_change = Clock::now();
    ++report.workers_spawned;
    metrics.spawned.inc();
    if (respawn) {
      ++report.workers_restarted;
      metrics.restarted.inc();
    }
  };

  const auto on_failure = [&](std::size_t island, const std::string& why) {
    IslandState& state = states[island];
    state.pid = -1;
    state.breaker.record_failure();
    // The breaker runs on DeviceHealth's simulated clock, which the
    // coordinator never advances — so kOpen is permanent here: a tripped
    // island stays quarantined for the rest of the run.
    if (state.breaker.state() == hw::BreakerState::kOpen) {
      state.quarantined = true;
      ++report.workers_quarantined;
      metrics.quarantined.inc();
      hadas::util::failpoint("dist.salvage");
      say_("dist: WARNING island " + std::to_string(island) +
           " quarantined after " +
           std::to_string(breaker_config.failure_threshold) +
           " consecutive worker failures (" + why +
           "); it will be finished inline by the coordinator");
      return;
    }
    ++state.restarts;
    state.next_start = Clock::now() + backoff_after(state.restarts);
    say_("dist: island " + std::to_string(island) + " worker failed (" + why +
         "), restart " + std::to_string(state.restarts) + " after backoff");
  };

  const auto kill_all = [&](int signal) {
    for (IslandState& state : states)
      if (state.pid > 0) ::kill(state.pid, signal);
  };

  try {
    while (true) {
      if (cancelled()) {
        // Graceful stop: SIGTERM lets workers checkpoint and exit 75;
        // stragglers are SIGKILLed (their round replays on resume).
        kill_all(SIGTERM);
        const auto deadline = Clock::now() + std::chrono::seconds(10);
        while (Clock::now() < deadline) {
          bool any = false;
          for (IslandState& state : states) {
            if (state.pid <= 0) continue;
            int status = 0;
            if (::waitpid(state.pid, &status, WNOHANG) == state.pid)
              state.pid = -1;
            else
              any = true;
          }
          if (!any) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        kill_all(SIGKILL);
        for (IslandState& state : states) {
          if (state.pid <= 0) continue;
          int status = 0;
          ::waitpid(state.pid, &status, 0);
          state.pid = -1;
        }
        outcome.interrupted = true;
        return outcome;
      }

      bool all_settled = true;
      const auto now = Clock::now();
      for (std::size_t island = 0; island < states.size(); ++island) {
        IslandState& state = states[island];
        if (state.done || state.quarantined) continue;
        all_settled = false;
        if (state.pid < 0) {
          if (now >= state.next_start) spawn(island);
          continue;
        }

        int status = 0;
        const pid_t reaped = ::waitpid(state.pid, &status, WNOHANG);
        if (reaped == state.pid) {
          if (WIFEXITED(status) && WEXITSTATUS(status) == kWorkerExitDone) {
            state.pid = -1;
            state.done = true;
            state.breaker.record_success();
          } else {
            on_failure(island, describe_exit(status));
          }
          continue;
        }

        // Hang watchdog: a live process whose heartbeat counter has not
        // advanced within the deadline is killed and handled as a crash.
        const auto beat =
            read_heartbeat(heartbeat_path(workdir_, island)).value_or(0);
        if (beat != state.last_beat) {
          state.last_beat = beat;
          state.last_beat_change = now;
        } else if (now - state.last_beat_change >
                   std::chrono::milliseconds(
                       std::max<std::size_t>(1, options_.heartbeat_ms))) {
          ++report.heartbeat_misses;
          metrics.heartbeat_misses.inc();
          ::kill(state.pid, SIGKILL);
          ::waitpid(state.pid, &status, 0);
          on_failure(island, "heartbeat stalled");
        }
      }
      if (all_settled) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::max<std::size_t>(1, options_.poll_ms)));
    }
  } catch (...) {
    kill_all(SIGKILL);
    for (IslandState& state : states) {
      if (state.pid <= 0) continue;
      int status = 0;
      ::waitpid(state.pid, &status, 0);
    }
    throw;
  }

  for (std::size_t island = 0; island < states.size(); ++island)
    if (states[island].quarantined) outcome.salvage.push_back(island);
  return outcome;
}

}  // namespace hadas::dist
