#include "dist/coordinator.hpp"

#include <chrono>
#include <filesystem>
#include <iostream>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "dist/fork_transport.hpp"
#include "dist/metrics.hpp"
#include "dist/net_transport.hpp"
#include "dist/transport.hpp"
#include "dist/worker.hpp"
#include "obs/metrics.hpp"
#include "util/durable/durable_file.hpp"
#include "util/failpoint.hpp"

namespace hadas::dist {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

DistMetrics& dist_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static DistMetrics metrics{
      reg.counter("dist.workers_spawned_total"),
      reg.counter("dist.workers_restarted_total"),
      reg.counter("dist.workers_quarantined_total"),
      reg.counter("dist.heartbeat_misses_total"),
      reg.counter("dist.migrants_exchanged_total"),
      reg.gauge("dist.islands"),
      reg.histogram("dist.merge_seconds", obs::default_time_bounds()),
  };
  return metrics;
}

DistCoordinator::DistCoordinator(DistSpec spec, std::string workdir,
                                 DistOptions options)
    : spec_(std::move(spec)),
      workdir_(std::move(workdir)),
      options_(std::move(options)) {}

void DistCoordinator::say(const std::string& message) const {
  if (options_.log) {
    options_.log(message);
    return;
  }
  std::cerr << message << "\n";
}

bool DistCoordinator::run_islands_inline(
    const std::vector<std::size_t>& islands, bool failpoints_on) {
  const supernet::SearchSpace space = spec_space(spec_);
  const auto cancelled = [&] {
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed);
  };
  // Round-major sweep: every pass runs each unfinished island's next round
  // when its inbound migrants are available. The least-advanced island is
  // always runnable (its ring sender has necessarily passed the boundary it
  // needs — or is in this very list, behind it, and runs first), so a pass
  // without progress can only mean corrupted state.
  while (true) {
    bool all_done = true;
    bool progressed = false;
    for (std::size_t island : islands) {
      if (cancelled()) return false;
      const IslandProgress progress = inspect_island(spec_, workdir_, island);
      if (progress.final_written) continue;
      all_done = false;
      if (progress.next_round >= round_count(spec_)) {
        write_island_final(spec_, workdir_, island, failpoints_on);
        progressed = true;
        continue;
      }
      if (!inbound_ready(space, spec_, workdir_, island, progress.next_round,
                         failpoints_on))
        continue;
      if (!run_island_round(spec_, workdir_, island, progress.next_round,
                            failpoints_on, options_.cancel))
        return false;
      progressed = true;
    }
    if (all_done) return true;
    if (!progressed)
      throw std::runtime_error(
          "dist: no island can make progress — inbound migrants unavailable "
          "and not regenerable from any checkpoint chain");
  }
}

DistReport DistCoordinator::run() {
  validate_spec(spec_);
  std::filesystem::create_directories(workdir_);

  // A workdir is one run: reject a spec that contradicts durable state left
  // by a previous invocation (an unreadable old spec is simply replaced —
  // the per-island engine fingerprints still protect the checkpoints).
  const std::string spec_file = spec_path(workdir_);
  bool spec_current = false;
  if (std::filesystem::exists(spec_file)) {
    try {
      if (spec_to_json(load_spec(spec_file)).dump(0) !=
          spec_to_json(spec_).dump(0))
        throw std::invalid_argument(
            "dist: workdir '" + workdir_ +
            "' already holds a different spec — use a fresh workdir or rerun "
            "with the original parameters");
      spec_current = true;
    } catch (const hadas::util::durable::CheckpointCorruptError&) {
    }
  }
  if (!spec_current) save_spec(spec_file, spec_);

  DistReport report;
  report.islands = spec_.islands;
  DistMetrics& metrics = dist_metrics();
  metrics.islands.set(static_cast<double>(spec_.islands));

  const auto cancelled = [&] {
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed);
  };

  if (!options_.spawn) {
    std::vector<std::size_t> all(spec_.islands);
    std::iota(all.begin(), all.end(), std::size_t{0});
    if (!run_islands_inline(all, /*failpoints_on=*/true)) {
      report.interrupted = true;
      return report;
    }
  } else {
    const auto log = [this](const std::string& message) { say(message); };
    std::unique_ptr<DistTransport> transport;
    if (options_.listen.has_value())
      transport =
          std::make_unique<NetTransport>(spec_, workdir_, options_, log);
    else
      transport =
          std::make_unique<ForkTransport>(spec_, workdir_, options_, log);
    SuperviseOutcome outcome = transport->supervise(report);
    if (outcome.interrupted) {
      report.interrupted = true;
      return report;
    }
    if (!outcome.salvage.empty()) {
      say("dist: salvaging " + std::to_string(outcome.salvage.size()) +
          " quarantined island(s) inline — the merged front is still exact, "
          "but this run had no worker-level parallelism for them");
      // Salvage runs with dist failpoints suppressed: the chaos schedule
      // that broke the workers must not also kill the last-resort recovery.
      if (!run_islands_inline(outcome.salvage, /*failpoints_on=*/false)) {
        report.interrupted = true;
        return report;
      }
    }
  }

  if (cancelled()) {
    report.interrupted = true;
    return report;
  }

  hadas::util::failpoint("dist.merge");
  const bool timed = obs::enabled();
  const auto t0 = timed ? Clock::now() : Clock::time_point();
  report.merged = merge_islands(spec_, workdir_);
  if (timed)
    metrics.merge_seconds.observe(
        std::chrono::duration<double>(Clock::now() - t0).count());

  // Count the migration traffic from the durable files themselves (the only
  // ground truth that survives worker crashes).
  for (std::size_t island = 0; island < spec_.islands; ++island) {
    for (std::size_t round = 0; round + 1 < round_count(spec_); ++round) {
      const std::string path = migrants_path(workdir_, island, round);
      if (!migrants_file_valid(path)) continue;
      report.migrants_exchanged += load_migrants_file(path).genomes.size();
    }
  }
  metrics.migrants.inc(report.migrants_exchanged);
  return report;
}

}  // namespace hadas::dist
