#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "dist/island.hpp"
#include "dist/net_transport.hpp"
#include "net/connection.hpp"
#include "net/socket.hpp"
#include "util/strutil.hpp"

namespace hadas::dist {

/// What the island's durable state says about where to continue. Derived
/// entirely from on-disk inspection, so a respawned worker (or the salvage
/// path in the coordinator) needs no memory of the crashed process.
struct IslandProgress {
  bool final_written = false;  ///< valid island result file exists
  std::size_t next_round = 0;  ///< first round not yet checkpointed past
};

IslandProgress inspect_island(const DistSpec& spec, const std::string& workdir,
                              std::size_t island);

/// True when the inbound migrant file island `island` needs before `round`
/// is readable. Attempts a cross-process repair first: a missing/corrupt
/// file is regenerated from the *sender's* checkpoint chain when it already
/// holds the boundary (migrant sets are pure functions of checkpoints).
bool inbound_ready(const supernet::SearchSpace& space, const DistSpec& spec,
                   const std::string& workdir, std::size_t island,
                   std::size_t round, bool failpoints_on = true);

/// Run one island round: regenerate the previous round's outbound migrants
/// if a crash lost them, apply the inbound migrant set (rounds > 0), extend
/// the engine to the round's end generation (resuming from the chain), then
/// emit this round's migrants — or, after the last round, the island result
/// file. `failpoints_on` gates the dist.* failpoints so the coordinator's
/// salvage path cannot be killed by a worker-targeted chaos schedule.
/// Returns false when `cancel` interrupted the round (state checkpointed).
bool run_island_round(const DistSpec& spec, const std::string& workdir,
                      std::size_t island, std::size_t round,
                      bool failpoints_on,
                      const std::atomic<bool>* cancel = nullptr,
                      const std::function<void(std::size_t)>& on_generation = {});

/// Worker main loop (the `hadas worker` subcommand): refresh the heartbeat
/// file, inspect progress, wait for inbound migrants, run rounds until the
/// island result is durably written. Returns a kWorkerExit* code.
struct WorkerOptions {
  std::size_t poll_ms = 25;             ///< inbound-migrant poll interval
  std::size_t wait_timeout_ms = 120000; ///< give up waiting (exit 3)
  const std::atomic<bool>* cancel = nullptr;  ///< SIGINT/SIGTERM flag
};

int run_worker(const DistSpec& spec, const std::string& workdir,
               std::size_t island, const WorkerOptions& options = {});

/// `hadas worker --connect host:port --island I --state-dir DIR`.
struct NetWorkerConfig {
  util::HostPort connect;
  std::size_t island = 0;
  std::string state_dir;  ///< local checkpoints, artifacts, session journal
  std::size_t wait_timeout_ms = 600000;  ///< no progress at all -> exit 3
  std::size_t max_connect_attempts = 600;
  std::size_t max_handshake_failures = 50;
  /// Duplicate-ack heartbeat interval inside a round (0 = every generation).
  std::size_t beat_every_ms = 1000;
  std::size_t reconnect_backoff_ms = 20;
  const std::atomic<bool>* cancel = nullptr;
};

/// The remote end of one island: dials the coordinator, learns the DistSpec
/// from the WELCOME, and runs its island's rounds against a *local* state
/// directory — checkpoints, outbound migrants and the island result are
/// produced exactly as a shared-workdir worker would produce them, then
/// uploaded through the resumable stream (the coordinator persists them
/// verbatim, so the merged front is byte-identical). Inbound migrants
/// arrive as pushed kDistMigrants blobs and are written into the state
/// directory, where run_island_round finds them. The session journal in the
/// state directory makes every step resumable: a killed worker reconnects
/// with its durable read_seq, the stream replays, and no artifact is lost
/// or duplicated. A worker that already holds the spec keeps computing
/// rounds while partitioned — only migrant exchange stalls.
class NetWorker {
 public:
  /// `handler` selects the socket fabric (nullptr = real TCP sockets).
  NetWorker(net::SocketHandler* handler, NetWorkerConfig config);

  /// One cooperative pass: poll the network, then advance local island
  /// work. Returns true when anything progressed. Throws
  /// net::ProtocolError when the coordinator refused the session or the
  /// durable state of the two ends disagrees.
  bool step();

  bool done() const { return done_; }
  std::size_t reconnects() const { return reconnects_; }
  bool spec_received() const { return spec_.has_value(); }

  /// Blocking loop; returns a kWorkerExit* code. Throws net::ConnectError
  /// after max_connect_attempts consecutive failed dials and
  /// net::ProtocolError on unrecoverable protocol disagreement.
  int run();

 private:
  using Clock = std::chrono::steady_clock;

  net::SocketHandler& handler();
  bool cancelled() const;
  void save();
  void restore();
  void adopt_spec(const std::string& spec_json);
  bool try_connect();
  void handle_welcome(const net::Frame& frame);
  bool advance();
  bool work_step();
  void beat();
  void complete();

  NetWorkerConfig config_;
  std::unique_ptr<net::SocketHandler> owned_handler_;
  net::SocketHandler* handler_ = nullptr;
  std::string state_path_;
  net::Transport transport_;
  net::BackedWriter writer_;
  net::BackedReader reader_;
  std::string fingerprint_;
  std::optional<DistSpec> spec_;
  std::optional<supernet::SearchSpace> space_;
  std::set<std::size_t> sent_;  ///< outbound migrant rounds already queued
  bool final_sent_ = false;
  std::string partial_;  ///< inbound chunk-run accumulator
  std::string partial_key_;
  bool handshaken_ = false;
  bool connected_once_ = false;
  bool done_ = false;
  std::size_t connect_failures_ = 0;
  std::size_t handshake_failures_ = 0;
  std::size_t reconnects_ = 0;
  Clock::time_point last_beat_{};
};

/// Convenience wrapper: construct a NetWorker over real TCP (or `handler`
/// when given) and run() it. net::ConnectError / net::ProtocolError
/// propagate to the caller (the CLI prints them and exits nonzero).
int run_net_worker(net::SocketHandler* handler, const NetWorkerConfig& config);

/// Atomically (tmp + rename) publish a monotonic heartbeat counter; the
/// coordinator declares the worker hung when the counter stops advancing.
void touch_heartbeat(const std::string& path, std::uint64_t counter);

/// The counter currently published at `path`, or nullopt when absent or
/// unreadable.
std::optional<std::uint64_t> read_heartbeat(const std::string& path);

}  // namespace hadas::dist
