#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>

#include "dist/island.hpp"

namespace hadas::dist {

/// What the island's durable state says about where to continue. Derived
/// entirely from on-disk inspection, so a respawned worker (or the salvage
/// path in the coordinator) needs no memory of the crashed process.
struct IslandProgress {
  bool final_written = false;  ///< valid island result file exists
  std::size_t next_round = 0;  ///< first round not yet checkpointed past
};

IslandProgress inspect_island(const DistSpec& spec, const std::string& workdir,
                              std::size_t island);

/// True when the inbound migrant file island `island` needs before `round`
/// is readable. Attempts a cross-process repair first: a missing/corrupt
/// file is regenerated from the *sender's* checkpoint chain when it already
/// holds the boundary (migrant sets are pure functions of checkpoints).
bool inbound_ready(const supernet::SearchSpace& space, const DistSpec& spec,
                   const std::string& workdir, std::size_t island,
                   std::size_t round, bool failpoints_on = true);

/// Run one island round: regenerate the previous round's outbound migrants
/// if a crash lost them, apply the inbound migrant set (rounds > 0), extend
/// the engine to the round's end generation (resuming from the chain), then
/// emit this round's migrants — or, after the last round, the island result
/// file. `failpoints_on` gates the dist.* failpoints so the coordinator's
/// salvage path cannot be killed by a worker-targeted chaos schedule.
/// Returns false when `cancel` interrupted the round (state checkpointed).
bool run_island_round(const DistSpec& spec, const std::string& workdir,
                      std::size_t island, std::size_t round,
                      bool failpoints_on,
                      const std::atomic<bool>* cancel = nullptr,
                      const std::function<void(std::size_t)>& on_generation = {});

/// Worker main loop (the `hadas worker` subcommand): refresh the heartbeat
/// file, inspect progress, wait for inbound migrants, run rounds until the
/// island result is durably written. Returns a kWorkerExit* code.
struct WorkerOptions {
  std::size_t poll_ms = 25;             ///< inbound-migrant poll interval
  std::size_t wait_timeout_ms = 120000; ///< give up waiting (exit 3)
  const std::atomic<bool>* cancel = nullptr;  ///< SIGINT/SIGTERM flag
};

int run_worker(const DistSpec& spec, const std::string& workdir,
               std::size_t island, const WorkerOptions& options = {});

/// Atomically (tmp + rename) publish a monotonic heartbeat counter; the
/// coordinator declares the worker hung when the counter stops advancing.
void touch_heartbeat(const std::string& path, std::uint64_t counter);

/// The counter currently published at `path`, or nullopt when absent or
/// unreadable.
std::optional<std::uint64_t> read_heartbeat(const std::string& path);

}  // namespace hadas::dist
