#pragma once

#include <cstddef>
#include <vector>

namespace hadas::dist {

struct DistReport;

/// What a transport's supervision pass left for the coordinator to do.
struct SuperviseOutcome {
  /// cancel fired mid-run; the workdir is checkpointed and resumable.
  bool interrupted = false;
  /// Quarantined islands the coordinator must finish inline before the
  /// merge. The fork transport defers all salvage here (its workers are
  /// local, so deferring cannot deadlock anyone); the net transport salvages
  /// incrementally inside its own event loop — a remote ring successor
  /// blocks on the quarantined island's migrants, so waiting until the end
  /// would wedge the healthy islands — and returns this empty.
  std::vector<std::size_t> salvage;
};

/// How the coordinator gets every island's durable artifacts (checkpoint
/// rounds, migrant files, island results) produced in its workdir. The
/// contract is purely file-level: after a successful supervise() + salvage,
/// each island's final result file in the coordinator workdir is valid and
/// byte-identical to an inline run, so merge_islands() needs no knowledge
/// of which transport ran. Implementations: ForkTransport (local `hadas
/// worker` subprocesses sharing the workdir — the default) and NetTransport
/// (remote workers dialing in over the resumable net layer).
class DistTransport {
 public:
  virtual ~DistTransport() = default;

  /// "fork" | "net" (diagnostics and the run report).
  virtual const char* name() const = 0;

  /// Drive every island to a durably-written final result (or quarantine),
  /// honoring the options' cancel flag. Restartable: a killed coordinator
  /// reruns supervise() and converges from the workdir's durable state.
  virtual SuperviseOutcome supervise(DistReport& report) = 0;
};

}  // namespace hadas::dist
