#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/transport.hpp"
#include "net/backed_stream.hpp"
#include "net/connection.hpp"
#include "net/frame.hpp"
#include "net/session.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "supernet/search_space.hpp"

namespace hadas::dist {

/// --- Dist-net wire protocol: how the island artifacts of src/dist ride
/// the resumable stream of src/net.
///
/// Each island is one session ("island-<i>") between a `hadas worker
/// --connect` process and the coordinator's NetTransport. The handshake is
/// the serve protocol's HELLO/WELCOME (same kRefuse semantics), except the
/// WELCOME also carries the DistSpec, so a net worker needs nothing but the
/// endpoint, its island index and a local state directory. Durable
/// artifacts flow as app-layer frames *inside* the BackedReader/BackedWriter
/// logical stream — migrant files upstream and downstream, the island
/// result upstream — chunked under the frame payload cap and carrying the
/// exact durable-file payload text, which the receiver writes verbatim
/// (same format tag), so every file is byte-identical to what a shared-
/// workdir run would hold. Both ends obey the save-before-ack invariant: a
/// chunk is acked only after the receiving side journaled its consumption
/// (and, for a completed blob, durably wrote the artifact), so a killed
/// worker, a severed link or a restarted coordinator never loses or
/// duplicates a migrant.

/// Durable-envelope format tag of dist-net session journals (worker and
/// coordinator side share the layout; `hadas verify-checkpoint` triages it).
inline constexpr const char* kDistSessionFormatTag = "hadas-dist-session-v1";

/// Logical-stream bytes per kDistMigrants/kDistFinal chunk frame: artifacts
/// larger than one frame payload are cut into a contiguous chunk run.
inline constexpr std::size_t kDistChunkBytes = 64 * 1024;

/// "island-<i>" — the session id island `i` dials in with.
std::string dist_session_id(std::size_t island);
/// Parse a dist session id; nullopt when it is not "island-<digits>".
std::optional<std::size_t> parse_dist_session_id(const std::string& id);
/// The coordinator-side session journal of island `island`.
std::string dist_session_path(const std::string& workdir, std::size_t island);

/// Fingerprint of the spec both ends must agree on ("spec-" + CRC-64 of the
/// canonical spec JSON). Carried in every WELCOME and every session
/// journal; a mismatch is refused — resuming half a search under a
/// different topology would silently corrupt the merged front.
std::string spec_fingerprint(const DistSpec& spec);

/// One chunk of an artifact blob on the wire:
///   u64 island | u64 round | u32 flags (bit0 = last chunk) | bytes.
/// kDistMigrants blobs are migrant-file payloads (round = migration round);
/// kDistFinal blobs are island-result payloads (round = 0).
struct DistChunk {
  net::FrameType type = net::FrameType::kDistMigrants;
  std::size_t island = 0;
  std::size_t round = 0;
  bool last = false;
  std::string bytes;
};

/// Cut `text` into chunk frames and append them to the logical stream.
void append_blob(net::BackedWriter& writer, net::FrameType type,
                 std::size_t island, std::size_t round,
                 const std::string& text);

/// Decode a kDistMigrants/kDistFinal frame. Throws net::ProtocolError on a
/// malformed payload.
DistChunk parse_dist_chunk(const net::Frame& frame);

/// "m:<island>:<round>" / "f:<island>" — the identity a partially received
/// blob is journaled under, so an interleaved or repeated chunk run is
/// detected as a protocol violation instead of corrupting an artifact.
std::string dist_chunk_key(const DistChunk& chunk);

/// dist.net.* instruments (global registry; exported via --metrics-out /
/// metrics-dump like the dist.* and net.* families). Strictly observe-only.
struct DistNetMetrics {
  obs::MetricsRegistry& r = obs::MetricsRegistry::global();
  obs::Counter& migrant_sets_sent =
      r.counter("dist.net.migrant_sets_sent_total");
  obs::Counter& migrant_sets_received =
      r.counter("dist.net.migrant_sets_received_total");
  obs::Counter& migrant_sets_replayed =
      r.counter("dist.net.migrant_sets_replayed_total");
  obs::Counter& finals_received =
      r.counter("dist.net.island_finals_received_total");
  obs::Counter& reconnects = r.counter("dist.net.reconnects_total");
  obs::Counter& refusals = r.counter("dist.net.refusals_total");
  obs::Counter& quarantines =
      r.counter("dist.net.partition_quarantines_total");
  obs::Counter& sessions_resumed =
      r.counter("dist.net.sessions_resumed_total");
  /// Seconds from queueing a migrant set toward a worker to its durable ack.
  obs::Histogram& migration_latency =
      r.histogram("dist.net.migration_latency_seconds",
                  obs::default_time_bounds());
};

DistNetMetrics& dist_net_metrics();

/// The multi-host transport: the coordinator listens on options.listen and
/// supervises one resumable session per island. Workers upload their
/// migrant files and island result; the coordinator persists every artifact
/// verbatim into its workdir (the single ground truth the merge reads) and
/// pushes each island's inbound migrants — whoever produced them — down its
/// session. Heartbeats piggyback on transport acks: any frame from an
/// island resets its activity clock, and a worker in a long round keeps
/// sending duplicate acks from its generation callback. An island silent
/// for more than heartbeat_ms accumulates misses; at island_failure_
/// threshold misses it is quarantined (further handshakes refused) and
/// salvaged *incrementally inside this event loop* — one inline round per
/// step — because its ring successor may be a healthy remote worker blocked
/// on exactly those migrants. A killed coordinator restarts, reloads every
/// session journal on the next HELLO and converges byte-identically.
class NetTransport : public DistTransport {
 public:
  NetTransport(DistSpec spec, std::string workdir, const DistOptions& options,
               std::function<void(const std::string&)> say);
  ~NetTransport() override;

  const char* name() const override { return "net"; }

  SuperviseOutcome supervise(DistReport& report) override;

  /// --- Cooperative surface (supervise() is a loop over step(); tests
  /// drive it directly against steppable NetWorker endpoints).
  void start();
  bool step(DistReport& report);
  /// Every island's final result file in the workdir is valid.
  bool finished() const;
  std::size_t quarantined_count() const;
  std::size_t connection_count() const { return connections_.size(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct IslandSession {
    net::BackedWriter writer;
    net::BackedReader reader;
    std::set<std::size_t> pushed;  ///< inbound rounds queued down the stream
    std::string partial;           ///< chunk-run accumulator
    std::string partial_key;
    bool live = false;  ///< in-memory state materialized (fresh or restored)
    bool quarantined = false;
    std::size_t misses = 0;
    Clock::time_point last_activity{};
    /// (stream offset after a queued migrant set, queue time) — matched
    /// against worker acks for the migration-latency histogram.
    std::vector<std::pair<std::uint64_t, Clock::time_point>> inflight;
  };

  struct Conn {
    net::Transport transport;
    std::size_t island = static_cast<std::size_t>(-1);
    bool handshaken = false;
    bool closing = false;
  };

  net::SocketHandler& handler();
  bool cancelled() const;
  IslandSession* find_session(std::size_t island);
  void save_session(std::size_t island);
  bool refuse(Conn& conn, const std::string& reason);
  bool handle_hello(Conn& conn, const net::Frame& frame);
  void apply_app_frame(std::size_t island, IslandSession& session,
                       const net::Frame& frame, bool& completed,
                       DistReport& report);
  bool advance_session(Conn& conn, DistReport& report);
  bool push_migrants(Conn& conn);
  void quarantine(std::size_t island, DistReport& report);
  bool watchdog(DistReport& report);
  bool salvage_step();
  void touch_activity(std::size_t island);
  void observe_acked(IslandSession& session, std::uint64_t acked);

  DistSpec spec_;
  std::string workdir_;
  const DistOptions& options_;
  std::function<void(const std::string&)> say_;
  std::string fingerprint_;
  supernet::SearchSpace space_;
  std::unique_ptr<net::SocketHandler> owned_handler_;
  std::vector<IslandSession> sessions_;
  std::vector<bool> done_;
  std::vector<std::unique_ptr<Conn>> connections_;
  int listener_ = -1;
  bool started_ = false;
};

}  // namespace hadas::dist
