#include "dist/worker.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/serialize.hpp"
#include "net/session.hpp"
#include "util/durable/checkpoint_chain.hpp"
#include "util/durable/durable_file.hpp"
#include "util/failpoint.hpp"
#include "util/strutil.hpp"

namespace hadas::dist {

namespace {

bool cancelled(const std::atomic<bool>* cancel) {
  return cancel != nullptr && cancel->load(std::memory_order_relaxed);
}

/// Test hook: HADAS_DIST_HANG="<island>:<round>" freezes the worker
/// (without heartbeats) before running that round, so the coordinator's
/// hang watchdog can be exercised deterministically. Like HADAS_CHAOS it is
/// stripped from the environment on respawn.
bool should_hang(std::size_t island, std::size_t round) {
  const char* spec = std::getenv("HADAS_DIST_HANG");
  if (spec == nullptr || *spec == '\0') return false;
  const auto parts = util::split(spec, ':');
  if (parts.size() != 2) return false;
  try {
    return util::parse_size("HADAS_DIST_HANG island", parts[0]) == island &&
           util::parse_size("HADAS_DIST_HANG round", parts[1]) == round;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

IslandProgress inspect_island(const DistSpec& spec, const std::string& workdir,
                              std::size_t island) {
  IslandProgress progress;
  if (island_final_valid(final_path(workdir, island))) {
    progress.final_written = true;
    progress.next_round = round_count(spec);
    return progress;
  }
  const hadas::util::durable::CheckpointChain chain(
      chain_path(workdir, island),
      std::max<std::size_t>(1, spec.checkpoint_keep));
  const auto loaded = core::load_checkpoint_chain(chain);
  if (!loaded) return progress;  // nothing yet: start at round 0
  const std::size_t next_gen = loaded->checkpoint.next_generation;
  // A boundary checkpoint maps to the round starting there; a mid-round one
  // (graceful-shutdown save) maps to the round it interrupted.
  progress.next_round = next_gen >= spec.outer_generations
                            ? round_count(spec)
                            : next_gen / spec.migration_every;
  return progress;
}

bool inbound_ready(const supernet::SearchSpace& space, const DistSpec& spec,
                   const std::string& workdir, std::size_t island,
                   std::size_t round, bool failpoints_on) {
  if (round == 0 || spec.islands <= 1) return true;
  return ensure_migrants_file(space, spec, workdir,
                              inbound_neighbor(spec, island), round - 1,
                              failpoints_on);
}

bool run_island_round(const DistSpec& spec, const std::string& workdir,
                      std::size_t island, std::size_t round,
                      bool failpoints_on, const std::atomic<bool>* cancel,
                      const std::function<void(std::size_t)>& on_generation) {
  if (failpoints_on) hadas::util::failpoint("dist.worker.round.begin");
  const supernet::SearchSpace space = spec_space(spec);
  core::HadasConfig config = island_config(spec, workdir, island);
  config.outer_generations = round_end_generation(spec, round);
  config.cancel = cancel;
  config.on_generation = on_generation;

  core::WarmStart warm;
  if (round > 0 && spec.islands > 1) {
    // A crash between the boundary checkpoint and the migrant write lost
    // our previous outbound file; regenerate it before evolving on (it is a
    // pure function of the boundary checkpoint, so the bytes match what the
    // crashed process would have written).
    if (!ensure_migrants_file(space, spec, workdir, island, round - 1,
                              failpoints_on))
      throw std::runtime_error(
          "dist: island " + std::to_string(island) + " lost both round " +
          std::to_string(round - 1) +
          " boundary checkpoint and its migrant file");
    if (failpoints_on) hadas::util::failpoint("dist.migrate.read");
    const MigrantSet inbound = load_migrants_file(
        migrants_path(workdir, inbound_neighbor(spec, island), round - 1));
    warm.immigrants = inbound.genomes;
    warm.immigrants_at_generation = round * spec.migration_every;
  }

  core::HadasEngine engine(space, island_target(spec, island), config);
  const core::HadasResult result = engine.run(warm);
  if (result.interrupted) return false;
  if (failpoints_on) hadas::util::failpoint("dist.worker.round.end");

  if (round + 1 == round_count(spec)) {
    write_island_final(spec, workdir, island, failpoints_on);
  } else if (spec.islands > 1) {
    ensure_migrants_file(space, spec, workdir, island, round, failpoints_on);
  }
  return true;
}

void touch_heartbeat(const std::string& path, std::uint64_t counter) {
  hadas::util::failpoint("dist.heartbeat");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << counter << "\n";
  }
  std::rename(tmp.c_str(), path.c_str());
}

std::optional<std::uint64_t> read_heartbeat(const std::string& path) {
  std::ifstream in(path);
  std::uint64_t counter = 0;
  if (!(in >> counter)) return std::nullopt;
  return counter;
}

int run_worker(const DistSpec& spec, const std::string& workdir,
               std::size_t island, const WorkerOptions& options) {
  hadas::util::failpoint("dist.worker.start");
  const supernet::SearchSpace space = spec_space(spec);
  const std::string hb = heartbeat_path(workdir, island);
  // Continue the previous incarnation's counter so the coordinator sees
  // strictly advancing beats across restarts.
  std::uint64_t beat = read_heartbeat(hb).value_or(0);
  touch_heartbeat(hb, ++beat);
  const auto poll =
      std::chrono::milliseconds(std::max<std::size_t>(1, options.poll_ms));

  while (true) {
    if (cancelled(options.cancel)) return kWorkerExitInterrupted;
    const IslandProgress progress = inspect_island(spec, workdir, island);
    if (progress.final_written) return kWorkerExitDone;
    if (progress.next_round >= round_count(spec)) {
      // The last round is checkpointed but the crash ate the result file.
      write_island_final(spec, workdir, island);
      continue;
    }

    // Wait — heartbeating — until the inbound migrants of this round exist.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options.wait_timeout_ms);
    while (!inbound_ready(space, spec, workdir, island, progress.next_round)) {
      if (cancelled(options.cancel)) return kWorkerExitInterrupted;
      if (std::chrono::steady_clock::now() > deadline)
        return kWorkerExitWaitTimeout;
      touch_heartbeat(hb, ++beat);
      std::this_thread::sleep_for(poll);
    }

    if (should_hang(island, progress.next_round)) {
      // Simulated hang: alive but silent. SIGKILL (the watchdog) ends it.
      while (!cancelled(options.cancel))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return kWorkerExitInterrupted;
    }

    if (!run_island_round(
            spec, workdir, island, progress.next_round, /*failpoints_on=*/true,
            options.cancel, [&](std::size_t) { touch_heartbeat(hb, ++beat); }))
      return kWorkerExitInterrupted;
  }
}

namespace {

net::Frame net_ack_frame(std::uint64_t read_seq) {
  net::Frame frame;
  frame.type = net::FrameType::kAck;
  net::put_u64(frame.payload, read_seq);
  return frame;
}

util::Json sent_rounds_to_json(const std::set<std::size_t>& rounds) {
  util::Json::Array array;
  for (std::size_t round : rounds)
    array.emplace_back(std::to_string(round));
  return util::Json(std::move(array));
}

std::set<std::size_t> sent_rounds_from_json(const util::Json& json) {
  std::set<std::size_t> rounds;
  for (const util::Json& entry : json.as_array())
    rounds.insert(util::parse_size("session sent round", entry.as_string()));
  return rounds;
}

}  // namespace

NetWorker::NetWorker(net::SocketHandler* handler, NetWorkerConfig config)
    : config_(std::move(config)) {
  if (config_.state_dir.empty())
    throw std::invalid_argument("NetWorker: a state directory is required");
  std::filesystem::create_directories(config_.state_dir);
  if (handler == nullptr) {
    owned_handler_ = std::make_unique<net::TcpSocketHandler>();
    handler_ = owned_handler_.get();
  } else {
    handler_ = handler;
  }
  state_path_ = dist_session_path(config_.state_dir, config_.island);
  if (std::filesystem::exists(state_path_)) restore();
  // A spec durably adopted by a previous incarnation lets this worker keep
  // computing rounds while disconnected; only migrant exchange stalls.
  const std::string spec_file = spec_path(config_.state_dir);
  if (std::filesystem::exists(spec_file)) {
    try {
      DistSpec spec = load_spec(spec_file);
      if (!fingerprint_.empty() && spec_fingerprint(spec) != fingerprint_)
        throw net::ProtocolError(
            "NetWorker: state dir '" + config_.state_dir +
            "' holds a spec that does not match its session journal — it "
            "mixes two runs; use a fresh state dir");
      validate_spec(spec);
      space_ = spec_space(spec);
      spec_ = std::move(spec);
    } catch (const util::durable::CheckpointCorruptError&) {
      // Unreadable local spec: the next WELCOME re-delivers it.
    }
  }
}

net::SocketHandler& NetWorker::handler() { return *handler_; }

bool NetWorker::cancelled() const {
  return config_.cancel != nullptr &&
         config_.cancel->load(std::memory_order_relaxed);
}

void NetWorker::save() {
  net::SessionState state;
  state.session_id = dist_session_id(config_.island);
  state.fingerprint = fingerprint_;
  state.write_acked = writer_.acked();
  state.write_unacked = writer_.unacked();
  state.read_seq = reader_.read_seq();
  util::Json::Object app;
  app["sent"] = sent_rounds_to_json(sent_);
  app["final_sent"] = util::Json(final_sent_);
  app["partial"] = util::Json(partial_);
  app["partial_key"] = util::Json(partial_key_);
  state.app = util::Json(std::move(app));
  net::save_session_state(state_path_, state, kDistSessionFormatTag);
}

void NetWorker::restore() {
  std::optional<net::SessionState> state =
      net::load_session_state(state_path_, kDistSessionFormatTag);
  if (!state)
    throw std::invalid_argument("NetWorker: cannot restore from '" +
                                state_path_ + "'");
  if (state->session_id != dist_session_id(config_.island))
    throw std::invalid_argument(
        "NetWorker: journal '" + state_path_ + "' belongs to session '" +
        state->session_id + "', not '" + dist_session_id(config_.island) +
        "'");
  writer_.restore(state->write_acked, state->write_unacked);
  reader_.restore(state->read_seq);
  fingerprint_ = state->fingerprint;
  sent_ = sent_rounds_from_json(state->app.at("sent"));
  final_sent_ = state->app.at("final_sent").as_bool();
  partial_ = state->app.at("partial").as_string();
  partial_key_ = state->app.at("partial_key").as_string();
}

void NetWorker::adopt_spec(const std::string& spec_json) {
  DistSpec spec = spec_from_json(util::Json::parse(spec_json));
  validate_spec(spec);
  if (config_.island >= spec.islands)
    throw net::ProtocolError(
        "NetWorker: island " + std::to_string(config_.island) +
        " out of range for the delivered spec (" +
        std::to_string(spec.islands) + " islands)");
  // Persist the spec so a respawn (and run_island_round's engine) sees the
  // exact topology the coordinator runs; reject a state dir from another run.
  const std::string spec_file = spec_path(config_.state_dir);
  bool current = false;
  if (std::filesystem::exists(spec_file)) {
    try {
      if (spec_to_json(load_spec(spec_file)).dump(0) !=
          spec_to_json(spec).dump(0))
        throw net::ProtocolError(
            "NetWorker: state dir '" + config_.state_dir +
            "' already holds a different spec — use a fresh state dir");
      current = true;
    } catch (const util::durable::CheckpointCorruptError&) {
    }
  }
  if (!current) save_spec(spec_file, spec);
  space_ = spec_space(spec);
  spec_ = std::move(spec);
}

bool NetWorker::try_connect() {
  std::unique_ptr<net::Socket> socket;
  try {
    socket = handler().connect(config_.connect);
  } catch (const net::ConnectError&) {
    ++connect_failures_;
    return false;
  }
  connect_failures_ = 0;
  transport_.attach(std::move(socket));
  handshaken_ = false;
  if (connected_once_) {
    ++reconnects_;
    dist_net_metrics().reconnects.inc();
  }
  connected_once_ = true;
  net::Frame hello;
  hello.type = net::FrameType::kHello;
  net::put_u32(hello.payload, net::kProtocolVersion);
  net::put_u64(hello.payload, reader_.read_seq());
  hello.payload += dist_session_id(config_.island);
  transport_.send_frame(hello);
  return true;
}

void NetWorker::complete() {
  done_ = true;
  transport_.drop();
  std::error_code ec;
  std::filesystem::remove(state_path_, ec);
}

void NetWorker::handle_welcome(const net::Frame& frame) {
  if (frame.payload.size() < 12)
    throw net::ProtocolError("NetWorker: malformed welcome frame");
  const std::uint64_t coord_read_seq = net::get_u64(frame.payload, 0);
  const std::uint32_t fp_len = net::get_u32(frame.payload, 8);
  if (frame.payload.size() < 12 + fp_len)
    throw net::ProtocolError("NetWorker: malformed welcome frame");
  const std::string fingerprint = frame.payload.substr(12, fp_len);
  const std::string spec_json = frame.payload.substr(12 + fp_len);
  if (coord_read_seq == net::kSessionCompleted) {
    // The coordinator holds the island result and GC'd the session; it only
    // acks the final after durably writing it, so we are done.
    if (!final_sent_)
      throw net::ProtocolError(
          "NetWorker: coordinator reports island " +
          std::to_string(config_.island) +
          " complete but this worker never uploaded a result — stale state "
          "dir?");
    complete();
    return;
  }
  if (!fingerprint_.empty() && fingerprint_ != fingerprint)
    throw net::ProtocolError(
        "NetWorker: coordinator spec changed mid-session (journaled '" +
        fingerprint_ + "', coordinator sent '" + fingerprint +
        "') — refusing to mix two searches in one island");
  if (!spec_.has_value()) adopt_spec(spec_json);
  if (spec_fingerprint(*spec_) != fingerprint)
    throw net::ProtocolError(
        "NetWorker: local spec fingerprint " + spec_fingerprint(*spec_) +
        " does not match the coordinator's " + fingerprint);
  if (coord_read_seq < writer_.acked() ||
      coord_read_seq > writer_.write_seq())
    throw net::ProtocolError(
        "NetWorker: coordinator read_seq " + std::to_string(coord_read_seq) +
        " outside our replay window [" + std::to_string(writer_.acked()) +
        ", " + std::to_string(writer_.write_seq()) + "]");
  const bool first = fingerprint_.empty();
  fingerprint_ = fingerprint;
  writer_.ack(coord_read_seq);
  reader_.clear_inbox();
  transport_.set_flush_cursor(coord_read_seq);
  handshaken_ = true;
  handshake_failures_ = 0;
  if (first) save();  // journal the fingerprint we committed to
}

bool NetWorker::advance() {
  bool mutated = false;
  while (std::optional<net::PeekedFrame> peeked =
             net::peek_frame(reader_.inbox())) {
    const DistChunk chunk = parse_dist_chunk(peeked->frame);
    if (chunk.type != net::FrameType::kDistMigrants)
      throw net::ProtocolError(
          std::string("NetWorker: unexpected app frame '") +
          net::frame_type_name(chunk.type) + "'");
    if (chunk.island != inbound_neighbor(*spec_, config_.island))
      throw net::ProtocolError(
          "NetWorker: pushed migrants labelled island " +
          std::to_string(chunk.island) + " but island " +
          std::to_string(config_.island) + "'s inbound neighbor is " +
          std::to_string(inbound_neighbor(*spec_, config_.island)));
    const std::string key = dist_chunk_key(chunk);
    if (!partial_key_.empty() && partial_key_ != key)
      throw net::ProtocolError("NetWorker: interleaved chunk runs ('" +
                               partial_key_ + "' interrupted by '" + key +
                               "')");
    if (!chunk.last) {
      partial_key_ = key;
      partial_ += chunk.bytes;
    } else {
      const std::string text = partial_ + chunk.bytes;
      partial_.clear();
      partial_key_.clear();
      const std::string path =
          migrants_path(config_.state_dir, chunk.island, chunk.round);
      const bool wrote = util::durable::DurableFile::write_idempotent(
          path, kMigrantsFormatTag, text);
      try {
        (void)load_migrants_file(path);
      } catch (const util::durable::CheckpointCorruptError& error) {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        throw net::ProtocolError(
            std::string("NetWorker: malformed pushed migrant payload: ") +
            error.what());
      }
      dist_net_metrics().migrant_sets_received.inc();
      if (!wrote) dist_net_metrics().migrant_sets_replayed.inc();
    }
    reader_.consume(peeked->encoded_size);
    mutated = true;
  }
  if (!mutated) return false;
  // save-before-ack: journal the consumed bytes (and any durably written
  // migrant file) before the ack can reach the coordinator.
  save();
  transport_.send_frame(net_ack_frame(reader_.read_seq()));
  return true;
}

void NetWorker::beat() {
  const auto now = Clock::now();
  if (config_.beat_every_ms > 0 &&
      now - last_beat_ < std::chrono::milliseconds(config_.beat_every_ms))
    return;
  last_beat_ = now;
  if (!handshaken_ || !transport_.attached()) return;
  // A duplicate ack is a no-op for the stream but proves this island alive
  // to the coordinator's watchdog while the engine grinds through a round.
  transport_.send_frame(net_ack_frame(reader_.read_seq()));
  transport_.pump(writer_);
}

bool NetWorker::work_step() {
  if (!spec_.has_value()) return false;
  const DistSpec& spec = *spec_;
  bool did = false;
  const IslandProgress progress =
      inspect_island(spec, config_.state_dir, config_.island);
  if (progress.final_written) {
    if (!final_sent_) {
      const std::string text = util::durable::DurableFile::read(
          final_path(config_.state_dir, config_.island),
          kIslandResultFormatTag);
      append_blob(writer_, net::FrameType::kDistFinal, config_.island, 0,
                  text);
      final_sent_ = true;
      // Journal the queued upload before any pump can flush it.
      save();
      did = true;
    }
  } else if (progress.next_round >= round_count(spec)) {
    write_island_final(spec, config_.state_dir, config_.island);
    did = true;
  } else if (inbound_ready(*space_, spec, config_.state_dir, config_.island,
                           progress.next_round)) {
    last_beat_ = Clock::now();
    if (!run_island_round(spec, config_.state_dir, config_.island,
                          progress.next_round, /*failpoints_on=*/true,
                          config_.cancel, [this](std::size_t) { beat(); }))
      return did;  // cancelled mid-round (state checkpointed)
    did = true;
  }
  if (spec.islands > 1) {
    bool queued = false;
    for (std::size_t round = 0; round + 1 < round_count(spec); ++round) {
      if (sent_.count(round) != 0) continue;
      const std::string path =
          migrants_path(config_.state_dir, config_.island, round);
      if (!migrants_file_valid(path)) continue;
      append_blob(writer_, net::FrameType::kDistMigrants, config_.island,
                  round,
                  util::durable::DurableFile::read(path, kMigrantsFormatTag));
      sent_.insert(round);
      dist_net_metrics().migrant_sets_sent.inc();
      queued = true;
    }
    if (queued) {
      save();
      did = true;
    }
  }
  return did;
}

bool NetWorker::step() {
  if (done_) return false;
  if (handshake_failures_ >= config_.max_handshake_failures)
    throw net::ProtocolError(
        "NetWorker: coordinator at " + config_.connect.host + ":" +
        std::to_string(config_.connect.port) + " dropped " +
        std::to_string(handshake_failures_) +
        " consecutive connections before completing a handshake");
  // A failed dial does NOT end the step: a worker holding the spec keeps
  // computing rounds while the coordinator is unreachable.
  const bool online = transport_.attached() || try_connect();
  bool progress = false;
  bool died = false;
  if (online) {
    const bool alive = transport_.pump(writer_);
    try {
      std::optional<net::Frame> frame;
      while ((frame = transport_.next())) {
        progress = true;
        if (frame->type == net::FrameType::kRefuse) {
          throw net::ProtocolError("NetWorker: coordinator refused session '" +
                                   dist_session_id(config_.island) +
                                   "': " + frame->payload);
        } else if (!handshaken_) {
          if (frame->type != net::FrameType::kWelcome)
            throw net::ProtocolError(
                std::string("NetWorker: expected welcome, got '") +
                net::frame_type_name(frame->type) + "'");
          handle_welcome(*frame);
          if (done_) return true;
        } else if (frame->type == net::FrameType::kData) {
          if (frame->payload.size() < 8)
            throw net::ProtocolError("NetWorker: malformed data frame");
          reader_.offer(net::get_u64(frame->payload, 0),
                        std::string_view(frame->payload).substr(8));
        } else if (frame->type == net::FrameType::kAck) {
          writer_.ack(net::get_u64(frame->payload, 0));
        } else {
          throw net::ProtocolError(
              std::string("NetWorker: unexpected transport frame '") +
              net::frame_type_name(frame->type) + "'");
        }
      }
      if (handshaken_) progress |= advance();
    } catch (const net::FrameError&) {
      transport_.drop();  // corrupt transport bytes: reconnect and replay
      return true;
    }
    if (!alive) {
      // A connection that died without reaching WELCOME: a silently-
      // rejecting coordinator would otherwise look like endless clean
      // reconnects — count it so step() can give up loudly.
      if (!handshaken_) ++handshake_failures_;
      handshaken_ = false;
      died = true;
    }
  }
  progress |= work_step();
  // An idle worker (waiting on inbound migrants) still beats: a partition
  // of *another* island must not make this one look silent to the watchdog.
  if (handshaken_ && transport_.attached()) beat();
  if (final_sent_ && writer_.acked() == writer_.write_seq()) {
    // The coordinator durably consumed everything including the final.
    complete();
    return true;
  }
  if (transport_.attached()) transport_.pump(writer_);
  return progress || died;
}

int NetWorker::run() {
  auto last_progress = Clock::now();
  while (!done_) {
    if (cancelled()) return kWorkerExitInterrupted;
    if (connect_failures_ >= config_.max_connect_attempts)
      throw net::ConnectError(
          "NetWorker: cannot reach " + config_.connect.host + ":" +
          std::to_string(config_.connect.port) + " after " +
          std::to_string(connect_failures_) + " attempts");
    const bool progress = step();
    if (done_) break;
    const auto now = Clock::now();
    if (progress) {
      last_progress = now;
    } else {
      if (now - last_progress >
          std::chrono::milliseconds(config_.wait_timeout_ms))
        return kWorkerExitWaitTimeout;
      handler().wait(static_cast<int>(
          std::max<std::size_t>(1, config_.reconnect_backoff_ms)));
    }
  }
  return kWorkerExitDone;
}

int run_net_worker(net::SocketHandler* handler, const NetWorkerConfig& config) {
  NetWorker worker(handler, config);
  return worker.run();
}

}  // namespace hadas::dist
