#include "dist/worker.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/serialize.hpp"
#include "util/durable/checkpoint_chain.hpp"
#include "util/failpoint.hpp"
#include "util/strutil.hpp"

namespace hadas::dist {

namespace {

bool cancelled(const std::atomic<bool>* cancel) {
  return cancel != nullptr && cancel->load(std::memory_order_relaxed);
}

/// Test hook: HADAS_DIST_HANG="<island>:<round>" freezes the worker
/// (without heartbeats) before running that round, so the coordinator's
/// hang watchdog can be exercised deterministically. Like HADAS_CHAOS it is
/// stripped from the environment on respawn.
bool should_hang(std::size_t island, std::size_t round) {
  const char* spec = std::getenv("HADAS_DIST_HANG");
  if (spec == nullptr || *spec == '\0') return false;
  const auto parts = util::split(spec, ':');
  if (parts.size() != 2) return false;
  try {
    return util::parse_size("HADAS_DIST_HANG island", parts[0]) == island &&
           util::parse_size("HADAS_DIST_HANG round", parts[1]) == round;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

IslandProgress inspect_island(const DistSpec& spec, const std::string& workdir,
                              std::size_t island) {
  IslandProgress progress;
  if (island_final_valid(final_path(workdir, island))) {
    progress.final_written = true;
    progress.next_round = round_count(spec);
    return progress;
  }
  const hadas::util::durable::CheckpointChain chain(
      chain_path(workdir, island),
      std::max<std::size_t>(1, spec.checkpoint_keep));
  const auto loaded = core::load_checkpoint_chain(chain);
  if (!loaded) return progress;  // nothing yet: start at round 0
  const std::size_t next_gen = loaded->checkpoint.next_generation;
  // A boundary checkpoint maps to the round starting there; a mid-round one
  // (graceful-shutdown save) maps to the round it interrupted.
  progress.next_round = next_gen >= spec.outer_generations
                            ? round_count(spec)
                            : next_gen / spec.migration_every;
  return progress;
}

bool inbound_ready(const supernet::SearchSpace& space, const DistSpec& spec,
                   const std::string& workdir, std::size_t island,
                   std::size_t round, bool failpoints_on) {
  if (round == 0 || spec.islands <= 1) return true;
  return ensure_migrants_file(space, spec, workdir,
                              inbound_neighbor(spec, island), round - 1,
                              failpoints_on);
}

bool run_island_round(const DistSpec& spec, const std::string& workdir,
                      std::size_t island, std::size_t round,
                      bool failpoints_on, const std::atomic<bool>* cancel,
                      const std::function<void(std::size_t)>& on_generation) {
  if (failpoints_on) hadas::util::failpoint("dist.worker.round.begin");
  const supernet::SearchSpace space = spec_space(spec);
  core::HadasConfig config = island_config(spec, workdir, island);
  config.outer_generations = round_end_generation(spec, round);
  config.cancel = cancel;
  config.on_generation = on_generation;

  core::WarmStart warm;
  if (round > 0 && spec.islands > 1) {
    // A crash between the boundary checkpoint and the migrant write lost
    // our previous outbound file; regenerate it before evolving on (it is a
    // pure function of the boundary checkpoint, so the bytes match what the
    // crashed process would have written).
    if (!ensure_migrants_file(space, spec, workdir, island, round - 1,
                              failpoints_on))
      throw std::runtime_error(
          "dist: island " + std::to_string(island) + " lost both round " +
          std::to_string(round - 1) +
          " boundary checkpoint and its migrant file");
    if (failpoints_on) hadas::util::failpoint("dist.migrate.read");
    const MigrantSet inbound = load_migrants_file(
        migrants_path(workdir, inbound_neighbor(spec, island), round - 1));
    warm.immigrants = inbound.genomes;
    warm.immigrants_at_generation = round * spec.migration_every;
  }

  core::HadasEngine engine(space, spec_target(spec), config);
  const core::HadasResult result = engine.run(warm);
  if (result.interrupted) return false;
  if (failpoints_on) hadas::util::failpoint("dist.worker.round.end");

  if (round + 1 == round_count(spec)) {
    write_island_final(spec, workdir, island, failpoints_on);
  } else if (spec.islands > 1) {
    ensure_migrants_file(space, spec, workdir, island, round, failpoints_on);
  }
  return true;
}

void touch_heartbeat(const std::string& path, std::uint64_t counter) {
  hadas::util::failpoint("dist.heartbeat");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << counter << "\n";
  }
  std::rename(tmp.c_str(), path.c_str());
}

std::optional<std::uint64_t> read_heartbeat(const std::string& path) {
  std::ifstream in(path);
  std::uint64_t counter = 0;
  if (!(in >> counter)) return std::nullopt;
  return counter;
}

int run_worker(const DistSpec& spec, const std::string& workdir,
               std::size_t island, const WorkerOptions& options) {
  hadas::util::failpoint("dist.worker.start");
  const supernet::SearchSpace space = spec_space(spec);
  const std::string hb = heartbeat_path(workdir, island);
  // Continue the previous incarnation's counter so the coordinator sees
  // strictly advancing beats across restarts.
  std::uint64_t beat = read_heartbeat(hb).value_or(0);
  touch_heartbeat(hb, ++beat);
  const auto poll =
      std::chrono::milliseconds(std::max<std::size_t>(1, options.poll_ms));

  while (true) {
    if (cancelled(options.cancel)) return kWorkerExitInterrupted;
    const IslandProgress progress = inspect_island(spec, workdir, island);
    if (progress.final_written) return kWorkerExitDone;
    if (progress.next_round >= round_count(spec)) {
      // The last round is checkpointed but the crash ate the result file.
      write_island_final(spec, workdir, island);
      continue;
    }

    // Wait — heartbeating — until the inbound migrants of this round exist.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options.wait_timeout_ms);
    while (!inbound_ready(space, spec, workdir, island, progress.next_round)) {
      if (cancelled(options.cancel)) return kWorkerExitInterrupted;
      if (std::chrono::steady_clock::now() > deadline)
        return kWorkerExitWaitTimeout;
      touch_heartbeat(hb, ++beat);
      std::this_thread::sleep_for(poll);
    }

    if (should_hang(island, progress.next_round)) {
      // Simulated hang: alive but silent. SIGKILL (the watchdog) ends it.
      while (!cancelled(options.cancel))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return kWorkerExitInterrupted;
    }

    if (!run_island_round(
            spec, workdir, island, progress.next_round, /*failpoints_on=*/true,
            options.cancel, [&](std::size_t) { touch_heartbeat(hb, ++beat); }))
      return kWorkerExitInterrupted;
  }
}

}  // namespace hadas::dist
