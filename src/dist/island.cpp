#include "dist/island.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/serialize.hpp"
#include "hw/faults.hpp"
#include "util/durable/checkpoint_chain.hpp"
#include "util/durable/durable_file.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace hadas::dist {

using hadas::util::Json;
using hadas::util::durable::CheckpointCorruptError;
using hadas::util::durable::CorruptStage;
using hadas::util::durable::DurableFile;

namespace {

std::string hex_u64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

std::uint64_t u64_from_hex(const std::string& text) {
  if (text.empty() || text.size() > 16)
    throw std::invalid_argument("bad u64 hex '" + text + "'");
  std::uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else throw std::invalid_argument("bad u64 hex digit in '" + text + "'");
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

Json genomes_to_json(const std::vector<supernet::Genome>& genomes) {
  Json::Array rows;
  for (const supernet::Genome& genome : genomes) {
    Json::Array genes;
    for (std::int32_t g : genome) genes.push_back(Json(static_cast<int>(g)));
    rows.push_back(Json(std::move(genes)));
  }
  return Json(std::move(rows));
}

std::vector<supernet::Genome> genomes_from_json(const Json& json) {
  std::vector<supernet::Genome> genomes;
  for (const Json& genes : json.as_array()) {
    supernet::Genome genome;
    for (const Json& g : genes.as_array())
      genome.push_back(static_cast<std::int32_t>(g.as_int()));
    genomes.push_back(std::move(genome));
  }
  return genomes;
}

std::string numbered(const std::string& workdir, const char* stem,
                     std::size_t island, const char* suffix) {
  return workdir + "/" + stem + std::to_string(island) + suffix;
}

}  // namespace

void validate_spec(const DistSpec& spec) {
  if (spec.islands == 0)
    throw std::invalid_argument("dist: need at least one island");
  if (spec.outer_generations == 0)
    throw std::invalid_argument("dist: need at least one outer generation");
  if (spec.migration_every == 0)
    throw std::invalid_argument("dist: migration cadence must be >= 1");
  if (spec.outer_population < 2 * spec.islands)
    throw std::invalid_argument(
        "dist: population " + std::to_string(spec.outer_population) +
        " is too small for " + std::to_string(spec.islands) +
        " islands (every island needs >= 2 genomes)");
  if (spec.islands > 1 && spec.migrants == 0)
    throw std::invalid_argument("dist: need >= 1 migrant with > 1 island");
  // The fault spec must parse now, not inside K workers later.
  if (!spec.faults.empty()) hw::parse_fault_config(spec.faults);
  spec_target(spec);
  spec_space(spec);
  if (!spec.island_devices.empty()) {
    if (spec.island_devices.size() != spec.islands)
      throw std::invalid_argument(
          "dist: island_devices has " +
          std::to_string(spec.island_devices.size()) + " entries for " +
          std::to_string(spec.islands) + " islands");
    for (std::size_t i = 0; i < spec.islands; ++i) island_target(spec, i);
  }
}

Json spec_to_json(const DistSpec& spec) {
  Json json;
  json["device"] = Json(spec.device);
  json["space"] = Json(spec.space);
  json["outer_population"] = Json(spec.outer_population);
  json["outer_generations"] = Json(spec.outer_generations);
  json["ioe_backbones_per_generation"] =
      Json(spec.ioe_backbones_per_generation);
  json["ioe_population"] = Json(spec.ioe_population);
  json["ioe_generations"] = Json(spec.ioe_generations);
  json["seed_hex"] = Json(hex_u64(spec.seed));
  json["train_size"] = Json(spec.train_size);
  json["epochs"] = Json(spec.epochs);
  json["max_latency_s"] = Json(spec.max_latency_s);
  json["faults"] = Json(spec.faults);
  json["checkpoint_keep"] = Json(spec.checkpoint_keep);
  json["threads"] = Json(spec.threads);
  json["islands"] = Json(spec.islands);
  json["migration_every"] = Json(spec.migration_every);
  json["migrants"] = Json(spec.migrants);
  if (!spec.island_devices.empty()) {
    Json::Array devices;
    for (const std::string& device : spec.island_devices)
      devices.push_back(Json(device));
    json["island_devices"] = std::move(devices);
  }
  return json;
}

DistSpec spec_from_json(const Json& json) {
  DistSpec spec;
  spec.device = json.at("device").as_string();
  spec.space = json.at("space").as_string();
  spec.outer_population = json.at("outer_population").as_index();
  spec.outer_generations = json.at("outer_generations").as_index();
  spec.ioe_backbones_per_generation =
      json.at("ioe_backbones_per_generation").as_index();
  spec.ioe_population = json.at("ioe_population").as_index();
  spec.ioe_generations = json.at("ioe_generations").as_index();
  spec.seed = u64_from_hex(json.at("seed_hex").as_string());
  spec.train_size = json.at("train_size").as_index();
  spec.epochs = json.at("epochs").as_index();
  spec.max_latency_s = json.at("max_latency_s").as_number();
  spec.faults = json.at("faults").as_string();
  spec.checkpoint_keep = json.at("checkpoint_keep").as_index();
  spec.threads = json.at("threads").as_index();
  spec.islands = json.at("islands").as_index();
  spec.migration_every = json.at("migration_every").as_index();
  spec.migrants = json.at("migrants").as_index();
  if (json.contains("island_devices"))
    for (const Json& device : json.at("island_devices").as_array())
      spec.island_devices.push_back(device.as_string());
  return spec;
}

void save_spec(const std::string& path, const DistSpec& spec) {
  validate_spec(spec);
  DurableFile::write(path, kDistSpecFormatTag, spec_to_json(spec).dump(2) + "\n");
}

DistSpec load_spec(const std::string& path) {
  const std::string payload = DurableFile::read(path, kDistSpecFormatTag);
  DistSpec spec;
  try {
    spec = spec_from_json(Json::parse(payload));
  } catch (const std::exception& e) {
    throw CheckpointCorruptError(path, 0, CorruptStage::kParse, e.what());
  }
  try {
    validate_spec(spec);
  } catch (const std::exception& e) {
    throw CheckpointCorruptError(path, 0, CorruptStage::kInvariant, e.what());
  }
  return spec;
}

std::string spec_path(const std::string& workdir) {
  return workdir + "/dist_spec.json";
}
std::string chain_path(const std::string& workdir, std::size_t island) {
  return numbered(workdir, "island", island, ".ck.json");
}
std::string final_path(const std::string& workdir, std::size_t island) {
  return numbered(workdir, "island", island, ".final.json");
}
std::string migrants_path(const std::string& workdir, std::size_t island,
                          std::size_t round) {
  return workdir + "/migrants_i" + std::to_string(island) + "_r" +
         std::to_string(round) + ".json";
}
std::string heartbeat_path(const std::string& workdir, std::size_t island) {
  return numbered(workdir, "island", island, ".hb");
}
std::string log_path(const std::string& workdir, std::size_t island) {
  return numbered(workdir, "island", island, ".log");
}

std::size_t round_count(const DistSpec& spec) {
  return (spec.outer_generations + spec.migration_every - 1) /
         spec.migration_every;
}

std::size_t round_end_generation(const DistSpec& spec, std::size_t round) {
  return std::min((round + 1) * spec.migration_every, spec.outer_generations);
}

std::size_t inbound_neighbor(const DistSpec& spec, std::size_t island) {
  return (island + spec.islands - 1) % spec.islands;
}

std::uint64_t island_seed(std::uint64_t seed, std::size_t island,
                          std::size_t islands) {
  if (islands <= 1) return seed;  // 1-island run == plain search, bit for bit
  util::SplitMix64 mix(seed ^ (0xD1B54A32D192ED03ULL *
                               static_cast<std::uint64_t>(island + 1)));
  return mix.next();
}

std::size_t island_population(const DistSpec& spec, std::size_t island) {
  if (spec.islands <= 1) return spec.outer_population;
  return spec.outer_population / spec.islands +
         (island < spec.outer_population % spec.islands ? 1 : 0);
}

core::HadasConfig island_config(const DistSpec& spec,
                                const std::string& workdir,
                                std::size_t island) {
  core::HadasConfig config;
  config.outer_population = island_population(spec, island);
  config.outer_generations = spec.outer_generations;
  config.ioe_backbones_per_generation = spec.ioe_backbones_per_generation;
  config.ioe.nsga.population = spec.ioe_population;
  config.ioe.nsga.generations = spec.ioe_generations;
  config.seed = island_seed(spec.seed, island, spec.islands);
  config.data.train_size = spec.train_size;
  config.bank.train.epochs = spec.epochs;
  config.max_latency_s = spec.max_latency_s;
  if (!spec.faults.empty())
    config.robust.faults = hw::parse_fault_config(spec.faults);
  config.checkpoint_path = chain_path(workdir, island);
  // Checkpoints land exactly on round boundaries, so a mid-round crash
  // replays the whole round — deterministically, since the inbound migrant
  // files it re-reads are durable.
  config.checkpoint_every = spec.migration_every;
  config.checkpoint_keep = spec.checkpoint_keep;
  config.exec.threads = spec.threads;
  config.fingerprint_salt = "island:" + std::to_string(island) + "/" +
                            std::to_string(spec.islands);
  return config;
}

namespace {
hw::Target target_from_device_key(const std::string& device) {
  if (device == "agx-gpu") return hw::Target::kAgxVoltaGpu;
  if (device == "agx-cpu") return hw::Target::kCarmelCpu;
  if (device == "tx2-gpu") return hw::Target::kTx2PascalGpu;
  if (device == "tx2-cpu") return hw::Target::kDenverCpu;
  throw std::invalid_argument("dist: unknown device '" + device + "'");
}
}  // namespace

hw::Target spec_target(const DistSpec& spec) {
  return target_from_device_key(spec.device);
}

hw::Target island_target(const DistSpec& spec, std::size_t island) {
  if (spec.island_devices.empty()) return spec_target(spec);
  if (island >= spec.island_devices.size())
    throw std::invalid_argument("dist: island index out of range");
  return target_from_device_key(spec.island_devices[island]);
}

supernet::SearchSpace spec_space(const DistSpec& spec) {
  if (spec.space == "attentive") return supernet::SearchSpace::attentive_nas();
  if (spec.space == "ofa") return supernet::SearchSpace::once_for_all();
  throw std::invalid_argument("dist: unknown space '" + spec.space + "'");
}

std::vector<supernet::Genome> select_migrants(
    const supernet::SearchSpace& space, const DistSpec& spec,
    const core::SearchCheckpoint& checkpoint) {
  // Elite order over every backbone the island has evaluated: fronts of the
  // constrained static objectives, crowding-sorted within each front — the
  // same ordering the engine's early selection uses, so migration exports
  // the genomes the sender itself considers best.
  std::vector<core::Objectives> points;
  points.reserve(checkpoint.backbones.size());
  for (const core::BackboneOutcome& outcome : checkpoint.backbones)
    points.push_back(
        core::constrained_objectives(outcome.static_eval, spec.max_latency_s));
  const auto fronts = core::non_dominated_sort(points);

  std::vector<supernet::Genome> selected;
  for (const auto& front : fronts) {
    const auto dist = core::crowding_distance(points, front);
    std::vector<std::size_t> by_crowding(front.size());
    for (std::size_t i = 0; i < front.size(); ++i) by_crowding[i] = i;
    std::sort(by_crowding.begin(), by_crowding.end(),
              [&](std::size_t a, std::size_t b) { return dist[a] > dist[b]; });
    for (std::size_t i : by_crowding) {
      if (selected.size() == spec.migrants) return selected;
      selected.push_back(
          supernet::encode(space, checkpoint.backbones[front[i]].config));
    }
    if (selected.size() == spec.migrants) break;
  }
  return selected;
}

void write_migrants_file(const std::string& path, const MigrantSet& migrants,
                         bool failpoints_on) {
  Json json;
  json["island"] = Json(migrants.island);
  json["round"] = Json(migrants.round);
  json["genomes"] = genomes_to_json(migrants.genomes);
  DurableFile::write(path, kMigrantsFormatTag, json.dump(2) + "\n");
  if (failpoints_on)
    hadas::util::failpoint_file("dist.migrate.write", path.c_str());
}

MigrantSet load_migrants_file(const std::string& path) {
  const std::string payload = DurableFile::read(path, kMigrantsFormatTag);
  try {
    const Json json = Json::parse(payload);
    MigrantSet migrants;
    migrants.island = json.at("island").as_index();
    migrants.round = json.at("round").as_index();
    migrants.genomes = genomes_from_json(json.at("genomes"));
    return migrants;
  } catch (const std::exception& e) {
    throw CheckpointCorruptError(path, 0, CorruptStage::kParse, e.what());
  }
}

bool migrants_file_valid(const std::string& path) {
  const auto info = DurableFile::inspect(path);
  return info.exists && info.valid() && info.format_tag == kMigrantsFormatTag;
}

bool ensure_migrants_file(const supernet::SearchSpace& space,
                          const DistSpec& spec, const std::string& workdir,
                          std::size_t island, std::size_t round,
                          bool failpoints_on) {
  const std::string path = migrants_path(workdir, island, round);
  if (migrants_file_valid(path)) return true;
  // Find the chain slot holding the end-of-round boundary. The newest slot
  // holds it in the normal (crash-before-write) case; older slots cover a
  // cross-process repair after the owner already advanced.
  const std::size_t boundary = round_end_generation(spec, round);
  const hadas::util::durable::CheckpointChain chain(
      chain_path(workdir, island), std::max<std::size_t>(1, spec.checkpoint_keep));
  for (std::size_t slot = 0; slot < chain.keep(); ++slot) {
    core::SearchCheckpoint checkpoint;
    try {
      checkpoint = core::load_checkpoint(chain.slot_path(slot));
    } catch (const std::exception&) {
      continue;  // missing or corrupt slot — keep walking down the chain
    }
    if (checkpoint.next_generation != boundary) continue;
    MigrantSet migrants;
    migrants.island = island;
    migrants.round = round;
    migrants.genomes = select_migrants(space, spec, checkpoint);
    write_migrants_file(path, migrants, failpoints_on);
    return true;
  }
  return false;
}

void write_island_final(const DistSpec& spec, const std::string& workdir,
                        std::size_t island, bool failpoints_on) {
  const std::string path = final_path(workdir, island);
  if (island_final_valid(path)) return;
  const hadas::util::durable::CheckpointChain chain(
      chain_path(workdir, island), std::max<std::size_t>(1, spec.checkpoint_keep));
  const auto loaded = core::load_checkpoint_chain(chain);
  if (!loaded || loaded->checkpoint.next_generation < spec.outer_generations)
    throw std::logic_error("dist: island " + std::to_string(island) +
                           " asked to finalize before its last round");
  // Derived purely from the boundary checkpoint — a crashed-and-restarted
  // worker and an undisturbed one write the same bytes.
  core::HadasResult result;
  result.backbones = loaded->checkpoint.backbones;
  result.outer_evaluations = loaded->checkpoint.outer_evaluations;
  result.inner_evaluations = loaded->checkpoint.inner_evaluations;
  result.final_pareto = core::final_pareto_of(result.backbones);
  Json json = core::result_to_json(result, island_target(spec, island));
  json["island"] = Json(island);
  json["next_generation"] = Json(loaded->checkpoint.next_generation);
  DurableFile::write(path, kIslandResultFormatTag, json.dump(2) + "\n");
  if (failpoints_on)
    hadas::util::failpoint_file("dist.worker.final", path.c_str());
}

Json load_island_result(const std::string& path) {
  const std::string payload = DurableFile::read(path, kIslandResultFormatTag);
  try {
    Json json = Json::parse(payload);
    (void)core::final_pareto_from_json(json);  // shape check
    (void)json.at("island").as_index();
    (void)json.at("next_generation").as_index();
    return json;
  } catch (const std::exception& e) {
    throw CheckpointCorruptError(path, 0, CorruptStage::kParse, e.what());
  }
}

bool island_final_valid(const std::string& path) {
  const auto info = DurableFile::inspect(path);
  return info.exists && info.valid() &&
         info.format_tag == kIslandResultFormatTag;
}

Json merge_islands(const DistSpec& spec, const std::string& workdir) {
  std::vector<core::FinalSolution> pool;
  std::size_t outer = 0, inner = 0, explored = 0;
  for (std::size_t i = 0; i < spec.islands; ++i) {
    const Json island = load_island_result(final_path(workdir, i));
    outer += island.at("outer_evaluations").as_index();
    inner += island.at("inner_evaluations").as_index();
    explored += island.at("explored_backbones").as_index();
    for (core::FinalSolution& sol : core::final_pareto_from_json(island))
      pool.push_back(std::move(sol));
  }
  // Union front in deterministic island order.
  core::ParetoArchive archive;
  for (std::size_t p = 0; p < pool.size(); ++p)
    archive.insert(
        {pool[p].dynamic.energy_gain, pool[p].dynamic.oracle_accuracy}, p);

  Json json;
  if (spec.island_devices.empty()) {
    json["device"] = Json(hw::target_name(spec_target(spec)));
  } else {
    // Fleet-scoped islands: name every distinct device group, island order.
    std::string devices;
    for (std::size_t i = 0; i < spec.islands; ++i) {
      const std::string name = hw::target_name(island_target(spec, i));
      if (devices.find(name) == std::string::npos)
        devices += (devices.empty() ? "" : " + ") + name;
    }
    json["device"] = Json(devices);
  }
  json["islands"] = Json(spec.islands);
  json["migration_every"] = Json(spec.migration_every);
  json["migrants"] = Json(spec.migrants);
  json["outer_evaluations"] = Json(outer);
  json["inner_evaluations"] = Json(inner);
  json["explored_backbones"] = Json(explored);
  Json::Array pareto;
  for (std::size_t payload : archive.payloads())
    pareto.push_back(core::to_json(pool[payload]));
  json["final_pareto"] = Json(std::move(pareto));
  return json;
}

}  // namespace hadas::dist
