#pragma once

#include "data/sample_stream.hpp"
#include "dynn/exit_bank.hpp"
#include "dynn/exit_placement.hpp"
#include "dynn/multi_exit_cost.hpp"
#include "hw/thermal.hpp"
#include "runtime/controller.hpp"

namespace hadas::runtime {

/// Outcome of a back-to-back (sustained) stream with thermal dynamics.
struct SustainedReport {
  std::size_t samples = 0;
  double accuracy = 0.0;
  double total_time_s = 0.0;
  double total_energy_j = 0.0;
  double throughput_sps = 0.0;     ///< samples per second over the whole run
  double throttled_fraction = 0.0; ///< fraction of samples run throttled
  double peak_temperature_c = 0.0;
  double final_temperature_c = 0.0;
};

/// Sustained-stream simulator: samples are processed back to back, the
/// package heats according to the dissipated power, and the thermal governor
/// caps the core frequency while hot. This is the long-run regime where the
/// max-frequency "performance" setting loses to the cooler, energy-optimal
/// operating points found by the F-subspace search.
class SustainedDeployment {
 public:
  SustainedDeployment(const dynn::ExitBank& bank,
                      const dynn::MultiExitCostTable& costs,
                      hw::ThermalConfig thermal = {});

  /// Run the stream with a cascading controller at the requested DVFS
  /// setting; while the thermal model is throttled, the effective core
  /// index is capped at the thermal config's `throttled_core_idx`.
  SustainedReport run(const dynn::ExitPlacement& placement,
                      hw::DvfsSetting requested, const ExitPolicy& policy,
                      const data::SampleStream& stream) const;

 private:
  const dynn::ExitBank& bank_;
  const dynn::MultiExitCostTable& costs_;
  hw::ThermalConfig thermal_;
};

}  // namespace hadas::runtime
