#pragma once

#include <memory>
#include <string>

#include "dynn/exit_bank.hpp"

namespace hadas::runtime {

/// Input-to-exit mapping policy (Sec. IV-C). Given a test sample arriving at
/// an exit, decides whether to take the exit or continue down the backbone.
/// HADAS optimizes at design time under the ideal policy and is compatible
/// with any of these at deployment.
class ExitPolicy {
 public:
  virtual ~ExitPolicy() = default;

  virtual std::string name() const = 0;

  /// True if test sample `sample` should take the exit at `exit_record`.
  virtual bool take_exit(const dynn::TrainedExit& exit_record,
                         std::size_t sample) const = 0;

  /// Feedback hook: the deployment simulator reports, after every sample,
  /// whether it exited early. Stateless policies ignore it; adaptive ones
  /// (see AdaptiveEntropyPolicy) use it as their control signal — ground
  /// truth is unavailable at the edge, but the exit rate is observable.
  /// Declared const so simulators can hold const references; adaptive
  /// policies keep their (single-threaded) controller state mutable.
  virtual void on_sample_complete(bool exited_early) const { (void)exited_early; }
};

/// Ideal mapping: take the first exit that classifies the sample correctly
/// (the design-stage assumption of eq. 6 — an oracle upper bound).
class OraclePolicy final : public ExitPolicy {
 public:
  std::string name() const override { return "oracle"; }
  bool take_exit(const dynn::TrainedExit& exit_record,
                 std::size_t sample) const override;
};

/// Entropy thresholding (BranchyNet-style): exit when the normalized
/// prediction entropy falls below the threshold.
class EntropyPolicy final : public ExitPolicy {
 public:
  explicit EntropyPolicy(double threshold) : threshold_(threshold) {}
  std::string name() const override { return "entropy"; }
  double threshold() const { return threshold_; }
  bool take_exit(const dynn::TrainedExit& exit_record,
                 std::size_t sample) const override;

 private:
  double threshold_;
};

/// Entropy thresholding with online adaptation: tracks the observed
/// early-exit rate (EMA) and steers the threshold toward a target rate —
/// an integral controller. Under distribution drift (inputs getting harder,
/// entropies rising) a fixed threshold silently stops exiting and the
/// energy budget blows; this policy keeps the exit rate, and therefore the
/// energy envelope, on target at some accuracy cost. See
/// examples/drift_adaptation.cpp.
class AdaptiveEntropyPolicy final : public ExitPolicy {
 public:
  /// `target_rate` is the desired fraction of samples exiting early;
  /// `gain` the per-sample threshold correction; `ema` the rate smoothing.
  AdaptiveEntropyPolicy(double initial_threshold, double target_rate,
                        double gain = 0.01, double ema = 0.05);

  std::string name() const override { return "adaptive-entropy"; }
  double threshold() const { return threshold_; }
  double observed_rate() const { return rate_ema_; }

  bool take_exit(const dynn::TrainedExit& exit_record,
                 std::size_t sample) const override;
  void on_sample_complete(bool exited_early) const override;

 private:
  double target_rate_;
  double gain_;
  double ema_;
  mutable double threshold_;
  mutable double rate_ema_;
};

/// Max-softmax-probability thresholding: exit when the winning class
/// probability exceeds the threshold.
class ConfidencePolicy final : public ExitPolicy {
 public:
  explicit ConfidencePolicy(double threshold) : threshold_(threshold) {}
  std::string name() const override { return "confidence"; }
  double threshold() const { return threshold_; }
  bool take_exit(const dynn::TrainedExit& exit_record,
                 std::size_t sample) const override;

 private:
  double threshold_;
};

}  // namespace hadas::runtime
