#include "runtime/controller.hpp"

#include <stdexcept>

namespace hadas::runtime {

bool OraclePolicy::take_exit(const dynn::TrainedExit& exit_record,
                             std::size_t sample) const {
  if (sample >= exit_record.test_correct.size())
    throw std::out_of_range("OraclePolicy: sample index");
  return exit_record.test_correct[sample];
}

bool EntropyPolicy::take_exit(const dynn::TrainedExit& exit_record,
                              std::size_t sample) const {
  if (sample >= exit_record.test_entropy.size())
    throw std::out_of_range("EntropyPolicy: sample index");
  return exit_record.test_entropy[sample] < threshold_;
}

AdaptiveEntropyPolicy::AdaptiveEntropyPolicy(double initial_threshold,
                                             double target_rate, double gain,
                                             double ema)
    : target_rate_(target_rate),
      gain_(gain),
      ema_(ema),
      threshold_(initial_threshold),
      rate_ema_(target_rate) {
  if (target_rate < 0.0 || target_rate > 1.0)
    throw std::invalid_argument("AdaptiveEntropyPolicy: bad target rate");
  if (gain <= 0.0 || ema <= 0.0 || ema > 1.0)
    throw std::invalid_argument("AdaptiveEntropyPolicy: bad controller gains");
}

bool AdaptiveEntropyPolicy::take_exit(const dynn::TrainedExit& exit_record,
                                      std::size_t sample) const {
  if (sample >= exit_record.test_entropy.size())
    throw std::out_of_range("AdaptiveEntropyPolicy: sample index");
  return exit_record.test_entropy[sample] < threshold_;
}

void AdaptiveEntropyPolicy::on_sample_complete(bool exited_early) const {
  rate_ema_ = (1.0 - ema_) * rate_ema_ + ema_ * (exited_early ? 1.0 : 0.0);
  threshold_ += gain_ * (target_rate_ - rate_ema_);
  if (threshold_ < 0.0) threshold_ = 0.0;
  if (threshold_ > 1.0) threshold_ = 1.0;
}

bool ConfidencePolicy::take_exit(const dynn::TrainedExit& exit_record,
                                 std::size_t sample) const {
  if (sample >= exit_record.test_max_prob.size())
    throw std::out_of_range("ConfidencePolicy: sample index");
  return exit_record.test_max_prob[sample] > threshold_;
}

}  // namespace hadas::runtime
