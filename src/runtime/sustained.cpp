#include "runtime/sustained.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/deployment.hpp"

namespace hadas::runtime {

SustainedDeployment::SustainedDeployment(const dynn::ExitBank& bank,
                                         const dynn::MultiExitCostTable& costs,
                                         hw::ThermalConfig thermal)
    : bank_(bank), costs_(costs), thermal_(thermal) {
  if (bank_.total_layers() != costs_.network().num_mbconv_layers())
    throw std::invalid_argument("SustainedDeployment: bank/cost mismatch");
}

SustainedReport SustainedDeployment::run(const dynn::ExitPlacement& placement,
                                         hw::DvfsSetting requested,
                                         const ExitPolicy& policy,
                                         const data::SampleStream& stream) const {
  const std::vector<std::size_t> exits = placement.positions();
  if (exits.empty())
    throw std::invalid_argument("SustainedDeployment: empty placement");

  hw::ThermalModel thermal(thermal_);
  SustainedReport report;
  std::size_t correct = 0, throttled_samples = 0;
  report.peak_temperature_c = thermal.temperature_c();

  for (std::size_t sample : stream.indices()) {
    hw::DvfsSetting effective = requested;
    if (thermal.throttled()) {
      effective.core_idx =
          std::min(effective.core_idx, thermal_.throttled_core_idx);
      ++throttled_samples;
    }

    // Cascade execution at the effective setting.
    const CascadeDecision decision = walk_cascade(bank_, exits, policy, sample);
    const hw::HwMeasurement m =
        costs_.cascade_path(decision.visited, decision.exited, effective);
    report.total_time_s += m.latency_s;
    report.total_energy_j += m.energy_j;
    if (decision.exited) {
      correct +=
          bank_.exit_at(decision.visited.back()).test_correct[sample] ? 1 : 0;
    } else {
      correct += bank_.final_exit().test_correct[sample] ? 1 : 0;
    }
    ++report.samples;

    thermal.step(m.avg_power_w, m.latency_s);
    report.peak_temperature_c =
        std::max(report.peak_temperature_c, thermal.temperature_c());
  }

  report.accuracy =
      static_cast<double>(correct) / static_cast<double>(report.samples);
  report.throughput_sps =
      static_cast<double>(report.samples) / report.total_time_s;
  report.throttled_fraction = static_cast<double>(throttled_samples) /
                              static_cast<double>(report.samples);
  report.final_temperature_c = thermal.temperature_c();
  return report;
}

}  // namespace hadas::runtime
