#include "runtime/deployment.hpp"

#include <cmath>
#include <stdexcept>

namespace hadas::runtime {

CascadeDecision walk_cascade(const dynn::ExitBank& bank,
                             const std::vector<std::size_t>& exits,
                             const ExitPolicy& policy, std::size_t sample) {
  CascadeDecision decision;
  for (std::size_t layer : exits) {
    decision.visited.push_back(layer);
    if (policy.take_exit(bank.exit_at(layer), sample)) {
      decision.exited = true;
      break;
    }
  }
  return decision;
}

void finalize_deployment_report(DeploymentReport& report, double energy_sum,
                                double latency_sum, std::size_t correct,
                                const hw::HwMeasurement& static_baseline) {
  const double inv_n = 1.0 / static_cast<double>(report.samples);
  report.accuracy = static_cast<double>(correct) * inv_n;
  report.avg_energy_j = energy_sum * inv_n;
  report.avg_latency_s = latency_sum * inv_n;
  report.energy_gain = 1.0 - report.avg_energy_j / static_baseline.energy_j;
  report.latency_gain = 1.0 - report.avg_latency_s / static_baseline.latency_s;
}

DeploymentSimulator::DeploymentSimulator(const dynn::ExitBank& bank,
                                         const dynn::MultiExitCostTable& cost)
    : bank_(bank), cost_(cost) {
  if (bank_.total_layers() != cost_.network().num_mbconv_layers())
    throw std::invalid_argument("DeploymentSimulator: bank/cost mismatch");
}

DeploymentReport DeploymentSimulator::run(const dynn::ExitPlacement& placement,
                                          hw::DvfsSetting setting,
                                          const ExitPolicy& policy,
                                          const data::SampleStream& stream) const {
  const std::vector<std::size_t> exits = placement.positions();
  if (exits.empty())
    throw std::invalid_argument("DeploymentSimulator: empty placement");

  const hw::HwMeasurement static_baseline =
      cost_.full_network(hw::default_setting(cost_.evaluator().device()));

  DeploymentReport report;
  double energy = 0.0, latency = 0.0;
  std::size_t correct = 0;

  for (std::size_t sample : stream.indices()) {
    const CascadeDecision decision = walk_cascade(bank_, exits, policy, sample);
    const hw::HwMeasurement m =
        cost_.cascade_path(decision.visited, decision.exited, setting);
    energy += m.energy_j;
    latency += m.latency_s;

    if (decision.exited) {
      const std::size_t layer = decision.visited.back();
      correct += bank_.exit_at(layer).test_correct[sample] ? 1 : 0;
      ++report.exit_histogram[layer];
    } else {
      correct += bank_.final_exit().test_correct[sample] ? 1 : 0;
      ++report.exit_histogram[bank_.total_layers()];
    }
    ++report.samples;
    policy.on_sample_complete(decision.exited);
  }

  finalize_deployment_report(report, energy, latency, correct, static_baseline);
  return report;
}

DeploymentReport DeploymentSimulator::run_predictive(
    const dynn::ExitPlacement& placement, hw::DvfsSetting setting,
    const PredictiveExitController& controller,
    const data::SampleStream& stream) const {
  const std::vector<std::size_t> exits = placement.positions();
  if (exits.empty())
    throw std::invalid_argument("DeploymentSimulator: empty placement");
  if (controller.probe_layer() != exits.front())
    throw std::invalid_argument(
        "DeploymentSimulator: controller calibrated for another placement");

  const hw::HwMeasurement static_baseline =
      cost_.full_network(hw::default_setting(cost_.evaluator().device()));

  DeploymentReport report;
  double energy = 0.0, latency = 0.0;
  std::size_t correct = 0;

  for (std::size_t sample : stream.indices()) {
    const std::size_t predicted = controller.predict(sample);
    std::vector<std::size_t> visited = {controller.probe_layer()};
    bool exited;
    std::size_t resolved_at;
    if (predicted >= bank_.total_layers()) {
      exited = false;  // run the full backbone (probe branch already paid)
      resolved_at = bank_.total_layers();
    } else {
      if (predicted != controller.probe_layer()) visited.push_back(predicted);
      exited = true;
      resolved_at = predicted;
    }
    const hw::HwMeasurement m = cost_.cascade_path(visited, exited, setting);
    energy += m.energy_j;
    latency += m.latency_s;

    if (exited) {
      correct += bank_.exit_at(resolved_at).test_correct[sample] ? 1 : 0;
    } else {
      correct += bank_.final_exit().test_correct[sample] ? 1 : 0;
    }
    ++report.exit_histogram[resolved_at];
    ++report.samples;
  }

  finalize_deployment_report(report, energy, latency, correct, static_baseline);
  return report;
}

double DeploymentSimulator::calibrate_entropy_threshold(
    const dynn::ExitPlacement& placement, hw::DvfsSetting setting,
    const data::SampleStream& stream, double target_accuracy,
    std::size_t grid) const {
  if (grid < 2) throw std::invalid_argument("calibrate: grid too small");
  double best_meeting = -1.0, best_meeting_energy = 0.0;
  double closest = 0.5, closest_gap = 1e9;
  for (std::size_t i = 0; i < grid; ++i) {
    const double threshold =
        static_cast<double>(i + 1) / static_cast<double>(grid + 1);
    const EntropyPolicy policy(threshold);
    const DeploymentReport report = run(placement, setting, policy, stream);
    if (report.accuracy >= target_accuracy) {
      // Among thresholds meeting the target, prefer the lowest energy.
      if (best_meeting < 0.0 || report.avg_energy_j < best_meeting_energy) {
        best_meeting = threshold;
        best_meeting_energy = report.avg_energy_j;
      }
    }
    const double gap = std::fabs(report.accuracy - target_accuracy);
    if (gap < closest_gap) {
      closest_gap = gap;
      closest = threshold;
    }
  }
  return best_meeting >= 0.0 ? best_meeting : closest;
}

}  // namespace hadas::runtime
