#include "runtime/predictive_exit.hpp"

#include <algorithm>
#include <stdexcept>

namespace hadas::runtime {

PredictiveExitController::PredictiveExitController(
    const dynn::ExitBank& bank, const dynn::ExitPlacement& placement,
    double target_accuracy, std::size_t buckets)
    : bank_(bank) {
  const std::vector<std::size_t> exits = placement.positions();
  if (exits.empty())
    throw std::invalid_argument("PredictiveExitController: empty placement");
  if (buckets < 2)
    throw std::invalid_argument("PredictiveExitController: need >= 2 buckets");
  probe_layer_ = exits.front();

  const dynn::TrainedExit& probe = bank_.exit_at(probe_layer_);
  const std::size_t n = probe.val_entropy.size();
  if (n == 0) throw std::invalid_argument("PredictiveExitController: no val data");

  // Quantile bucket edges over the probe's validation entropies.
  std::vector<double> sorted = probe.val_entropy;
  std::sort(sorted.begin(), sorted.end());
  bucket_edges_.resize(buckets - 1);
  for (std::size_t b = 0; b + 1 < buckets; ++b)
    bucket_edges_[b] = sorted[(b + 1) * n / buckets];

  // Per bucket: earliest sampled exit meeting the accuracy target on the
  // bucket's validation samples; fall back to the backbone head.
  std::vector<std::vector<std::size_t>> members(buckets);
  for (std::size_t s = 0; s < n; ++s)
    members[bucket_of(probe.val_entropy[s])].push_back(s);

  decisions_.assign(buckets, bank_.total_layers());
  for (std::size_t b = 0; b < buckets; ++b) {
    if (members[b].empty()) {
      // No calibration data: be conservative, run the full backbone.
      continue;
    }
    for (std::size_t layer : exits) {
      const dynn::TrainedExit& exit_record = bank_.exit_at(layer);
      std::size_t correct = 0;
      for (std::size_t s : members[b]) correct += exit_record.val_correct[s] ? 1 : 0;
      const double accuracy = static_cast<double>(correct) /
                              static_cast<double>(members[b].size());
      if (accuracy >= target_accuracy) {
        decisions_[b] = layer;
        break;
      }
    }
  }
}

std::size_t PredictiveExitController::bucket_of(double entropy) const {
  std::size_t bucket = 0;
  while (bucket < bucket_edges_.size() && entropy >= bucket_edges_[bucket])
    ++bucket;
  return bucket;
}

std::size_t PredictiveExitController::predict(std::size_t sample) const {
  const dynn::TrainedExit& probe = bank_.exit_at(probe_layer_);
  if (sample >= probe.test_entropy.size())
    throw std::out_of_range("PredictiveExitController: sample index");
  return decisions_[bucket_of(probe.test_entropy[sample])];
}

}  // namespace hadas::runtime
