#pragma once

#include <optional>

#include "dynn/multi_exit_cost.hpp"
#include "hw/thermal.hpp"

namespace hadas::runtime {

/// Offline DVFS governor utilities: given a deployed dynamic model's cost
/// table, select operating points under latency constraints. Complements
/// the search (which co-optimizes f for energy): at runtime, applications
/// often carry a deadline, and the governor answers "what is the
/// minimum-energy frequency pair that still meets it?" by exhaustively
/// scanning the (small) F space — exactly what a lookup-table governor on a
/// Jetson would do.
class DvfsGovernor {
 public:
  /// Throws std::invalid_argument if either DVFS table of the device behind
  /// `costs` is empty — a governor over an empty F space has no answer to
  /// any query, so it refuses to construct rather than fail per call.
  explicit DvfsGovernor(const dynn::MultiExitCostTable& costs);

  /// Minimum-energy setting whose FULL-network latency meets the deadline;
  /// nullopt if no setting does.
  std::optional<hw::DvfsSetting> min_energy_full(double deadline_s) const;

  /// Minimum-energy setting whose exit-at-`layer` path meets the deadline.
  std::optional<hw::DvfsSetting> min_energy_exit(std::size_t layer,
                                                 double deadline_s) const;

  /// The unconstrained energy-optimal setting for the full network.
  hw::DvfsSetting energy_optimal_full() const;

  /// Fastest full-network setting whose sustained (steady-state) junction
  /// temperature stays below the thermal config's throttle point — the
  /// highest operating point that never throttles on an endless stream.
  /// nullopt if even the slowest setting overheats.
  std::optional<hw::DvfsSetting> fastest_sustainable_full(
      const hw::ThermalConfig& thermal) const;

  /// The latency-optimal (max performance) setting. For a monotone latency
  /// model this is the max-frequency pair, but it is computed, not assumed.
  hw::DvfsSetting latency_optimal_full() const;

  /// The setting `steps` core-frequency bins below `from`, clamped at the
  /// table floor (core_idx 0); the EMC index is untouched. Used by the
  /// serving layer's degraded modes to shed power under sustained faults or
  /// thermal pressure. Throws if `from` is outside the device's tables.
  hw::DvfsSetting step_down(hw::DvfsSetting from, std::size_t steps) const;

 private:
  template <typename MeasureFn>
  std::optional<hw::DvfsSetting> scan(MeasureFn&& measure, double deadline_s) const;

  const dynn::MultiExitCostTable& costs_;
};

}  // namespace hadas::runtime
