#pragma once

#include <map>
#include <vector>

#include "data/sample_stream.hpp"
#include "dynn/exit_bank.hpp"
#include "dynn/exit_placement.hpp"
#include "dynn/multi_exit_cost.hpp"
#include "runtime/controller.hpp"
#include "runtime/predictive_exit.hpp"

namespace hadas::runtime {

/// One sample's cascade walk under a policy: the exit branches it visited
/// (in placement order) and whether it stopped at the last one. Shared by
/// the deployment, sustained and serving simulators so every simulator
/// charges exactly the same branch sequence for a given (policy, sample).
struct CascadeDecision {
  std::vector<std::size_t> visited;
  bool exited = false;
};

/// Walk the cascade: visit `exits` (ascending) until the policy takes one.
CascadeDecision walk_cascade(const dynn::ExitBank& bank,
                             const std::vector<std::size_t>& exits,
                             const ExitPolicy& policy, std::size_t sample);

/// Outcome of deploying one dynamic design on a sample stream.
struct DeploymentReport {
  std::size_t samples = 0;
  double accuracy = 0.0;             ///< test accuracy of the deployed DyNN
  double avg_energy_j = 0.0;         ///< per-sample, cascade costs included
  double avg_latency_s = 0.0;
  double energy_gain = 0.0;          ///< vs. the static backbone at default DVFS
  double latency_gain = 0.0;
  /// Count of samples resolved at each exit layer; key total_layers means
  /// "ran the full backbone".
  std::map<std::size_t, std::size_t> exit_histogram;
};

/// Fill the derived fields (averages, gains, accuracy) of a report from the
/// accumulated per-sample sums. All simulators — deployment, sustained and
/// the serving supervisor — share this exact arithmetic, which is what makes
/// their reports bit-comparable (`report.samples` must already be set and
/// non-zero).
void finalize_deployment_report(DeploymentReport& report, double energy_sum,
                                double latency_sum, std::size_t correct,
                                const hw::HwMeasurement& static_baseline);

/// Simulates deploying a searched (b, x, f) design with a runtime controller
/// over a test-split sample stream. Unlike the design-stage ideal-mapping
/// evaluation, samples here *cascade*: they pay for every exit branch they
/// evaluate before stopping, which is the real cost of entropy/confidence
/// controllers.
class DeploymentSimulator {
 public:
  DeploymentSimulator(const dynn::ExitBank& bank,
                      const dynn::MultiExitCostTable& cost);

  /// Run the stream through the design under the given policy and DVFS.
  DeploymentReport run(const dynn::ExitPlacement& placement,
                       hw::DvfsSetting setting, const ExitPolicy& policy,
                       const data::SampleStream& stream) const;

  /// Run the stream under a predictive-exit controller: every sample pays
  /// for the probe exit, then jumps directly to the predicted exit (or the
  /// backbone head), skipping the intermediate branches a cascading
  /// controller would evaluate.
  DeploymentReport run_predictive(const dynn::ExitPlacement& placement,
                                  hw::DvfsSetting setting,
                                  const PredictiveExitController& controller,
                                  const data::SampleStream& stream) const;

  /// Sweep a threshold grid and return the entropy threshold whose deployed
  /// accuracy is closest to (but not below, when possible) `target_accuracy`.
  double calibrate_entropy_threshold(const dynn::ExitPlacement& placement,
                                     hw::DvfsSetting setting,
                                     const data::SampleStream& stream,
                                     double target_accuracy,
                                     std::size_t grid = 40) const;

 private:
  const dynn::ExitBank& bank_;
  const dynn::MultiExitCostTable& cost_;
};

}  // namespace hadas::runtime
