#pragma once

#include <cstddef>
#include <vector>

#include "hw/fleet/registry.hpp"
#include "runtime/serve/supervisor.hpp"

namespace hadas::runtime::serve {

/// A registry-wide failover plan: one ServeLane per serviceable fleet
/// device, in preference order. The supervisor's existing lane-selection
/// rule ("first alive lane whose breaker admits") then fails over across
/// the whole fleet instead of a fixed config-time list.
struct FleetServePlan {
  std::vector<ServeLane> lanes;
  /// Parallel to `lanes`: which fleet device backs each lane.
  std::vector<hw::fleet::Bdf> bdfs;
  /// Parallel to `lanes`: registry group id of each lane's device.
  std::vector<std::size_t> groups;
};

/// Build the fleet failover plan. Preference order: serviceable members of
/// `primary_group` first (BDF order — same hardware model, no quality
/// degradation), then the remaining groups in group-id order (cross-model
/// degradation as a last resort). `tables` and `settings` are indexed by
/// registry group id (registry.group_count() entries); a group with a null
/// table has no deployed cost model and contributes no lanes.
///
/// Per-lane fault models derive from `fault_template` with the seed xor'd
/// by a per-device stream (bdf_key through SplitMix64), so every device
/// fails independently but deterministically.
///
/// Throws std::invalid_argument if the plan would be empty or the vectors
/// are mis-sized.
FleetServePlan plan_fleet_lanes(
    const hw::fleet::FleetRegistry& registry, std::size_t primary_group,
    const std::vector<const dynn::MultiExitCostTable*>& tables,
    const std::vector<hw::DvfsSetting>& settings,
    const hw::FaultConfig& fault_template);

/// Fold a finished ServeReport back into the registry's lifecycle state:
/// a lane that dropped out kills its device, an open breaker quarantines
/// it, a half-open breaker degrades it, and each lane's final junction
/// temperature is recorded (tripping or healing the thermal state).
/// Returns the number of lifecycle transitions applied. The report must
/// come from a supervisor run over `plan.lanes`.
std::size_t apply_serve_report(hw::fleet::FleetRegistry& registry,
                               const FleetServePlan& plan,
                               const ServeReport& report);

}  // namespace hadas::runtime::serve
