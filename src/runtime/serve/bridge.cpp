#include "runtime/serve/bridge.hpp"

#include <stdexcept>

namespace hadas::runtime::serve {

std::string SupervisorBridge::run_trace(
    const std::vector<RemoteRequest>& requests) const {
  std::vector<ServeRequest> trace;
  trace.reserve(requests.size());
  double last_arrival = 0.0;
  for (const RemoteRequest& remote : requests) {
    if (remote.arrival_s < last_arrival)
      throw std::invalid_argument(
          "SupervisorBridge: request arrivals must be non-decreasing");
    last_arrival = remote.arrival_s;
    ServeRequest request;
    request.id = static_cast<std::size_t>(remote.id);
    request.arrival_s = remote.arrival_s;
    request.sample = stream_.indices()[static_cast<std::size_t>(
        remote.sample_pos % stream_.size())];
    trace.push_back(request);
  }
  const ServeReport report = supervisor_.run(placement_, ladder_, trace);
  return report.to_json().dump(2) + "\n";
}

}  // namespace hadas::runtime::serve
