#include "runtime/serve/fleet_failover.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace hadas::runtime::serve {

namespace {

void append_group_lanes(FleetServePlan& plan,
                        const hw::fleet::FleetRegistry& registry,
                        std::size_t group,
                        const dynn::MultiExitCostTable* table,
                        hw::DvfsSetting setting,
                        const hw::FaultConfig& fault_template) {
  if (!table) return;
  for (const hw::fleet::Bdf& bdf : registry.group_members(group)) {
    if (!hw::fleet::lifecycle_serviceable(registry.examine(bdf).state)) continue;
    ServeLane lane;
    lane.costs = table;
    lane.requested = setting;
    lane.faults = fault_template;
    lane.faults.seed ^=
        hadas::util::SplitMix64(hw::fleet::bdf_key(bdf)).next();
    plan.lanes.push_back(lane);
    plan.bdfs.push_back(bdf);
    plan.groups.push_back(group);
  }
}

}  // namespace

FleetServePlan plan_fleet_lanes(
    const hw::fleet::FleetRegistry& registry, std::size_t primary_group,
    const std::vector<const dynn::MultiExitCostTable*>& tables,
    const std::vector<hw::DvfsSetting>& settings,
    const hw::FaultConfig& fault_template) {
  const std::size_t groups = registry.group_count();
  if (primary_group >= groups)
    throw std::invalid_argument("plan_fleet_lanes: primary group out of range");
  if (tables.size() != groups || settings.size() != groups)
    throw std::invalid_argument(
        "plan_fleet_lanes: tables/settings must have one entry per registry "
        "group");

  FleetServePlan plan;
  append_group_lanes(plan, registry, primary_group, tables[primary_group],
                     settings[primary_group], fault_template);
  for (std::size_t group = 0; group < groups; ++group) {
    if (group == primary_group) continue;
    append_group_lanes(plan, registry, group, tables[group], settings[group],
                       fault_template);
  }
  if (plan.lanes.empty())
    throw std::invalid_argument(
        "plan_fleet_lanes: no serviceable device carries a deployed table");
  return plan;
}

std::size_t apply_serve_report(hw::fleet::FleetRegistry& registry,
                               const FleetServePlan& plan,
                               const ServeReport& report) {
  if (report.lanes.size() != plan.lanes.size())
    throw std::invalid_argument(
        "apply_serve_report: report lane count does not match the plan");
  std::size_t applied = 0;
  for (std::size_t i = 0; i < report.lanes.size(); ++i) {
    const LaneReport& lane = report.lanes[i];
    const hw::fleet::Bdf& bdf = plan.bdfs[i];
    if (!registry.contains(bdf)) continue;  // hot-removed mid-serve
    const hw::fleet::Lifecycle before = registry.examine(bdf).state;
    registry.record_thermal(bdf, lane.final_temperature_c);
    if (!lane.alive) {
      if (registry.kill_device(bdf)) ++applied;
    } else if (lane.breaker == hw::BreakerState::kOpen) {
      if (registry.quarantine_device(bdf)) ++applied;
    } else if (lane.breaker == hw::BreakerState::kHalfOpen) {
      if (registry.degrade_device(bdf)) ++applied;
    }
    if (registry.contains(bdf) && registry.examine(bdf).state != before &&
        lane.alive && lane.breaker == hw::BreakerState::kClosed)
      ++applied;  // thermal-only transition
  }
  return applied;
}

}  // namespace hadas::runtime::serve
