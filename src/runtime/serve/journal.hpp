#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "hw/faults.hpp"
#include "hw/robust_eval.hpp"
#include "hw/thermal.hpp"
#include "runtime/serve/slo.hpp"
#include "util/durable/checkpoint_chain.hpp"
#include "util/json.hpp"

namespace hadas::runtime::serve {

/// Durable-envelope format tag of serve-journal snapshots.
inline constexpr const char* kServeJournalFormatTag = "hadas-serve-journal-v1";

/// Periodic durable snapshot of the serving run loop. When `path` is
/// non-empty, ServeSupervisor::run writes its complete mutable state (report
/// counters, SLO samples, queue, mode controller, per-lane health / thermal
/// / fault-clock state) through a rotating CheckpointChain every `every`
/// requests, and on startup resumes from the newest valid snapshot — a
/// killed serve run, restarted with the same configuration and trace, emits
/// a byte-identical ServeReport.
struct ServeJournalConfig {
  std::string path;        ///< empty = journaling off
  std::size_t every = 64;  ///< snapshot cadence in trace entries (>= 1)
  std::size_t keep = 3;    ///< rotated snapshots retained (>= 1)
  /// Test hook simulating an in-process kill: when non-zero, run() throws
  /// ServeInterruptedError immediately before serving trace entry with this
  /// index (nothing beyond the regular journal cadence is written first —
  /// exactly what a SIGKILL leaves behind). Clear it to resume.
  std::size_t stop_after_requests = 0;
  /// Sink for journal-recovery warnings (corrupt snapshot skipped).
  /// Empty = stderr.
  std::function<void(const std::string&)> warn;
};

/// Thrown by the `stop_after_requests` test hook; never by a real serve run.
class ServeInterruptedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Mutable per-lane state captured at a request boundary.
struct LaneSnapshot {
  bool alive = true;
  std::size_t served = 0;
  double clock_s = 0.0;
  double last_event_s = 0.0;
  double peak_temperature_c = 0.0;
  hw::DeviceHealth::State health;
  hw::ThermalModel::State thermal;
  hw::FaultInjector::State injector;
};

/// Everything ServeSupervisor::run mutates, captured at the boundary before
/// trace entry `next_index`. Restoring this and re-running entries
/// next_index..end reproduces the uninterrupted run's report bit for bit
/// (all doubles round-trip exactly through %.17g JSON).
struct ServeJournalSnapshot {
  /// Fingerprint of (placement, ladder, trace shape, serve config, lanes);
  /// resume refuses a snapshot whose fingerprint mismatches the run's.
  std::string fingerprint;
  std::size_t next_index = 0;

  // --- report counters accumulated so far ---
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::size_t shed_no_device = 0;
  std::size_t max_queue_depth = 0;
  std::size_t watchdog_fallbacks = 0;
  std::size_t transient_faults = 0;
  std::size_t nan_faults = 0;
  std::size_t overruns = 0;
  std::size_t failovers = 0;
  std::size_t devices_lost = 0;
  std::size_t degraded_entries = 0;
  std::size_t critical_entries = 0;
  std::size_t requests_degraded = 0;
  double makespan_s = 0.0;
  std::size_t deployment_samples = 0;
  std::map<std::size_t, std::size_t> exit_histogram;

  // --- deployment accumulators ---
  std::size_t correct = 0;
  double energy_sum_j = 0.0;
  double latency_sum_s = 0.0;
  SloTracker::State slo;

  // --- degraded-mode controller ---
  int mode = 0;
  double incident_ema = 0.0;
  std::size_t dwell = 0;

  // --- admission queue ---
  std::vector<double> outstanding;  ///< completion times, FIFO order
  double busy_until_s = 0.0;

  std::vector<LaneSnapshot> lanes;
};

util::Json to_json(const ServeJournalSnapshot& snapshot);
ServeJournalSnapshot journal_snapshot_from_json(const util::Json& json);

/// Rotate `chain` and durably write `snapshot` as the newest slot.
void save_journal(const hadas::util::durable::CheckpointChain& chain,
                  const ServeJournalSnapshot& snapshot);

/// A journal snapshot recovered from a rotating chain.
struct LoadedJournal {
  ServeJournalSnapshot snapshot;
  std::string file;
  std::size_t skipped = 0;
};

/// Newest chain slot that passes envelope + parse validation; rejected
/// newer slots are reported through `warn`. Returns nullopt when no slot
/// exists; throws util::durable::CheckpointCorruptError when every slot is
/// corrupt.
std::optional<LoadedJournal> load_journal(
    const hadas::util::durable::CheckpointChain& chain,
    const std::function<void(const std::string& warning)>& warn = {});

}  // namespace hadas::runtime::serve
