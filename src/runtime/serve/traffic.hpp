#pragma once

#include <cstdint>
#include <vector>

#include "data/sample_stream.hpp"

namespace hadas::runtime::serve {

/// One inference request arriving at the serving supervisor.
struct ServeRequest {
  std::size_t id = 0;       ///< position in the trace; the fault-stream key
  double arrival_s = 0.0;   ///< arrival time on the simulated clock
  std::size_t sample = 0;   ///< test-split sample index to classify
};

/// Synthetic traffic shape replayed by `hadas serve` and the serving bench.
struct TrafficConfig {
  std::size_t requests = 1000;
  /// Mean Poisson arrival rate. <= 0 means back-to-back (every request
  /// arrives at t = 0 and only ever queues behind its predecessors).
  double arrival_rate_hz = 100.0;
  /// Seed of the arrival process (independent of the sample stream's).
  std::uint64_t seed = 0x5E21;
};

/// Deterministic Poisson trace over a sample stream: request i carries the
/// stream's i-th sample (wrapping around if the trace is longer than the
/// stream) and arrivals are spaced by exponential inter-arrival draws from
/// `config.seed`. Equal (stream, config) always produce the same trace.
std::vector<ServeRequest> poisson_trace(const data::SampleStream& stream,
                                        const TrafficConfig& config);

}  // namespace hadas::runtime::serve
