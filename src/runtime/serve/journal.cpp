#include "runtime/serve/journal.hpp"

#include <cmath>

namespace hadas::runtime::serve {

using hadas::util::Json;
using hadas::util::durable::CheckpointChain;
using hadas::util::durable::CheckpointCorruptError;
using hadas::util::durable::CorruptStage;

namespace {

Json to_json(const hw::HealthReport& report) {
  Json json;
  json["state"] = Json(static_cast<int>(report.state));
  json["dropped_out"] = Json(report.dropped_out);
  json["measurements"] = Json(report.measurements);
  json["attempts"] = Json(report.attempts);
  json["retries"] = Json(report.retries);
  json["transient_failures"] = Json(report.transient_failures);
  json["quarantined"] = Json(report.quarantined);
  json["outliers_rejected"] = Json(report.outliers_rejected);
  json["failed_measurements"] = Json(report.failed_measurements);
  json["breaker_trips"] = Json(report.breaker_trips);
  json["backoff_s"] = Json(report.backoff_s);
  json["sim_time_s"] = Json(report.sim_time_s);
  return json;
}

hw::HealthReport health_report_from_json(const Json& json) {
  hw::HealthReport report;
  const int state = static_cast<int>(json.at("state").as_int());
  if (state < 0 || state > 2)
    throw std::invalid_argument("journal: breaker state out of range");
  report.state = static_cast<hw::BreakerState>(state);
  report.dropped_out = json.at("dropped_out").as_bool();
  report.measurements = json.at("measurements").as_index();
  report.attempts = json.at("attempts").as_index();
  report.retries = json.at("retries").as_index();
  report.transient_failures = json.at("transient_failures").as_index();
  report.quarantined = json.at("quarantined").as_index();
  report.outliers_rejected = json.at("outliers_rejected").as_index();
  report.failed_measurements = json.at("failed_measurements").as_index();
  report.breaker_trips = json.at("breaker_trips").as_index();
  report.backoff_s = json.at("backoff_s").as_number();
  report.sim_time_s = json.at("sim_time_s").as_number();
  return report;
}

Json to_json(const LaneSnapshot& lane) {
  Json json;
  json["alive"] = Json(lane.alive);
  json["served"] = Json(lane.served);
  json["clock_s"] = Json(lane.clock_s);
  json["last_event_s"] = Json(lane.last_event_s);
  json["peak_temperature_c"] = Json(lane.peak_temperature_c);
  Json health;
  health["report"] = to_json(lane.health.report);
  health["consecutive_failures"] = Json(lane.health.consecutive_failures);
  health["half_open_successes"] = Json(lane.health.half_open_successes);
  health["open_until_s"] = Json(lane.health.open_until_s);
  json["health"] = std::move(health);
  Json thermal;
  thermal["temperature_c"] = Json(lane.thermal.temperature_c);
  thermal["throttled"] = Json(lane.thermal.throttled);
  thermal["throttle_events"] = Json(lane.thermal.throttle_events);
  json["thermal"] = std::move(thermal);
  Json injector;
  injector["attempts"] = Json(lane.injector.attempts);
  injector["dropped_out"] = Json(lane.injector.dropped_out);
  json["injector"] = std::move(injector);
  return json;
}

LaneSnapshot lane_from_json(const Json& json) {
  LaneSnapshot lane;
  lane.alive = json.at("alive").as_bool();
  lane.served = json.at("served").as_index();
  lane.clock_s = json.at("clock_s").as_number();
  lane.last_event_s = json.at("last_event_s").as_number();
  lane.peak_temperature_c = json.at("peak_temperature_c").as_number();
  const Json& health = json.at("health");
  lane.health.report = health_report_from_json(health.at("report"));
  lane.health.consecutive_failures =
      health.at("consecutive_failures").as_index();
  lane.health.half_open_successes =
      health.at("half_open_successes").as_index();
  lane.health.open_until_s = health.at("open_until_s").as_number();
  const Json& thermal = json.at("thermal");
  lane.thermal.temperature_c = thermal.at("temperature_c").as_number();
  lane.thermal.throttled = thermal.at("throttled").as_bool();
  lane.thermal.throttle_events = thermal.at("throttle_events").as_index();
  const Json& injector = json.at("injector");
  lane.injector.attempts = injector.at("attempts").as_index();
  lane.injector.dropped_out = injector.at("dropped_out").as_bool();
  return lane;
}

}  // namespace

Json to_json(const ServeJournalSnapshot& snapshot) {
  Json json;
  json["format"] = Json(std::string(kServeJournalFormatTag));
  json["fingerprint"] = Json(snapshot.fingerprint);
  json["next_index"] = Json(snapshot.next_index);
  json["offered"] = Json(snapshot.offered);
  json["admitted"] = Json(snapshot.admitted);
  json["shed"] = Json(snapshot.shed);
  json["shed_no_device"] = Json(snapshot.shed_no_device);
  json["max_queue_depth"] = Json(snapshot.max_queue_depth);
  json["watchdog_fallbacks"] = Json(snapshot.watchdog_fallbacks);
  json["transient_faults"] = Json(snapshot.transient_faults);
  json["nan_faults"] = Json(snapshot.nan_faults);
  json["overruns"] = Json(snapshot.overruns);
  json["failovers"] = Json(snapshot.failovers);
  json["devices_lost"] = Json(snapshot.devices_lost);
  json["degraded_entries"] = Json(snapshot.degraded_entries);
  json["critical_entries"] = Json(snapshot.critical_entries);
  json["requests_degraded"] = Json(snapshot.requests_degraded);
  json["makespan_s"] = Json(snapshot.makespan_s);
  json["deployment_samples"] = Json(snapshot.deployment_samples);
  Json::Array histogram;
  for (const auto& [layer, count] : snapshot.exit_histogram) {
    Json bin;
    bin["layer"] = Json(layer);
    bin["count"] = Json(count);
    histogram.push_back(std::move(bin));
  }
  json["exit_histogram"] = Json(std::move(histogram));
  json["correct"] = Json(snapshot.correct);
  json["energy_sum_j"] = Json(snapshot.energy_sum_j);
  json["latency_sum_s"] = Json(snapshot.latency_sum_s);
  Json slo;
  Json::Array latencies;
  for (double v : snapshot.slo.latencies) latencies.push_back(Json(v));
  slo["latencies"] = Json(std::move(latencies));
  slo["wait_sum_s"] = Json(snapshot.slo.wait_sum_s);
  slo["misses"] = Json(snapshot.slo.misses);
  json["slo"] = std::move(slo);
  json["mode"] = Json(snapshot.mode);
  json["incident_ema"] = Json(snapshot.incident_ema);
  json["dwell"] = Json(snapshot.dwell);
  Json::Array outstanding;
  for (double v : snapshot.outstanding) outstanding.push_back(Json(v));
  json["outstanding"] = Json(std::move(outstanding));
  json["busy_until_s"] = Json(snapshot.busy_until_s);
  Json::Array lanes;
  for (const LaneSnapshot& lane : snapshot.lanes)
    lanes.push_back(to_json(lane));
  json["lanes"] = Json(std::move(lanes));
  return json;
}

ServeJournalSnapshot journal_snapshot_from_json(const Json& json) {
  if (!json.contains("format") ||
      json.at("format").as_string() != kServeJournalFormatTag)
    throw std::invalid_argument("journal_snapshot_from_json: unknown format");
  ServeJournalSnapshot snapshot;
  snapshot.fingerprint = json.at("fingerprint").as_string();
  snapshot.next_index = json.at("next_index").as_index();
  snapshot.offered = json.at("offered").as_index();
  snapshot.admitted = json.at("admitted").as_index();
  snapshot.shed = json.at("shed").as_index();
  snapshot.shed_no_device = json.at("shed_no_device").as_index();
  snapshot.max_queue_depth = json.at("max_queue_depth").as_index();
  snapshot.watchdog_fallbacks = json.at("watchdog_fallbacks").as_index();
  snapshot.transient_faults = json.at("transient_faults").as_index();
  snapshot.nan_faults = json.at("nan_faults").as_index();
  snapshot.overruns = json.at("overruns").as_index();
  snapshot.failovers = json.at("failovers").as_index();
  snapshot.devices_lost = json.at("devices_lost").as_index();
  snapshot.degraded_entries = json.at("degraded_entries").as_index();
  snapshot.critical_entries = json.at("critical_entries").as_index();
  snapshot.requests_degraded = json.at("requests_degraded").as_index();
  snapshot.makespan_s = json.at("makespan_s").as_number();
  snapshot.deployment_samples = json.at("deployment_samples").as_index();
  for (const Json& bin : json.at("exit_histogram").as_array())
    snapshot.exit_histogram[bin.at("layer").as_index()] =
        bin.at("count").as_index();
  snapshot.correct = json.at("correct").as_index();
  snapshot.energy_sum_j = json.at("energy_sum_j").as_number();
  snapshot.latency_sum_s = json.at("latency_sum_s").as_number();
  const Json& slo = json.at("slo");
  for (const Json& v : slo.at("latencies").as_array())
    snapshot.slo.latencies.push_back(v.as_number());
  snapshot.slo.wait_sum_s = slo.at("wait_sum_s").as_number();
  snapshot.slo.misses = slo.at("misses").as_index();
  snapshot.mode = static_cast<int>(json.at("mode").as_int());
  if (snapshot.mode < 0 || snapshot.mode > 2)
    throw std::invalid_argument("journal: serve mode out of range");
  snapshot.incident_ema = json.at("incident_ema").as_number();
  snapshot.dwell = json.at("dwell").as_index();
  for (const Json& v : json.at("outstanding").as_array())
    snapshot.outstanding.push_back(v.as_number());
  snapshot.busy_until_s = json.at("busy_until_s").as_number();
  for (const Json& lane : json.at("lanes").as_array())
    snapshot.lanes.push_back(lane_from_json(lane));
  // Invariants: every accumulated double must still be finite.
  for (double v :
       {snapshot.makespan_s, snapshot.energy_sum_j, snapshot.latency_sum_s,
        snapshot.incident_ema, snapshot.busy_until_s})
    if (!std::isfinite(v))
      throw CheckpointCorruptError("", 0, CorruptStage::kInvariant,
                                   "journal accumulator is not finite");
  return snapshot;
}

void save_journal(const CheckpointChain& chain,
                  const ServeJournalSnapshot& snapshot) {
  chain.save(kServeJournalFormatTag, to_json(snapshot).dump(2) + "\n");
}

std::optional<LoadedJournal> load_journal(
    const CheckpointChain& chain,
    const std::function<void(const std::string& warning)>& warn) {
  std::optional<ServeJournalSnapshot> parsed;
  const auto loaded = chain.load_newest_valid(
      kServeJournalFormatTag,
      [&parsed](const std::string& payload) {
        parsed.reset();
        try {
          parsed = journal_snapshot_from_json(Json::parse(payload));
        } catch (const CheckpointCorruptError&) {
          throw;
        } catch (const std::exception& e) {
          throw CheckpointCorruptError("", 0, CorruptStage::kParse, e.what());
        }
      },
      warn);
  if (!loaded) return std::nullopt;
  return LoadedJournal{std::move(*parsed), loaded->file, loaded->skipped};
}

}  // namespace hadas::runtime::serve
