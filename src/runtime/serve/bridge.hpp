#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/serve/supervisor.hpp"

namespace hadas::runtime::serve {

/// A request as it crosses the wire: the client knows trace positions, not
/// sample indices — `sample_pos` is mapped through the server's sample
/// stream (`indices()[pos % size]`), which is exactly what poisson_trace
/// does locally, so a networked trace and an in-process trace resolve to
/// identical ServeRequests.
struct RemoteRequest {
  std::uint64_t id = 0;
  double arrival_s = 0.0;
  std::uint64_t sample_pos = 0;
};

/// What the net layer needs from a serving stack — deliberately tiny so
/// src/net never sees supervisor internals and tests can substitute a
/// scripted fake. One service instance is shared by every client session of
/// a daemon; run_trace is const and stateless across calls.
class ServeService {
 public:
  virtual ~ServeService() = default;

  /// Size of the test-split sample stream (the modulus for sample_pos).
  virtual std::size_t sample_count() const = 0;

  /// Canonical fingerprint of the serving configuration. Sent in WELCOME;
  /// a resuming client refuses a server whose fingerprint changed, because
  /// its half-accumulated report would silently mix two configurations.
  virtual const std::string& fingerprint() const = 0;

  /// Run the full trace through the supervisor and return the ServeReport
  /// rendered exactly as `hadas serve` writes it (pretty JSON + newline),
  /// so a byte compare against an uninterrupted local run is meaningful.
  virtual std::string run_trace(
      const std::vector<RemoteRequest>& requests) const = 0;
};

/// The production ServeService: maps RemoteRequests onto the sample stream
/// and hands them to a ServeSupervisor. All referenced objects must outlive
/// the bridge.
class SupervisorBridge : public ServeService {
 public:
  SupervisorBridge(const ServeSupervisor& supervisor,
                   const dynn::ExitPlacement& placement,
                   std::vector<const ExitPolicy*> ladder,
                   const data::SampleStream& stream, std::string fingerprint)
      : supervisor_(supervisor),
        placement_(placement),
        ladder_(std::move(ladder)),
        stream_(stream),
        fingerprint_(std::move(fingerprint)) {}

  std::size_t sample_count() const override { return stream_.size(); }
  const std::string& fingerprint() const override { return fingerprint_; }
  std::string run_trace(
      const std::vector<RemoteRequest>& requests) const override;

 private:
  const ServeSupervisor& supervisor_;
  const dynn::ExitPlacement& placement_;
  std::vector<const ExitPolicy*> ladder_;
  const data::SampleStream& stream_;
  std::string fingerprint_;
};

}  // namespace hadas::runtime::serve
