#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dynn/exit_bank.hpp"
#include "dynn/exit_placement.hpp"
#include "dynn/multi_exit_cost.hpp"
#include "exec/dispatcher.hpp"
#include "hw/faults.hpp"
#include "hw/robust_eval.hpp"
#include "hw/thermal.hpp"
#include "runtime/controller.hpp"
#include "runtime/deployment.hpp"
#include "runtime/governor.hpp"
#include "runtime/serve/journal.hpp"
#include "runtime/serve/slo.hpp"
#include "runtime/serve/traffic.hpp"

namespace hadas::runtime::serve {

/// Bounded admission queue. Capacity counts outstanding requests (the one
/// being served plus everything waiting); an arrival finding the queue full
/// is shed instead of growing an unbounded backlog.
struct AdmissionConfig {
  std::size_t queue_capacity = 0;  ///< 0 = unbounded (never sheds)
};

/// Per-request latency objective. End-to-end latency (queueing + service)
/// above the deadline counts as an SLO miss; the request is still answered.
struct SloConfig {
  double deadline_s = 0.0;  ///< 0 = no deadline tracking
};

/// Overrun/stuck-inference detection. An inference whose (fault-injected)
/// latency exceeds `overrun_factor` times the clean expectation is killed at
/// the budget and answered from the earliest viable exit. Crashed (transient
/// fault) and garbage (non-finite) inferences always fall back, watchdog or
/// not — a serving layer cannot re-run a missed deadline.
struct WatchdogConfig {
  double overrun_factor = 0.0;  ///< 0 = overrun detection off
};

/// Degraded-mode controller with hysteresis. Tracks an incident EMA
/// (watchdog fallbacks, injected faults, thermal throttling) and walks the
/// mode ladder normal -> degraded -> critical when it rises; recovery
/// requires the EMA back under `exit_rate` AND `min_dwell` requests at the
/// current mode, so a borderline device cannot flap between modes. Each
/// level above normal steps DVFS down (via DvfsGovernor::step_down) and
/// serves with the next policy of the degradation ladder (cheaper exits).
struct DegradedConfig {
  bool enabled = false;
  double enter_rate = 0.25;     ///< EMA above this: normal -> degraded
  double critical_rate = 0.50;  ///< EMA above this: degraded -> critical
  double exit_rate = 0.10;      ///< EMA below this allows stepping back down
  double ema_alpha = 0.05;      ///< incident EMA smoothing
  std::size_t min_dwell = 32;   ///< requests before a mode may step down
  std::size_t dvfs_steps = 2;   ///< core-frequency bins shed per mode level
};

/// One serving lane: a device (through its multi-exit cost table), the DVFS
/// point requested for it, and its fault model. Lane 0 is the primary;
/// higher lanes are failover replicas in priority order. The cost table must
/// NOT carry a search-time robust wrapper (set_robust): the supervisor owns
/// fault injection at serve time.
struct ServeLane {
  const dynn::MultiExitCostTable* costs = nullptr;
  hw::DvfsSetting requested;
  hw::FaultConfig faults;  ///< per-lane; keyed by the request id
};

/// Everything the serving supervisor needs beyond the lanes.
struct ServeConfig {
  AdmissionConfig admission;
  SloConfig slo;
  WatchdogConfig watchdog;
  DegradedConfig degraded;
  /// Per-lane circuit breaker (opens after consecutive watchdog fallbacks;
  /// an open lane leaves the rotation until its cooldown elapses on the
  /// simulated clock).
  hw::BreakerConfig breaker;
  /// Thermal dynamics: each lane heats while serving and cools while idle;
  /// a throttled lane is capped at the thermal config's throttled core
  /// index, and throttle events feed the degraded-mode controller.
  bool thermal_enabled = false;
  hw::ThermalConfig thermal;
  /// Thread pool for the cascade-decision precompute. Results are
  /// bit-identical at any thread count.
  exec::ExecConfig exec;
  /// Periodic durable state snapshot + resume; see ServeJournalConfig. A
  /// serve run killed at any instruction and restarted with the same
  /// configuration emits a byte-identical ServeReport.
  ServeJournalConfig journal;
};

/// Deterministic, simulated-clock serving supervisor over the deployment
/// stack: bounded admission with load shedding, per-request deadline SLOs
/// (p50/p95/p99, miss and shed rates), a watchdog that answers overrun or
/// crashed inferences from the earliest viable exit, degraded modes with
/// hysteresis (DVFS step-down + cheaper exit policy), and multi-lane device
/// failover driven by the PR-2 fault machinery (FaultInjector dropout,
/// DeviceHealth breaker).
///
/// Determinism: the clock is simulated (no wall time), every fault outcome
/// is a pure function of (lane fault seed, request id), and the serving loop
/// is serial — reports are bit-identical across repeated runs and thread
/// counts. With the whole envelope inactive (single fault-free lane, no
/// queue bound, no deadline, no watchdog, no degraded modes, no thermal),
/// the embedded DeploymentReport equals DeploymentSimulator::run bit for
/// bit.
///
/// Policies in the degradation ladder must be stateless (oracle, entropy,
/// confidence): decisions are precomputed in parallel, so an adaptive
/// policy's feedback loop would not see requests in order.
class ServeSupervisor {
 public:
  /// `lanes` must be non-empty; every lane's cost table must match the bank
  /// and be free of a robust wrapper, and its requested setting must lie
  /// inside the device's DVFS tables.
  ServeSupervisor(const dynn::ExitBank& bank, std::vector<ServeLane> lanes,
                  ServeConfig config);

  const ServeConfig& config() const { return config_; }

  /// True if any robustness feature can change behaviour vs. the plain
  /// deployment path.
  bool envelope_active() const;

  /// Replay `trace` (arrivals must be non-decreasing) through the design.
  /// `ladder[0]` is the baseline policy; `ladder[level]` (clamped to the
  /// last entry) serves mode `level`. Throws hw::DeviceUnavailableError only
  /// when every lane's device has dropped out.
  ServeReport run(const dynn::ExitPlacement& placement,
                  const std::vector<const ExitPolicy*>& ladder,
                  const std::vector<ServeRequest>& trace) const;

 private:
  const dynn::ExitBank& bank_;
  std::vector<ServeLane> lanes_;
  ServeConfig config_;
  exec::ParallelDispatcher dispatcher_;
};

/// Convenience builder for the usual entropy degradation ladder: level 0 at
/// `threshold`, each level above shifted by `+shift` (clamped to 1) so
/// degraded modes exit earlier. Returns `levels` policies.
std::vector<std::unique_ptr<ExitPolicy>> entropy_ladder(double threshold,
                                                        double shift,
                                                        std::size_t levels);

/// Raw-pointer view of a policy ladder (what ServeSupervisor::run takes).
std::vector<const ExitPolicy*> ladder_view(
    const std::vector<std::unique_ptr<ExitPolicy>>& ladder);

}  // namespace hadas::runtime::serve
