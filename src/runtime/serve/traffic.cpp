#include "runtime/serve/traffic.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace hadas::runtime::serve {

std::vector<ServeRequest> poisson_trace(const data::SampleStream& stream,
                                        const TrafficConfig& config) {
  if (stream.size() == 0)
    throw std::invalid_argument("poisson_trace: empty sample stream");
  util::Rng rng(config.seed);
  std::vector<ServeRequest> trace;
  trace.reserve(config.requests);
  double arrival = 0.0;
  for (std::size_t i = 0; i < config.requests; ++i) {
    if (config.arrival_rate_hz > 0.0) {
      // Exponential inter-arrival; uniform() < 1 keeps the log finite.
      arrival += -std::log(1.0 - rng.uniform()) / config.arrival_rate_hz;
    }
    trace.push_back({i, arrival, stream.indices()[i % stream.size()]});
  }
  return trace;
}

}  // namespace hadas::runtime::serve
