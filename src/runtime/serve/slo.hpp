#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/robust_eval.hpp"
#include "runtime/deployment.hpp"
#include "util/json.hpp"

namespace hadas::runtime::serve {

/// Degradation level of the serving supervisor.
enum class ServeMode { kNormal = 0, kDegraded = 1, kCritical = 2 };

/// Human-readable mode name ("normal" | "degraded" | "critical").
std::string serve_mode_name(ServeMode mode);

/// Post-run record of one serving lane (one device).
struct LaneReport {
  std::size_t served = 0;     ///< requests answered by this lane
  bool alive = true;          ///< false once the device dropped out
  hw::BreakerState breaker = hw::BreakerState::kClosed;
  hw::HealthReport health;
  double peak_temperature_c = 0.0;
  double final_temperature_c = 0.0;
  std::size_t throttle_events = 0;
};

/// Everything `ServeSupervisor::run` measured. All counters and doubles are
/// a pure function of (trace, config, seed): bit-identical across repeated
/// runs and thread counts.
struct ServeReport {
  /// Per-served-request deployment accounting with the exact arithmetic of
  /// DeploymentSimulator::run — with the robustness envelope inactive this
  /// equals the plain deployment report bit for bit.
  DeploymentReport deployment;

  // --- admission / backpressure ---
  std::size_t offered = 0;          ///< requests in the trace
  std::size_t admitted = 0;
  std::size_t shed = 0;             ///< rejected: queue full
  std::size_t shed_no_device = 0;   ///< rejected: no lane would admit
  std::size_t max_queue_depth = 0;  ///< outstanding requests, peak
  double avg_queue_wait_s = 0.0;    ///< admission -> service start, mean

  // --- SLO ---
  /// Completed requests below which tail percentiles are flagged as
  /// low-confidence: with n < 100 samples the interpolated p99 is just the
  /// max (or near-max) sample, not a tail estimate.
  static constexpr std::size_t kPercentileConfidenceMin = 100;

  std::size_t completed = 0;
  std::size_t deadline_misses = 0;  ///< end-to-end latency over the budget
  double p50_latency_s = 0.0;       ///< end-to-end (queue + service)
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double shed_rate = 0.0;           ///< (shed + shed_no_device) / offered
  double miss_rate = 0.0;           ///< deadline_misses / completed

  /// True when the percentiles above rest on fewer than
  /// kPercentileConfidenceMin completed requests. Text output should say so
  /// instead of printing p99 bare; to_json() carries the flag.
  bool percentiles_low_confidence() const {
    return completed < kPercentileConfidenceMin;
  }

  // --- robustness events ---
  std::size_t watchdog_fallbacks = 0;  ///< served from the earliest exit
  std::size_t transient_faults = 0;
  std::size_t nan_faults = 0;
  std::size_t overruns = 0;            ///< watchdog overrun detections
  std::size_t failovers = 0;           ///< requests re-homed to another lane
  std::size_t devices_lost = 0;
  std::size_t throttle_events = 0;     ///< across all lanes
  std::size_t degraded_entries = 0;    ///< normal -> degraded transitions
  std::size_t critical_entries = 0;    ///< degraded -> critical transitions
  std::size_t requests_degraded = 0;   ///< served at mode >= degraded
  ServeMode final_mode = ServeMode::kNormal;

  // --- totals ---
  double makespan_s = 0.0;             ///< completion time of the last request
  double total_energy_j = 0.0;
  std::vector<LaneReport> lanes;

  /// Full JSON serialization (bench_serving and `hadas serve --out`).
  util::Json to_json() const;
};

/// Accumulates per-request latency samples and finalizes the percentile /
/// rate fields of a ServeReport. Percentiles are linear-interpolated
/// (util::percentile) over the completed requests' end-to-end latencies —
/// deterministic because the sample order is the (fixed) trace order.
class SloTracker {
 public:
  void record(double end_to_end_s, double queue_wait_s, bool missed_deadline);

  std::size_t completed() const { return latencies_.size(); }

  /// Write completed/misses/percentiles/rates into the report (which must
  /// already carry the shed counters).
  void finalize(ServeReport& report) const;

  /// Serializable state (serving-journal snapshot/restore).
  struct State {
    std::vector<double> latencies;
    double wait_sum_s = 0.0;
    std::size_t misses = 0;
  };
  State snapshot() const { return {latencies_, wait_sum_s, misses_}; }
  void restore(State state) {
    latencies_ = std::move(state.latencies);
    wait_sum_s = state.wait_sum_s;
    misses_ = state.misses;
  }

 private:
  std::vector<double> latencies_;
  double wait_sum_s = 0.0;
  std::size_t misses_ = 0;
};

}  // namespace hadas::runtime::serve
