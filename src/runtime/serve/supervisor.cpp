#include "runtime/serve/supervisor.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace hadas::runtime::serve {

namespace {

/// Mutable per-lane runtime state. Heap-held: DeviceHealth owns a mutex and
/// is not movable.
struct LaneState {
  LaneState(const ServeLane& spec_in, const ServeConfig& config)
      : spec(&spec_in),
        injector(spec_in.faults),
        health(config.breaker),
        thermal(config.thermal),
        governor(*spec_in.costs) {}

  const ServeLane* spec;
  hw::FaultInjector injector;
  hw::DeviceHealth health;
  hw::ThermalModel thermal;
  DvfsGovernor governor;

  bool alive = true;
  std::size_t served = 0;
  double clock_s = 0.0;       ///< how far this lane's health clock advanced
  double last_event_s = 0.0;  ///< service end of the lane's last request
  double peak_temperature_c;

  /// Advance the health breaker's simulated clock to the global time `t`.
  void advance_clock_to(double t) {
    if (t > clock_s) {
      health.advance_clock(t - clock_s, /*is_backoff=*/false);
      clock_s = t;
    }
  }
};

/// What serving one request on one lane produced.
struct ServeOutcome {
  double latency_s = 0.0;  ///< service time charged (queue wait excluded)
  double energy_j = 0.0;
  double power_w = 0.0;    ///< average dissipation while serving
  bool exited = false;
  std::size_t resolved_layer = 0;  ///< valid when exited
  bool fallback = false;           ///< answered from the earliest exit
  bool transient = false;
  bool nan = false;
  bool overrun = false;
  bool throttled = false;
};

}  // namespace

ServeSupervisor::ServeSupervisor(const dynn::ExitBank& bank,
                                 std::vector<ServeLane> lanes,
                                 ServeConfig config)
    : bank_(bank),
      lanes_(std::move(lanes)),
      config_(config),
      dispatcher_(config.exec) {
  if (lanes_.empty())
    throw std::invalid_argument("ServeSupervisor: no serving lanes");
  for (const ServeLane& lane : lanes_) {
    if (lane.costs == nullptr)
      throw std::invalid_argument("ServeSupervisor: lane without a cost table");
    if (lane.costs->network().num_mbconv_layers() != bank_.total_layers())
      throw std::invalid_argument("ServeSupervisor: lane/bank layer mismatch");
    if (lane.costs->robust() != nullptr)
      throw std::invalid_argument(
          "ServeSupervisor: lane cost table carries a search-time robust "
          "wrapper; the supervisor owns fault injection at serve time");
    const hw::DeviceSpec& device = lane.costs->evaluator().device();
    if (device.core_freqs_hz.empty() || device.emc_freqs_hz.empty() ||
        lane.requested.core_idx >= device.core_freqs_hz.size() ||
        lane.requested.emc_idx >= device.emc_freqs_hz.size())
      throw std::invalid_argument(
          "ServeSupervisor: requested DVFS setting outside the lane device's "
          "tables");
  }
}

bool ServeSupervisor::envelope_active() const {
  if (lanes_.size() > 1 || config_.admission.queue_capacity > 0 ||
      config_.slo.deadline_s > 0.0 || config_.watchdog.overrun_factor > 0.0 ||
      config_.degraded.enabled || config_.thermal_enabled)
    return true;
  for (const ServeLane& lane : lanes_)
    if (lane.faults.active()) return true;
  return false;
}

ServeReport ServeSupervisor::run(const dynn::ExitPlacement& placement,
                                 const std::vector<const ExitPolicy*>& ladder,
                                 const std::vector<ServeRequest>& trace) const {
  const std::vector<std::size_t> exits = placement.positions();
  if (exits.empty())
    throw std::invalid_argument("ServeSupervisor: empty placement");
  if (ladder.empty() || ladder.front() == nullptr)
    throw std::invalid_argument("ServeSupervisor: empty policy ladder");
  for (std::size_t i = 1; i < trace.size(); ++i)
    if (trace[i].arrival_s < trace[i - 1].arrival_s)
      throw std::invalid_argument("ServeSupervisor: trace arrivals decrease");

  // Mode-0 decisions for the whole trace, precomputed in parallel. The walk
  // is a pure function of (policy, sample), so the result is independent of
  // the thread count; higher-mode decisions are rare and computed inline.
  const std::vector<CascadeDecision> base_decisions =
      dispatcher_.map(trace.size(), [&](std::size_t i) {
        return walk_cascade(bank_, exits, *ladder.front(), trace[i].sample);
      });

  std::vector<std::unique_ptr<LaneState>> lanes;
  for (const ServeLane& spec : lanes_)
    lanes.push_back(std::make_unique<LaneState>(spec, config_));
  for (auto& lane : lanes)
    lane->peak_temperature_c = lane->thermal.temperature_c();

  // The pass-through contract measures gains against the primary device's
  // default (performance-governor) setting, exactly like DeploymentSimulator.
  const dynn::MultiExitCostTable& primary_costs = *lanes_.front().costs;
  const hw::HwMeasurement static_baseline = primary_costs.full_network(
      hw::default_setting(primary_costs.evaluator().device()));

  ServeReport report;
  report.lanes.resize(lanes.size());
  SloTracker slo;
  std::size_t correct = 0;
  double energy_sum = 0.0, latency_sum = 0.0;

  // Degraded-mode controller state.
  ServeMode mode = ServeMode::kNormal;
  double incident_ema = 0.0;
  std::size_t dwell = 0;

  // Single logical server fronted by a FIFO queue; lanes are failover
  // replicas, not parallel servers.
  std::deque<double> outstanding;  // completion times of admitted requests
  double busy_until_s = 0.0;

  const DegradedConfig& degraded = config_.degraded;

  // Serve one request on one lane at mode `level`. Throws
  // hw::DeviceUnavailableError when the lane's device drops out.
  auto serve_one = [&](LaneState& lane, const ServeRequest& request,
                       double start_s, std::size_t level,
                       const CascadeDecision& decision) {
    ServeOutcome outcome;

    // Idle cooling since the lane's previous request.
    if (config_.thermal_enabled && start_s > lane.last_event_s)
      lane.thermal.step(0.0, start_s - lane.last_event_s);

    hw::DvfsSetting effective =
        level == 0 ? lane.spec->requested
                   : lane.governor.step_down(lane.spec->requested,
                                             level * degraded.dvfs_steps);
    if (config_.thermal_enabled && lane.thermal.throttled()) {
      effective.core_idx =
          std::min(effective.core_idx, config_.thermal.throttled_core_idx);
      outcome.throttled = true;
    }

    const hw::HwMeasurement clean =
        lane.spec->costs->cascade_path(decision.visited, decision.exited,
                                       effective);
    hw::HwMeasurement measured = clean;
    if (lane.injector.active()) {
      try {
        measured = lane.injector.apply(clean, request.id, /*attempt=*/0);
      } catch (const hw::MeasurementError&) {
        outcome.transient = true;
      }
      // DeviceUnavailableError propagates: the lane is gone for good.
    }
    if (!outcome.transient && !hw::finite_measurement(measured))
      outcome.nan = true;
    if (config_.watchdog.overrun_factor > 0.0 && !outcome.transient &&
        !outcome.nan &&
        measured.latency_s > config_.watchdog.overrun_factor * clean.latency_s)
      outcome.overrun = true;

    if (outcome.transient || outcome.nan || outcome.overrun) {
      // Watchdog fallback: kill at the overrun budget and answer from the
      // earliest viable exit — a degraded but in-deadline-budget response.
      const double budget =
          (config_.watchdog.overrun_factor > 0.0
               ? config_.watchdog.overrun_factor
               : 1.0) *
          clean.latency_s;
      const hw::HwMeasurement fallback =
          lane.spec->costs->cascade_path({exits.front()}, true, effective);
      outcome.fallback = true;
      outcome.exited = true;
      outcome.resolved_layer = exits.front();
      outcome.latency_s = budget + fallback.latency_s;
      outcome.energy_j = budget * clean.avg_power_w + fallback.energy_j;
      lane.health.record_failure();
    } else {
      outcome.exited = decision.exited;
      if (decision.exited) outcome.resolved_layer = decision.visited.back();
      outcome.latency_s = measured.latency_s;
      outcome.energy_j = measured.energy_j;
      lane.health.record_success();
    }
    outcome.power_w =
        outcome.latency_s > 0.0 ? outcome.energy_j / outcome.latency_s : 0.0;

    if (config_.thermal_enabled) {
      lane.thermal.step(outcome.power_w, outcome.latency_s);
      lane.peak_temperature_c =
          std::max(lane.peak_temperature_c, lane.thermal.temperature_c());
    }
    lane.last_event_s = start_s + outcome.latency_s;
    lane.advance_clock_to(lane.last_event_s);
    ++lane.served;
    return outcome;
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const ServeRequest& request = trace[i];
    ++report.offered;

    // Admission: drain completions, then check the bound.
    while (!outstanding.empty() && outstanding.front() <= request.arrival_s)
      outstanding.pop_front();
    if (config_.admission.queue_capacity > 0 &&
        outstanding.size() >= config_.admission.queue_capacity) {
      ++report.shed;
      continue;
    }

    const double start_s = std::max(request.arrival_s, busy_until_s);

    // Lane selection: the first alive lane whose breaker admits at the
    // current simulated time (primary first).
    for (auto& lane : lanes) lane->advance_clock_to(start_s);
    std::size_t selected = lanes.size();
    for (std::size_t l = 0; l < lanes.size(); ++l)
      if (lanes[l]->alive && lanes[l]->health.admit()) {
        selected = l;
        break;
      }
    if (selected == lanes.size()) {
      bool any_alive = false;
      for (const auto& lane : lanes) any_alive = any_alive || lane->alive;
      if (!any_alive)
        throw hw::DeviceUnavailableError(
            "ServeSupervisor: every serving lane's device has dropped out");
      ++report.shed_no_device;  // breakers open; shed rather than block
      continue;
    }

    const std::size_t level =
        std::min(static_cast<std::size_t>(mode), ladder.size() - 1);
    const ExitPolicy& policy = *ladder[level];
    const CascadeDecision decision =
        level == 0 ? base_decisions[i]
                   : walk_cascade(bank_, exits, policy, request.sample);

    // Serve, failing over through the remaining lanes on device dropout.
    ServeOutcome outcome;
    bool served = false;
    while (!served) {
      try {
        outcome = serve_one(*lanes[selected], request, start_s, level, decision);
        served = true;
      } catch (const hw::DeviceUnavailableError&) {
        lanes[selected]->alive = false;
        lanes[selected]->health.record_dropout();
        ++report.devices_lost;
        std::size_t next = lanes.size();
        for (std::size_t l = 0; l < lanes.size(); ++l)
          if (lanes[l]->alive && lanes[l]->health.admit()) {
            next = l;
            break;
          }
        if (next == lanes.size()) {
          bool any_alive = false;
          for (const auto& lane : lanes) any_alive = any_alive || lane->alive;
          if (!any_alive)
            throw hw::DeviceUnavailableError(
                "ServeSupervisor: every serving lane's device has dropped "
                "out");
          break;  // alive lanes exist but none admits right now: shed
        }
        selected = next;
        ++report.failovers;
      }
    }
    if (!served) {
      ++report.shed_no_device;
      continue;
    }

    ++report.admitted;
    report.max_queue_depth =
        std::max(report.max_queue_depth, outstanding.size() + 1);
    const double completion_s = start_s + outcome.latency_s;
    outstanding.push_back(completion_s);
    busy_until_s = completion_s;
    report.makespan_s = completion_s;

    const double end_to_end_s = completion_s - request.arrival_s;
    const bool missed = config_.slo.deadline_s > 0.0 &&
                        end_to_end_s > config_.slo.deadline_s;
    slo.record(end_to_end_s, start_s - request.arrival_s, missed);

    // Deployment accounting — the exact arithmetic of DeploymentSimulator.
    energy_sum += outcome.energy_j;
    latency_sum += outcome.latency_s;
    if (outcome.exited) {
      correct +=
          bank_.exit_at(outcome.resolved_layer).test_correct[request.sample]
              ? 1
              : 0;
      ++report.deployment.exit_histogram[outcome.resolved_layer];
    } else {
      correct += bank_.final_exit().test_correct[request.sample] ? 1 : 0;
      ++report.deployment.exit_histogram[bank_.total_layers()];
    }
    ++report.deployment.samples;
    policy.on_sample_complete(outcome.exited);

    if (outcome.fallback) ++report.watchdog_fallbacks;
    if (outcome.transient) ++report.transient_faults;
    if (outcome.nan) ++report.nan_faults;
    if (outcome.overrun) ++report.overruns;
    if (mode != ServeMode::kNormal) ++report.requests_degraded;

    // Degraded-mode controller with hysteresis.
    if (degraded.enabled) {
      const bool incident = outcome.fallback || outcome.throttled;
      incident_ema = (1.0 - degraded.ema_alpha) * incident_ema +
                     degraded.ema_alpha * (incident ? 1.0 : 0.0);
      ++dwell;
      if (mode == ServeMode::kNormal && incident_ema > degraded.enter_rate) {
        mode = ServeMode::kDegraded;
        dwell = 0;
        ++report.degraded_entries;
      } else if (mode == ServeMode::kDegraded &&
                 incident_ema > degraded.critical_rate) {
        mode = ServeMode::kCritical;
        dwell = 0;
        ++report.critical_entries;
      } else if (mode != ServeMode::kNormal &&
                 incident_ema < degraded.exit_rate &&
                 dwell >= degraded.min_dwell) {
        mode = mode == ServeMode::kCritical ? ServeMode::kDegraded
                                            : ServeMode::kNormal;
        dwell = 0;
      }
    }
  }

  if (report.deployment.samples > 0)
    finalize_deployment_report(report.deployment, energy_sum, latency_sum,
                               correct, static_baseline);
  report.total_energy_j = energy_sum;
  report.final_mode = mode;
  slo.finalize(report);

  for (std::size_t l = 0; l < lanes.size(); ++l) {
    LaneReport& lane_report = report.lanes[l];
    lane_report.served = lanes[l]->served;
    lane_report.alive = lanes[l]->alive;
    lane_report.breaker = lanes[l]->health.state();
    lane_report.health = lanes[l]->health.report();
    lane_report.peak_temperature_c = lanes[l]->peak_temperature_c;
    lane_report.final_temperature_c = lanes[l]->thermal.temperature_c();
    lane_report.throttle_events = lanes[l]->thermal.throttle_events();
    report.throttle_events += lane_report.throttle_events;
  }
  return report;
}

std::vector<std::unique_ptr<ExitPolicy>> entropy_ladder(double threshold,
                                                        double shift,
                                                        std::size_t levels) {
  if (levels == 0)
    throw std::invalid_argument("entropy_ladder: need at least one level");
  std::vector<std::unique_ptr<ExitPolicy>> ladder;
  for (std::size_t level = 0; level < levels; ++level)
    ladder.push_back(std::make_unique<EntropyPolicy>(
        std::min(1.0, threshold + shift * static_cast<double>(level))));
  return ladder;
}

std::vector<const ExitPolicy*> ladder_view(
    const std::vector<std::unique_ptr<ExitPolicy>>& ladder) {
  std::vector<const ExitPolicy*> view;
  for (const auto& policy : ladder) view.push_back(policy.get());
  return view;
}

}  // namespace hadas::runtime::serve
