#include "runtime/serve/supervisor.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/failpoint.hpp"

namespace hadas::runtime::serve {

namespace {

/// Serving instruments, resolved once. Strictly observe-only: counters are
/// bumped next to the ServeReport counters they mirror, trace events carry
/// the *simulated* clock (so they are bit-identical run to run), and nothing
/// recorded here feeds back into an admission or degrade decision.
struct ServeMetrics {
  obs::MetricsRegistry& r = obs::MetricsRegistry::global();
  obs::Counter& offered = r.counter("serve.offered_total");
  obs::Counter& admitted = r.counter("serve.admitted_total");
  obs::Counter& shed = r.counter("serve.shed_total");
  obs::Counter& shed_no_device = r.counter("serve.shed_no_device_total");
  obs::Counter& watchdog_fallbacks =
      r.counter("serve.watchdog_fallbacks_total");
  obs::Counter& transient_faults = r.counter("serve.transient_faults_total");
  obs::Counter& nan_faults = r.counter("serve.nan_faults_total");
  obs::Counter& overruns = r.counter("serve.overruns_total");
  obs::Counter& failovers = r.counter("serve.failovers_total");
  obs::Counter& devices_lost = r.counter("serve.devices_lost_total");
  obs::Counter& degraded_entries = r.counter("serve.degraded_entries_total");
  obs::Counter& critical_entries = r.counter("serve.critical_entries_total");
  obs::Counter& journal_saves = r.counter("serve.journal_saves_total");
  obs::Histogram& latency = r.histogram("serve.request_latency_seconds",
                                        obs::default_time_bounds());
};

ServeMetrics& serve_metrics() {
  static ServeMetrics metrics;
  return metrics;
}

/// Record one served request as a complete trace event on the simulated
/// clock; `tid` is the serving lane, so failovers show up as track changes.
void trace_request(double start_s, double latency_s, std::size_t lane) {
  obs::TraceSink::global().complete("request", "serve", start_s * 1e6,
                                    latency_s * 1e6,
                                    static_cast<std::uint32_t>(lane));
}

/// Mutable per-lane runtime state. Heap-held: DeviceHealth owns a mutex and
/// is not movable.
struct LaneState {
  LaneState(const ServeLane& spec_in, const ServeConfig& config)
      : spec(&spec_in),
        injector(spec_in.faults),
        health(config.breaker),
        thermal(config.thermal),
        governor(*spec_in.costs) {}

  const ServeLane* spec;
  hw::FaultInjector injector;
  hw::DeviceHealth health;
  hw::ThermalModel thermal;
  DvfsGovernor governor;

  bool alive = true;
  std::size_t served = 0;
  double clock_s = 0.0;       ///< how far this lane's health clock advanced
  double last_event_s = 0.0;  ///< service end of the lane's last request
  double peak_temperature_c;

  /// Advance the health breaker's simulated clock to the global time `t`.
  void advance_clock_to(double t) {
    if (t > clock_s) {
      health.advance_clock(t - clock_s, /*is_backoff=*/false);
      clock_s = t;
    }
  }
};

/// Canonical fingerprint of a serve run for journal validation. Covers
/// everything that changes the request-by-request behaviour — placement,
/// ladder depth, the full trace contents, every robustness knob and every
/// lane's DVFS point and fault model — but NOT execution or journal knobs
/// (thread count, snapshot cadence), which may differ between the
/// interrupted and the resuming process.
std::string journal_fingerprint(const std::vector<std::size_t>& exits,
                                std::size_t ladder_size,
                                const std::vector<ServeRequest>& trace,
                                const ServeConfig& config,
                                const std::vector<ServeLane>& lanes) {
  // Fold the trace contents into one FNV-1a hash (bit-exact on arrivals).
  std::uint64_t trace_hash = 0xcbf29ce484222325ULL;
  auto mix = [&trace_hash](std::uint64_t v) {
    for (int b = 0; b < 64; b += 8) {
      trace_hash ^= (v >> b) & 0xFF;
      trace_hash *= 0x100000001b3ULL;
    }
  };
  for (const ServeRequest& request : trace) {
    std::uint64_t arrival_bits = 0;
    std::memcpy(&arrival_bits, &request.arrival_s, sizeof(arrival_bits));
    mix(request.id);
    mix(arrival_bits);
    mix(request.sample);
  }

  std::ostringstream out;
  out.precision(17);
  out << "hadas-serve-journal-v1|exits:";
  for (std::size_t e : exits) out << e << ',';
  out << "|ladder:" << ladder_size << "|trace:" << trace.size() << '/'
      << trace_hash;
  out << "|admission:" << config.admission.queue_capacity;
  out << "|slo:" << config.slo.deadline_s;
  out << "|watchdog:" << config.watchdog.overrun_factor;
  const DegradedConfig& d = config.degraded;
  out << "|degraded:" << d.enabled << ',' << d.enter_rate << ','
      << d.critical_rate << ',' << d.exit_rate << ',' << d.ema_alpha << ','
      << d.min_dwell << ',' << d.dvfs_steps;
  out << "|breaker:" << config.breaker.failure_threshold << ','
      << config.breaker.cooldown_s << ',' << config.breaker.half_open_successes;
  out << "|thermal:" << config.thermal_enabled << ','
      << config.thermal.ambient_c << ',' << config.thermal.throttle_temp_c
      << ',' << config.thermal.resume_temp_c << ','
      << config.thermal.thermal_resistance_c_per_w << ','
      << config.thermal.time_constant_s << ','
      << config.thermal.throttled_core_idx;
  out << "|lanes:";
  for (const ServeLane& lane : lanes) {
    const hw::FaultConfig& f = lane.faults;
    out << lane.requested.core_idx << '/' << lane.requested.emc_idx << '/'
        << f.transient_failure_rate << '/' << f.noise_sigma << '/'
        << f.thermal_drift << '/' << f.dropout_after_n << '/' << f.nan_rate
        << '/' << f.seed << ';';
  }
  return out.str();
}

/// What serving one request on one lane produced.
struct ServeOutcome {
  double latency_s = 0.0;  ///< service time charged (queue wait excluded)
  double energy_j = 0.0;
  double power_w = 0.0;    ///< average dissipation while serving
  bool exited = false;
  std::size_t resolved_layer = 0;  ///< valid when exited
  bool fallback = false;           ///< answered from the earliest exit
  bool transient = false;
  bool nan = false;
  bool overrun = false;
  bool throttled = false;
};

}  // namespace

ServeSupervisor::ServeSupervisor(const dynn::ExitBank& bank,
                                 std::vector<ServeLane> lanes,
                                 ServeConfig config)
    : bank_(bank),
      lanes_(std::move(lanes)),
      config_(config),
      dispatcher_(config.exec) {
  if (lanes_.empty())
    throw std::invalid_argument("ServeSupervisor: no serving lanes");
  for (const ServeLane& lane : lanes_) {
    if (lane.costs == nullptr)
      throw std::invalid_argument("ServeSupervisor: lane without a cost table");
    if (lane.costs->network().num_mbconv_layers() != bank_.total_layers())
      throw std::invalid_argument("ServeSupervisor: lane/bank layer mismatch");
    if (lane.costs->robust() != nullptr)
      throw std::invalid_argument(
          "ServeSupervisor: lane cost table carries a search-time robust "
          "wrapper; the supervisor owns fault injection at serve time");
    const hw::DeviceSpec& device = lane.costs->evaluator().device();
    if (device.core_freqs_hz.empty() || device.emc_freqs_hz.empty() ||
        lane.requested.core_idx >= device.core_freqs_hz.size() ||
        lane.requested.emc_idx >= device.emc_freqs_hz.size())
      throw std::invalid_argument(
          "ServeSupervisor: requested DVFS setting outside the lane device's "
          "tables");
  }
}

bool ServeSupervisor::envelope_active() const {
  if (lanes_.size() > 1 || config_.admission.queue_capacity > 0 ||
      config_.slo.deadline_s > 0.0 || config_.watchdog.overrun_factor > 0.0 ||
      config_.degraded.enabled || config_.thermal_enabled)
    return true;
  for (const ServeLane& lane : lanes_)
    if (lane.faults.active()) return true;
  return false;
}

ServeReport ServeSupervisor::run(const dynn::ExitPlacement& placement,
                                 const std::vector<const ExitPolicy*>& ladder,
                                 const std::vector<ServeRequest>& trace) const {
  const std::vector<std::size_t> exits = placement.positions();
  if (exits.empty())
    throw std::invalid_argument("ServeSupervisor: empty placement");
  if (ladder.empty() || ladder.front() == nullptr)
    throw std::invalid_argument("ServeSupervisor: empty policy ladder");
  for (std::size_t i = 1; i < trace.size(); ++i)
    if (trace[i].arrival_s < trace[i - 1].arrival_s)
      throw std::invalid_argument("ServeSupervisor: trace arrivals decrease");

  // Mode-0 decisions for the whole trace, precomputed in parallel. The walk
  // is a pure function of (policy, sample), so the result is independent of
  // the thread count; higher-mode decisions are rare and computed inline.
  const std::vector<CascadeDecision> base_decisions =
      dispatcher_.map(trace.size(), [&](std::size_t i) {
        return walk_cascade(bank_, exits, *ladder.front(), trace[i].sample);
      });

  std::vector<std::unique_ptr<LaneState>> lanes;
  for (const ServeLane& spec : lanes_)
    lanes.push_back(std::make_unique<LaneState>(spec, config_));
  for (auto& lane : lanes)
    lane->peak_temperature_c = lane->thermal.temperature_c();

  // The pass-through contract measures gains against the primary device's
  // default (performance-governor) setting, exactly like DeploymentSimulator.
  const dynn::MultiExitCostTable& primary_costs = *lanes_.front().costs;
  const hw::HwMeasurement static_baseline = primary_costs.full_network(
      hw::default_setting(primary_costs.evaluator().device()));

  ServeReport report;
  report.lanes.resize(lanes.size());
  SloTracker slo;
  std::size_t correct = 0;
  double energy_sum = 0.0, latency_sum = 0.0;

  // Degraded-mode controller state.
  ServeMode mode = ServeMode::kNormal;
  double incident_ema = 0.0;
  std::size_t dwell = 0;

  // Single logical server fronted by a FIFO queue; lanes are failover
  // replicas, not parallel servers.
  std::deque<double> outstanding;  // completion times of admitted requests
  double busy_until_s = 0.0;

  const DegradedConfig& degraded = config_.degraded;

  // --- Journal: resume from the newest valid snapshot, if one exists. ---
  const ServeJournalConfig& journal = config_.journal;
  const bool journaling = !journal.path.empty();
  std::optional<hadas::util::durable::CheckpointChain> chain;
  std::string journal_fp;
  std::size_t start_index = 0;
  if (journaling) {
    chain.emplace(journal.path, std::max<std::size_t>(1, journal.keep));
    journal_fp =
        journal_fingerprint(exits, ladder.size(), trace, config_, lanes_);
    auto jwarn = [&](const std::string& message) {
      if (journal.warn) {
        journal.warn(message);
      } else {
        std::fprintf(stderr, "[hadas] %s\n", message.c_str());
      }
    };
    if (auto loaded = load_journal(*chain, jwarn)) {
      const ServeJournalSnapshot& snap = loaded->snapshot;
      if (snap.fingerprint != journal_fp)
        throw std::invalid_argument(
            "ServeSupervisor: journal '" + loaded->file +
            "' was written by a different serve run; refusing to resume "
            "(delete the file to start fresh)");
      if (snap.lanes.size() != lanes.size())
        throw std::invalid_argument(
            "ServeSupervisor: journal lane count mismatch");
      report.offered = snap.offered;
      report.admitted = snap.admitted;
      report.shed = snap.shed;
      report.shed_no_device = snap.shed_no_device;
      report.max_queue_depth = snap.max_queue_depth;
      report.watchdog_fallbacks = snap.watchdog_fallbacks;
      report.transient_faults = snap.transient_faults;
      report.nan_faults = snap.nan_faults;
      report.overruns = snap.overruns;
      report.failovers = snap.failovers;
      report.devices_lost = snap.devices_lost;
      report.degraded_entries = snap.degraded_entries;
      report.critical_entries = snap.critical_entries;
      report.requests_degraded = snap.requests_degraded;
      report.makespan_s = snap.makespan_s;
      report.deployment.samples = snap.deployment_samples;
      report.deployment.exit_histogram = snap.exit_histogram;
      correct = snap.correct;
      energy_sum = snap.energy_sum_j;
      latency_sum = snap.latency_sum_s;
      slo.restore(snap.slo);
      mode = static_cast<ServeMode>(snap.mode);
      incident_ema = snap.incident_ema;
      dwell = snap.dwell;
      outstanding.assign(snap.outstanding.begin(), snap.outstanding.end());
      busy_until_s = snap.busy_until_s;
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        const LaneSnapshot& lane_snap = snap.lanes[l];
        lanes[l]->alive = lane_snap.alive;
        lanes[l]->served = lane_snap.served;
        lanes[l]->clock_s = lane_snap.clock_s;
        lanes[l]->last_event_s = lane_snap.last_event_s;
        lanes[l]->peak_temperature_c = lane_snap.peak_temperature_c;
        lanes[l]->health.restore(lane_snap.health);
        lanes[l]->thermal.restore(lane_snap.thermal);
        lanes[l]->injector.restore(lane_snap.injector);
      }
      start_index = snap.next_index;
    }
  }

  // Snapshot all run-loop state at the boundary before trace entry `next`.
  auto make_snapshot = [&](std::size_t next) {
    ServeJournalSnapshot snap;
    snap.fingerprint = journal_fp;
    snap.next_index = next;
    snap.offered = report.offered;
    snap.admitted = report.admitted;
    snap.shed = report.shed;
    snap.shed_no_device = report.shed_no_device;
    snap.max_queue_depth = report.max_queue_depth;
    snap.watchdog_fallbacks = report.watchdog_fallbacks;
    snap.transient_faults = report.transient_faults;
    snap.nan_faults = report.nan_faults;
    snap.overruns = report.overruns;
    snap.failovers = report.failovers;
    snap.devices_lost = report.devices_lost;
    snap.degraded_entries = report.degraded_entries;
    snap.critical_entries = report.critical_entries;
    snap.requests_degraded = report.requests_degraded;
    snap.makespan_s = report.makespan_s;
    snap.deployment_samples = report.deployment.samples;
    snap.exit_histogram = report.deployment.exit_histogram;
    snap.correct = correct;
    snap.energy_sum_j = energy_sum;
    snap.latency_sum_s = latency_sum;
    snap.slo = slo.snapshot();
    snap.mode = static_cast<int>(mode);
    snap.incident_ema = incident_ema;
    snap.dwell = dwell;
    snap.outstanding.assign(outstanding.begin(), outstanding.end());
    snap.busy_until_s = busy_until_s;
    for (const auto& lane : lanes)
      snap.lanes.push_back({lane->alive, lane->served, lane->clock_s,
                            lane->last_event_s, lane->peak_temperature_c,
                            lane->health.snapshot(), lane->thermal.snapshot(),
                            lane->injector.snapshot()});
    return snap;
  };

  // Serve one request on one lane at mode `level`. Throws
  // hw::DeviceUnavailableError when the lane's device drops out.
  auto serve_one = [&](LaneState& lane, const ServeRequest& request,
                       double start_s, std::size_t level,
                       const CascadeDecision& decision) {
    ServeOutcome outcome;

    // Idle cooling since the lane's previous request.
    if (config_.thermal_enabled && start_s > lane.last_event_s)
      lane.thermal.step(0.0, start_s - lane.last_event_s);

    hw::DvfsSetting effective =
        level == 0 ? lane.spec->requested
                   : lane.governor.step_down(lane.spec->requested,
                                             level * degraded.dvfs_steps);
    if (config_.thermal_enabled && lane.thermal.throttled()) {
      effective.core_idx =
          std::min(effective.core_idx, config_.thermal.throttled_core_idx);
      outcome.throttled = true;
    }

    const hw::HwMeasurement clean =
        lane.spec->costs->cascade_path(decision.visited, decision.exited,
                                       effective);
    hw::HwMeasurement measured = clean;
    if (lane.injector.active()) {
      try {
        measured = lane.injector.apply(clean, request.id, /*attempt=*/0);
      } catch (const hw::MeasurementError&) {
        outcome.transient = true;
      }
      // DeviceUnavailableError propagates: the lane is gone for good.
    }
    if (!outcome.transient && !hw::finite_measurement(measured))
      outcome.nan = true;
    if (config_.watchdog.overrun_factor > 0.0 && !outcome.transient &&
        !outcome.nan &&
        measured.latency_s > config_.watchdog.overrun_factor * clean.latency_s)
      outcome.overrun = true;

    if (outcome.transient || outcome.nan || outcome.overrun) {
      // Watchdog fallback: kill at the overrun budget and answer from the
      // earliest viable exit — a degraded but in-deadline-budget response.
      const double budget =
          (config_.watchdog.overrun_factor > 0.0
               ? config_.watchdog.overrun_factor
               : 1.0) *
          clean.latency_s;
      const hw::HwMeasurement fallback =
          lane.spec->costs->cascade_path({exits.front()}, true, effective);
      outcome.fallback = true;
      outcome.exited = true;
      outcome.resolved_layer = exits.front();
      outcome.latency_s = budget + fallback.latency_s;
      outcome.energy_j = budget * clean.avg_power_w + fallback.energy_j;
      lane.health.record_failure();
    } else {
      outcome.exited = decision.exited;
      if (decision.exited) outcome.resolved_layer = decision.visited.back();
      outcome.latency_s = measured.latency_s;
      outcome.energy_j = measured.energy_j;
      lane.health.record_success();
    }
    outcome.power_w =
        outcome.latency_s > 0.0 ? outcome.energy_j / outcome.latency_s : 0.0;

    if (config_.thermal_enabled) {
      lane.thermal.step(outcome.power_w, outcome.latency_s);
      lane.peak_temperature_c =
          std::max(lane.peak_temperature_c, lane.thermal.temperature_c());
    }
    lane.last_event_s = start_s + outcome.latency_s;
    lane.advance_clock_to(lane.last_event_s);
    ++lane.served;
    return outcome;
  };

  for (std::size_t i = start_index; i < trace.size(); ++i) {
    // Journal at the request boundary (skip the boundary we just resumed
    // from — its snapshot is the one on disk).
    if (journaling && i > start_index &&
        i % std::max<std::size_t>(1, journal.every) == 0) {
      hadas::util::failpoint("serve.journal.begin");
      save_journal(*chain, make_snapshot(i));
      serve_metrics().journal_saves.inc();
      hadas::util::failpoint("serve.journal.end");
    }
    if (journal.stop_after_requests > 0 && i == journal.stop_after_requests)
      throw ServeInterruptedError(
          "ServeSupervisor: stopped before trace entry " + std::to_string(i) +
          " (stop_after_requests test hook)");
    hadas::util::failpoint("serve.request");
    const ServeRequest& request = trace[i];
    ++report.offered;
    serve_metrics().offered.inc();

    // Admission: drain completions, then check the bound.
    while (!outstanding.empty() && outstanding.front() <= request.arrival_s)
      outstanding.pop_front();
    if (config_.admission.queue_capacity > 0 &&
        outstanding.size() >= config_.admission.queue_capacity) {
      ++report.shed;
      serve_metrics().shed.inc();
      obs::TraceSink::global().instant("shed", "serve",
                                       request.arrival_s * 1e6, 0);
      continue;
    }

    const double start_s = std::max(request.arrival_s, busy_until_s);

    // Lane selection: the first alive lane whose breaker admits at the
    // current simulated time (primary first).
    for (auto& lane : lanes) lane->advance_clock_to(start_s);
    std::size_t selected = lanes.size();
    for (std::size_t l = 0; l < lanes.size(); ++l)
      if (lanes[l]->alive && lanes[l]->health.admit()) {
        selected = l;
        break;
      }
    if (selected == lanes.size()) {
      bool any_alive = false;
      for (const auto& lane : lanes) any_alive = any_alive || lane->alive;
      if (!any_alive)
        throw hw::DeviceUnavailableError(
            "ServeSupervisor: every serving lane's device has dropped out");
      ++report.shed_no_device;  // breakers open; shed rather than block
      serve_metrics().shed_no_device.inc();
      continue;
    }

    const std::size_t level =
        std::min(static_cast<std::size_t>(mode), ladder.size() - 1);
    const ExitPolicy& policy = *ladder[level];
    const CascadeDecision decision =
        level == 0 ? base_decisions[i]
                   : walk_cascade(bank_, exits, policy, request.sample);

    // Serve, failing over through the remaining lanes on device dropout.
    ServeOutcome outcome;
    bool served = false;
    while (!served) {
      try {
        outcome = serve_one(*lanes[selected], request, start_s, level, decision);
        served = true;
      } catch (const hw::DeviceUnavailableError&) {
        lanes[selected]->alive = false;
        lanes[selected]->health.record_dropout();
        ++report.devices_lost;
        serve_metrics().devices_lost.inc();
        std::size_t next = lanes.size();
        for (std::size_t l = 0; l < lanes.size(); ++l)
          if (lanes[l]->alive && lanes[l]->health.admit()) {
            next = l;
            break;
          }
        if (next == lanes.size()) {
          bool any_alive = false;
          for (const auto& lane : lanes) any_alive = any_alive || lane->alive;
          if (!any_alive)
            throw hw::DeviceUnavailableError(
                "ServeSupervisor: every serving lane's device has dropped "
                "out");
          break;  // alive lanes exist but none admits right now: shed
        }
        selected = next;
        ++report.failovers;
        serve_metrics().failovers.inc();
      }
    }
    if (!served) {
      ++report.shed_no_device;
      serve_metrics().shed_no_device.inc();
      continue;
    }

    ++report.admitted;
    serve_metrics().admitted.inc();
    report.max_queue_depth =
        std::max(report.max_queue_depth, outstanding.size() + 1);
    const double completion_s = start_s + outcome.latency_s;
    outstanding.push_back(completion_s);
    busy_until_s = completion_s;
    report.makespan_s = completion_s;

    const double end_to_end_s = completion_s - request.arrival_s;
    const bool missed = config_.slo.deadline_s > 0.0 &&
                        end_to_end_s > config_.slo.deadline_s;
    slo.record(end_to_end_s, start_s - request.arrival_s, missed);
    serve_metrics().latency.observe(end_to_end_s);
    trace_request(start_s, outcome.latency_s, selected);

    // Deployment accounting — the exact arithmetic of DeploymentSimulator.
    energy_sum += outcome.energy_j;
    latency_sum += outcome.latency_s;
    if (outcome.exited) {
      correct +=
          bank_.exit_at(outcome.resolved_layer).test_correct[request.sample]
              ? 1
              : 0;
      ++report.deployment.exit_histogram[outcome.resolved_layer];
    } else {
      correct += bank_.final_exit().test_correct[request.sample] ? 1 : 0;
      ++report.deployment.exit_histogram[bank_.total_layers()];
    }
    ++report.deployment.samples;
    policy.on_sample_complete(outcome.exited);

    if (outcome.fallback) {
      ++report.watchdog_fallbacks;
      serve_metrics().watchdog_fallbacks.inc();
    }
    if (outcome.transient) {
      ++report.transient_faults;
      serve_metrics().transient_faults.inc();
    }
    if (outcome.nan) {
      ++report.nan_faults;
      serve_metrics().nan_faults.inc();
    }
    if (outcome.overrun) {
      ++report.overruns;
      serve_metrics().overruns.inc();
    }
    if (mode != ServeMode::kNormal) ++report.requests_degraded;

    // Degraded-mode controller with hysteresis.
    if (degraded.enabled) {
      const bool incident = outcome.fallback || outcome.throttled;
      incident_ema = (1.0 - degraded.ema_alpha) * incident_ema +
                     degraded.ema_alpha * (incident ? 1.0 : 0.0);
      ++dwell;
      if (mode == ServeMode::kNormal && incident_ema > degraded.enter_rate) {
        mode = ServeMode::kDegraded;
        dwell = 0;
        ++report.degraded_entries;
        serve_metrics().degraded_entries.inc();
        obs::TraceSink::global().instant("degraded_enter", "serve",
                                         completion_s * 1e6, 0);
      } else if (mode == ServeMode::kDegraded &&
                 incident_ema > degraded.critical_rate) {
        mode = ServeMode::kCritical;
        dwell = 0;
        ++report.critical_entries;
        serve_metrics().critical_entries.inc();
        obs::TraceSink::global().instant("critical_enter", "serve",
                                         completion_s * 1e6, 0);
      } else if (mode != ServeMode::kNormal &&
                 incident_ema < degraded.exit_rate &&
                 dwell >= degraded.min_dwell) {
        mode = mode == ServeMode::kCritical ? ServeMode::kDegraded
                                            : ServeMode::kNormal;
        dwell = 0;
      }
    }
  }

  if (report.deployment.samples > 0)
    finalize_deployment_report(report.deployment, energy_sum, latency_sum,
                               correct, static_baseline);
  report.total_energy_j = energy_sum;
  report.final_mode = mode;
  slo.finalize(report);

  for (std::size_t l = 0; l < lanes.size(); ++l) {
    LaneReport& lane_report = report.lanes[l];
    lane_report.served = lanes[l]->served;
    lane_report.alive = lanes[l]->alive;
    lane_report.breaker = lanes[l]->health.state();
    lane_report.health = lanes[l]->health.report();
    lane_report.peak_temperature_c = lanes[l]->peak_temperature_c;
    lane_report.final_temperature_c = lanes[l]->thermal.temperature_c();
    lane_report.throttle_events = lanes[l]->thermal.throttle_events();
    report.throttle_events += lane_report.throttle_events;
  }

  // Post-run SLO / health gauges for --metrics-out snapshots. Values are a
  // pure function of the (deterministic) report.
  {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.gauge("serve.completed").set(static_cast<double>(report.completed));
    registry.gauge("serve.p50_latency_s").set(report.p50_latency_s);
    registry.gauge("serve.p95_latency_s").set(report.p95_latency_s);
    registry.gauge("serve.p99_latency_s").set(report.p99_latency_s);
    registry.gauge("serve.miss_rate").set(report.miss_rate);
    registry.gauge("serve.shed_rate").set(report.shed_rate);
    registry.gauge("serve.avg_queue_wait_s").set(report.avg_queue_wait_s);
    registry.gauge("serve.max_queue_depth")
        .set(static_cast<double>(report.max_queue_depth));
    registry.gauge("serve.final_mode")
        .set(static_cast<double>(static_cast<int>(report.final_mode)));
    std::uint64_t breaker_trips = 0;
    std::size_t lanes_alive = 0;
    for (const LaneReport& lane : report.lanes) {
      breaker_trips += lane.health.breaker_trips;
      if (lane.alive) ++lanes_alive;
    }
    registry.gauge("serve.breaker_trips")
        .set(static_cast<double>(breaker_trips));
    registry.gauge("serve.lanes_alive").set(static_cast<double>(lanes_alive));
  }
  return report;
}

std::vector<std::unique_ptr<ExitPolicy>> entropy_ladder(double threshold,
                                                        double shift,
                                                        std::size_t levels) {
  if (levels == 0)
    throw std::invalid_argument("entropy_ladder: need at least one level");
  std::vector<std::unique_ptr<ExitPolicy>> ladder;
  for (std::size_t level = 0; level < levels; ++level)
    ladder.push_back(std::make_unique<EntropyPolicy>(
        std::min(1.0, threshold + shift * static_cast<double>(level))));
  return ladder;
}

std::vector<const ExitPolicy*> ladder_view(
    const std::vector<std::unique_ptr<ExitPolicy>>& ladder) {
  std::vector<const ExitPolicy*> view;
  for (const auto& policy : ladder) view.push_back(policy.get());
  return view;
}

}  // namespace hadas::runtime::serve
