#include "runtime/serve/slo.hpp"

#include "util/statistics.hpp"

namespace hadas::runtime::serve {

std::string serve_mode_name(ServeMode mode) {
  switch (mode) {
    case ServeMode::kNormal: return "normal";
    case ServeMode::kDegraded: return "degraded";
    case ServeMode::kCritical: return "critical";
  }
  return "?";
}

void SloTracker::record(double end_to_end_s, double queue_wait_s,
                        bool missed_deadline) {
  latencies_.push_back(end_to_end_s);
  wait_sum_s += queue_wait_s;
  if (missed_deadline) ++misses_;
}

void SloTracker::finalize(ServeReport& report) const {
  report.completed = latencies_.size();
  report.deadline_misses = misses_;
  if (!latencies_.empty()) {
    report.p50_latency_s = util::percentile(latencies_, 50.0);
    report.p95_latency_s = util::percentile(latencies_, 95.0);
    report.p99_latency_s = util::percentile(latencies_, 99.0);
    report.avg_queue_wait_s =
        wait_sum_s / static_cast<double>(latencies_.size());
    report.miss_rate =
        static_cast<double>(misses_) / static_cast<double>(latencies_.size());
  }
  if (report.offered > 0)
    report.shed_rate = static_cast<double>(report.shed + report.shed_no_device) /
                       static_cast<double>(report.offered);
}

util::Json ServeReport::to_json() const {
  util::Json json;

  util::Json& dep = json["deployment"];
  dep["samples"] = deployment.samples;
  dep["accuracy"] = deployment.accuracy;
  dep["avg_energy_j"] = deployment.avg_energy_j;
  dep["avg_latency_s"] = deployment.avg_latency_s;
  dep["energy_gain"] = deployment.energy_gain;
  dep["latency_gain"] = deployment.latency_gain;
  util::Json& histogram = dep["exit_histogram"];
  histogram.make_object();
  for (const auto& [layer, count] : deployment.exit_histogram)
    histogram[std::to_string(layer)] = count;

  util::Json& admission = json["admission"];
  admission["offered"] = offered;
  admission["admitted"] = admitted;
  admission["shed"] = shed;
  admission["shed_no_device"] = shed_no_device;
  admission["max_queue_depth"] = max_queue_depth;
  admission["avg_queue_wait_s"] = avg_queue_wait_s;

  util::Json& slo = json["slo"];
  slo["completed"] = completed;
  slo["deadline_misses"] = deadline_misses;
  slo["p50_latency_s"] = p50_latency_s;
  slo["p95_latency_s"] = p95_latency_s;
  slo["p99_latency_s"] = p99_latency_s;
  slo["percentile_sample_count"] = completed;
  slo["percentiles_low_confidence"] = percentiles_low_confidence();
  slo["shed_rate"] = shed_rate;
  slo["miss_rate"] = miss_rate;

  util::Json& robust = json["robustness"];
  robust["watchdog_fallbacks"] = watchdog_fallbacks;
  robust["transient_faults"] = transient_faults;
  robust["nan_faults"] = nan_faults;
  robust["overruns"] = overruns;
  robust["failovers"] = failovers;
  robust["devices_lost"] = devices_lost;
  robust["throttle_events"] = throttle_events;
  robust["degraded_entries"] = degraded_entries;
  robust["critical_entries"] = critical_entries;
  robust["requests_degraded"] = requests_degraded;
  robust["final_mode"] = serve_mode_name(final_mode);

  json["makespan_s"] = makespan_s;
  json["total_energy_j"] = total_energy_j;

  util::Json::Array lane_array;
  for (const LaneReport& lane : lanes) {
    util::Json entry;
    entry["served"] = lane.served;
    entry["alive"] = lane.alive;
    entry["breaker"] = hw::breaker_state_name(lane.breaker);
    entry["peak_temperature_c"] = lane.peak_temperature_c;
    entry["final_temperature_c"] = lane.final_temperature_c;
    entry["throttle_events"] = lane.throttle_events;
    entry["measurements"] = lane.health.measurements;
    entry["failed_measurements"] = lane.health.failed_measurements;
    entry["breaker_trips"] = lane.health.breaker_trips;
    lane_array.push_back(std::move(entry));
  }
  json["lanes"] = util::Json(std::move(lane_array));
  return json;
}

}  // namespace hadas::runtime::serve
