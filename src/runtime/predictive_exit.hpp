#pragma once

#include <cstddef>
#include <vector>

#include "dynn/exit_bank.hpp"
#include "dynn/exit_placement.hpp"

namespace hadas::runtime {

/// Predictive-exit controller, after Li et al. ("Predictive Exit", [14] in
/// the paper): instead of cascading through every exit branch — paying each
/// branch's cost — the controller reads a cheap early signal (the FIRST
/// sampled exit's prediction entropy) and jumps straight to the exit it
/// predicts will resolve the sample, skipping the intermediate branches.
/// Knowing the exit ahead of time is also what allows frequency to be set
/// pre-emptively in [14]; here the DVFS point comes from the HADAS search.
///
/// Calibration (validation split): entropy values at the first sampled exit
/// are split into quantile buckets; each bucket is mapped to the earliest
/// sampled exit whose accuracy on that bucket's samples meets the target
/// (falling back to the backbone head).
class PredictiveExitController {
 public:
  /// Calibrates on the bank's validation split. `target_accuracy` is the
  /// per-bucket accuracy the chosen exit must reach.
  PredictiveExitController(const dynn::ExitBank& bank,
                           const dynn::ExitPlacement& placement,
                           double target_accuracy, std::size_t buckets = 8);

  /// The probe exit whose entropy drives the prediction (first sampled exit).
  std::size_t probe_layer() const { return probe_layer_; }

  /// Predicted exit layer for a TEST sample; bank.total_layers() means
  /// "run the full backbone".
  std::size_t predict(std::size_t sample) const;

  /// The bucket -> exit decision table (diagnostics/tests).
  const std::vector<std::size_t>& decision_table() const { return decisions_; }

 private:
  std::size_t bucket_of(double entropy) const;

  const dynn::ExitBank& bank_;
  std::size_t probe_layer_ = 0;
  std::vector<double> bucket_edges_;    ///< ascending entropy quantiles
  std::vector<std::size_t> decisions_;  ///< exit layer per bucket
};

}  // namespace hadas::runtime
