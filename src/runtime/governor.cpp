#include "runtime/governor.hpp"

#include <limits>
#include <stdexcept>

namespace hadas::runtime {

DvfsGovernor::DvfsGovernor(const dynn::MultiExitCostTable& costs)
    : costs_(costs) {
  const hw::DeviceSpec& device = costs_.evaluator().device();
  if (device.core_freqs_hz.empty() || device.emc_freqs_hz.empty())
    throw std::invalid_argument("DvfsGovernor: device '" + device.name +
                                "' has an empty DVFS table");
}

template <typename MeasureFn>
std::optional<hw::DvfsSetting> DvfsGovernor::scan(MeasureFn&& measure,
                                                  double deadline_s) const {
  const hw::DeviceSpec& device = costs_.evaluator().device();
  std::optional<hw::DvfsSetting> best;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < device.core_freqs_hz.size(); ++c) {
    for (std::size_t e = 0; e < device.emc_freqs_hz.size(); ++e) {
      const hw::DvfsSetting setting{c, e};
      const hw::HwMeasurement m = measure(setting);
      if (m.latency_s > deadline_s) continue;
      if (m.energy_j < best_energy) {
        best_energy = m.energy_j;
        best = setting;
      }
    }
  }
  return best;
}

std::optional<hw::DvfsSetting> DvfsGovernor::min_energy_full(
    double deadline_s) const {
  return scan([&](hw::DvfsSetting s) { return costs_.full_network(s); },
              deadline_s);
}

std::optional<hw::DvfsSetting> DvfsGovernor::min_energy_exit(
    std::size_t layer, double deadline_s) const {
  return scan([&](hw::DvfsSetting s) { return costs_.exit_path(layer, s); },
              deadline_s);
}

hw::DvfsSetting DvfsGovernor::energy_optimal_full() const {
  return *min_energy_full(std::numeric_limits<double>::infinity());
}

std::optional<hw::DvfsSetting> DvfsGovernor::fastest_sustainable_full(
    const hw::ThermalConfig& thermal) const {
  const hw::ThermalModel model(thermal);
  const hw::DeviceSpec& device = costs_.evaluator().device();
  std::optional<hw::DvfsSetting> best;
  double best_latency = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < device.core_freqs_hz.size(); ++c) {
    for (std::size_t e = 0; e < device.emc_freqs_hz.size(); ++e) {
      const hw::HwMeasurement m = costs_.full_network({c, e});
      // Back-to-back samples dissipate the average power continuously.
      if (model.steady_state_c(m.avg_power_w) >= thermal.throttle_temp_c)
        continue;
      if (m.latency_s < best_latency) {
        best_latency = m.latency_s;
        best = hw::DvfsSetting{c, e};
      }
    }
  }
  return best;
}

hw::DvfsSetting DvfsGovernor::step_down(hw::DvfsSetting from,
                                        std::size_t steps) const {
  const hw::DeviceSpec& device = costs_.evaluator().device();
  if (from.core_idx >= device.core_freqs_hz.size() ||
      from.emc_idx >= device.emc_freqs_hz.size())
    throw std::invalid_argument("DvfsGovernor::step_down: setting outside the "
                                "device's DVFS tables");
  hw::DvfsSetting down = from;
  down.core_idx = steps >= down.core_idx ? 0 : down.core_idx - steps;
  return down;
}

hw::DvfsSetting DvfsGovernor::latency_optimal_full() const {
  const hw::DeviceSpec& device = costs_.evaluator().device();
  hw::DvfsSetting best{0, 0};
  double best_latency = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < device.core_freqs_hz.size(); ++c) {
    for (std::size_t e = 0; e < device.emc_freqs_hz.size(); ++e) {
      const double latency = costs_.full_network({c, e}).latency_s;
      if (latency < best_latency) {
        best_latency = latency;
        best = {c, e};
      }
    }
  }
  return best;
}

}  // namespace hadas::runtime
