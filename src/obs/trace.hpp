#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace hadas::obs {

/// One Chrome trace_event "complete" (ph "X") event. Timestamps are
/// microseconds; `tid` is a small integer track — a thread ordinal for
/// wall-clock spans, a lane index for simulated-clock serving spans.
struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
};

/// Append-only event buffer serializing to the Chrome trace_event JSON
/// format (load the file at chrome://tracing or ui.perfetto.dev).
///
/// Two time bases feed one sink: search profiling records wall-clock spans
/// via TraceSpan (steady clock, origin = first enable() call), while the
/// serving supervisor records its *simulated* clock directly via complete()
/// — serving spans are therefore bit-identical run to run.
///
/// record paths check `enabled()` with one relaxed atomic load and return
/// immediately when tracing is off, so permanent instrumentation sites cost
/// nothing in normal runs.
class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Enabling (re)starts the wall-clock origin; disabling keeps the buffer.
  void enable();
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Record a complete event with explicit timestamps (simulated clocks).
  void complete(const char* name, const char* cat, double ts_us, double dur_us,
                std::uint32_t tid);

  /// Record an instant marker (zero-duration complete event).
  void instant(const char* name, const char* cat, double ts_us,
               std::uint32_t tid) {
    complete(name, cat, ts_us, 0.0, tid);
  }

  /// Microseconds since the wall-clock origin (the last enable() call).
  double now_us() const;

  std::size_t size() const;
  void clear();

  /// {"traceEvents": [...], "displayTimeUnit": "ms"}. Events are sorted by
  /// (ts, -dur, tid, name) so the output is stable regardless of the order
  /// concurrent recorders appended in.
  util::Json to_json() const;

  /// Pretty-printed to_json() at `path`.
  void save(const std::string& path) const;

  /// The process-wide sink used by every built-in instrumentation site.
  static TraceSink& global();

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point origin_{};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// RAII wall-clock span against the global sink: records a complete event
/// from construction to destruction on the calling thread's track. A no-op
/// (no clock read) unless both obs::enabled() and the global sink are on.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  bool active_ = false;
  double start_us_ = 0.0;
};

/// Small per-thread ordinal used as the trace track id for wall spans.
std::uint32_t trace_thread_id();

}  // namespace hadas::obs
