#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace hadas::obs {

std::uint32_t trace_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceSink::enable() {
  std::scoped_lock lock(mutex_);
  origin_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

double TraceSink::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void TraceSink::complete(const char* name, const char* cat, double ts_us,
                         double dur_us, std::uint32_t tid) {
  if (!enabled()) return;
  std::scoped_lock lock(mutex_);
  events_.push_back(TraceEvent{name, cat, ts_us, dur_us, tid});
}

std::size_t TraceSink::size() const {
  std::scoped_lock lock(mutex_);
  return events_.size();
}

void TraceSink::clear() {
  std::scoped_lock lock(mutex_);
  events_.clear();
}

util::Json TraceSink::to_json() const {
  std::vector<TraceEvent> events;
  {
    std::scoped_lock lock(mutex_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.name < b.name;
                   });
  util::Json::Array array;
  array.reserve(events.size());
  for (const TraceEvent& event : events) {
    util::Json entry;
    entry["name"] = event.name;
    entry["cat"] = event.cat;
    entry["ph"] = "X";
    entry["ts"] = event.ts_us;
    entry["dur"] = event.dur_us;
    entry["pid"] = 1;
    entry["tid"] = static_cast<std::size_t>(event.tid);
    array.push_back(std::move(entry));
  }
  util::Json json;
  json["traceEvents"] = util::Json(std::move(array));
  json["displayTimeUnit"] = "ms";
  return json;
}

void TraceSink::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TraceSink: cannot open " + path);
  out << to_json().dump(2) << "\n";
  if (!out)
    throw std::runtime_error("TraceSink: write to " + path + " failed");
}

TraceSink& TraceSink::global() {
  static TraceSink sink;
  return sink;
}

TraceSpan::TraceSpan(const char* name, const char* cat)
    : name_(name), cat_(cat) {
  if (!obs::enabled() || !TraceSink::global().enabled()) return;
  active_ = true;
  start_us_ = TraceSink::global().now_us();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceSink& sink = TraceSink::global();
  const double end_us = sink.now_us();
  sink.complete(name_, cat_, start_us_, end_us - start_us_, trace_thread_id());
}

}  // namespace hadas::obs
