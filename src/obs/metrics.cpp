#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/durable/durable_file.hpp"

namespace hadas::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Small per-thread ordinal for counter sharding and trace thread ids.
std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::atomic<std::uint64_t>& Counter::shard() {
  return cells_[thread_ordinal() % cells_.size()].v;
}

std::uint64_t Gauge::to_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::from_bits(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void Gauge::add(double v) {
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(expected, to_bits(from_bits(expected) + v),
                                      std::memory_order_relaxed))
    ;
}

void Gauge::track_max(double v) {
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  while (from_bits(expected) < v &&
         !bits_.compare_exchange_weak(expected, to_bits(v),
                                      std::memory_order_relaxed))
    ;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bucket bounds must be sorted");
  buckets_.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i)
    buckets_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  double current;
  do {
    std::memcpy(&current, &expected, sizeof(current));
    const double next = current + v;
    std::uint64_t next_bits;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (sum_bits_.compare_exchange_weak(expected, next_bits,
                                        std::memory_order_relaxed))
      break;
  } while (true);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& bucket : buckets_)
    out.push_back(bucket->load(std::memory_order_relaxed));
  return out;
}

double Histogram::sum() const {
  const std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket->store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

std::vector<double> default_time_bounds() {
  std::vector<double> bounds;
  for (double b = 1e-3; b < 600.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

util::Json MetricsRegistry::to_json() const {
  std::scoped_lock lock(mutex_);
  util::Json json;
  util::Json& counters = json["counters"];
  counters.make_object();
  for (const auto& [name, counter] : counters_)
    counters[name] = counter->value();
  util::Json& gauges = json["gauges"];
  gauges.make_object();
  for (const auto& [name, gauge] : gauges_) gauges[name] = gauge->value();
  util::Json& histograms = json["histograms"];
  histograms.make_object();
  for (const auto& [name, histogram] : histograms_) {
    util::Json entry;
    util::Json::Array bounds;
    for (double b : histogram->bounds()) bounds.push_back(util::Json(b));
    entry["bounds"] = util::Json(std::move(bounds));
    util::Json::Array counts;
    for (std::uint64_t c : histogram->counts())
      counts.push_back(util::Json(static_cast<std::size_t>(c)));
    entry["counts"] = util::Json(std::move(counts));
    entry["count"] = static_cast<std::size_t>(histogram->count());
    entry["sum"] = histogram->sum();
    histograms[name] = std::move(entry);
  }
  return json;
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string prom_number(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  // Shortest round-trip is overkill here; %.17g keeps snapshots bit-faithful.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void prom_histogram(std::string& out, const std::string& name,
                    const std::vector<double>& bounds,
                    const std::vector<std::uint64_t>& counts,
                    std::uint64_t count, double sum) {
  out += "# TYPE " + name + " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    out += name + "_bucket{le=\"" + prom_number(bounds[i]) + "\"} " +
           std::to_string(cumulative) + "\n";
  }
  out += name + "_bucket{le=\"+Inf\"} " + std::to_string(count) + "\n";
  out += name + "_sum " + prom_number(sum) + "\n";
  out += name + "_count " + std::to_string(count) + "\n";
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  return prometheus_from_json(to_json());
}

std::string MetricsRegistry::prometheus_from_json(const util::Json& snapshot) {
  std::string out;
  if (snapshot.contains("counters")) {
    for (const auto& [name, value] : snapshot.at("counters").as_object()) {
      const std::string p = prom_name(name);
      out += "# TYPE " + p + " counter\n";
      out += p + " " + std::to_string(value.as_index()) + "\n";
    }
  }
  if (snapshot.contains("gauges")) {
    for (const auto& [name, value] : snapshot.at("gauges").as_object()) {
      const std::string p = prom_name(name);
      out += "# TYPE " + p + " gauge\n";
      out += p + " " + prom_number(value.as_number()) + "\n";
    }
  }
  if (snapshot.contains("histograms")) {
    for (const auto& [name, entry] : snapshot.at("histograms").as_object()) {
      std::vector<double> bounds;
      for (const util::Json& b : entry.at("bounds").as_array())
        bounds.push_back(b.as_number());
      std::vector<std::uint64_t> counts;
      for (const util::Json& c : entry.at("counts").as_array())
        counts.push_back(c.as_index());
      if (counts.size() != bounds.size() + 1)
        throw std::invalid_argument(
            "metrics snapshot: histogram '" + name + "' has " +
            std::to_string(counts.size()) + " counts for " +
            std::to_string(bounds.size()) + " bounds");
      prom_histogram(out, prom_name(name), bounds, counts,
                     entry.at("count").as_index(), entry.at("sum").as_number());
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void export_durable_stats(MetricsRegistry& registry) {
  const util::durable::DurableStats stats = util::durable::durable_stats();
  registry.gauge("durable.writes").set(static_cast<double>(stats.writes));
  registry.gauge("durable.bytes_written")
      .set(static_cast<double>(stats.bytes_written));
  registry.gauge("durable.reads").set(static_cast<double>(stats.reads));
  registry.gauge("durable.read_failures")
      .set(static_cast<double>(stats.read_failures));
  registry.gauge("durable.chain_saves")
      .set(static_cast<double>(stats.chain_saves));
  registry.gauge("durable.chain_fallbacks")
      .set(static_cast<double>(stats.chain_fallbacks));
}

void write_metrics_file(const std::string& path) {
  export_durable_stats(MetricsRegistry::global());
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("write_metrics_file: cannot open " + path);
  out << MetricsRegistry::global().to_json().dump(2) << "\n";
  if (!out)
    throw std::runtime_error("write_metrics_file: write to " + path +
                             " failed");
}

}  // namespace hadas::obs
