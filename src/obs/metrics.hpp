#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace hadas::obs {

/// Master switch for the *timed* parts of the observability layer: scoped
/// trace spans and duration histograms read the clock only while this is on.
/// Plain counters and gauges are always live — they are relaxed atomics in
/// the style of exec::CacheStats, cheap enough for hot paths.
///
/// Observability is strictly observe-only: nothing recorded here ever feeds
/// back into a search or serve decision, so Pareto fronts and ServeReports
/// are bit-identical whether the switch is on or off (enforced by
/// ObsDeterminism tests).
bool enabled();
void set_enabled(bool on);

/// Monotonically increasing event count. Increments land on one of a few
/// cache-line-padded shards keyed by the calling thread, so concurrent hot
/// paths do not contend on a single cache line; value() sums the shards.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    shard().fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) total += cell.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Cell& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::atomic<std::uint64_t>& shard();
  std::array<Cell, 8> cells_;
};

/// Last-written (or accumulated / max-tracked) double value.
class Gauge {
 public:
  void set(double v) { bits_.store(to_bits(v), std::memory_order_relaxed); }
  /// Atomic add (CAS loop; gauges are not hot enough to need sharding).
  void add(double v);
  /// Raise the gauge to `v` if larger (peak tracking, e.g. queue depth).
  void track_max(double v);
  double value() const { return from_bits(bits_.load(std::memory_order_relaxed)); }
  void reset() { set(0.0); }

 private:
  static std::uint64_t to_bits(double v);
  static double from_bits(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0x0ULL};  // 0 bits == 0.0
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper bounds of the
/// first N buckets; one overflow bucket catches everything above the last
/// bound. Bucket counts, the total count and the value sum are all relaxed
/// atomics — observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  void reset();

 private:
  std::vector<double> bounds_;  // sorted ascending
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
};

/// Exponential default bounds for latency-style histograms, in seconds:
/// 1 ms .. ~500 s doubling.
std::vector<double> default_time_bounds();

/// Process-wide registry of named metrics. Lookup takes a mutex, so hot
/// paths should resolve their instrument once (a function-local static
/// reference) and then touch only its atomics. Instruments are never
/// deleted — returned references stay valid for the process lifetime.
///
/// Names use dotted lower-case segments ("exec.tasks_total"); counters end
/// in "_total" by convention. The Prometheus rendering maps every character
/// outside [a-zA-Z0-9_:] to '_'.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram regardless of `bounds`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Deterministically ordered snapshot (std::map keys are sorted):
  ///   {"counters": {name: n}, "gauges": {name: v},
  ///    "histograms": {name: {"bounds": [...], "counts": [...],
  ///                          "sum": s, "count": n}}}
  util::Json to_json() const;

  /// Prometheus text exposition of the current values.
  std::string to_prometheus() const;

  /// Re-render a snapshot produced by to_json() as Prometheus text (the
  /// `hadas metrics-dump --format prom` path — no live registry needed).
  static std::string prometheus_from_json(const util::Json& snapshot);

  /// Zero every registered instrument (registrations are kept). Used by
  /// tests and the overhead benchmark between runs.
  void reset();

  /// The process-wide registry every built-in instrumentation site uses.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Write the global registry's snapshot (plus the util/durable layer's
/// internal write/recovery counters, exported as gauges under "durable.*")
/// to `path` as pretty-printed JSON.
void write_metrics_file(const std::string& path);

/// Pull the durable layer's internal counters into `registry` as gauges
/// ("durable.writes", "durable.bytes_written", "durable.reads",
/// "durable.read_failures", "durable.chain_saves", "durable.chain_fallbacks").
void export_durable_stats(MetricsRegistry& registry);

}  // namespace hadas::obs
