// Deploying a searched HADAS design with real runtime controllers.
//
// The design stage optimizes under the *ideal* input-to-exit mapping; this
// example shows what happens at deployment with implementable controllers
// (entropy / confidence thresholding), where a sample pays for every exit
// branch it evaluates before stopping:
//   * sweeps the entropy threshold and prints the accuracy/energy trade-off,
//   * compares oracle vs entropy vs confidence policies,
//   * prints the exit histogram of the deployed dynamic model.
//
//   ./build/examples/runtime_deployment

#include <iostream>

#include "core/hadas_engine.hpp"
#include "data/sample_stream.hpp"
#include "runtime/deployment.hpp"
#include "supernet/baselines.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

int main() {
  using namespace hadas;

  const auto space = supernet::SearchSpace::attentive_nas();
  core::HadasConfig config;
  config.ioe.nsga.population = 30;
  config.ioe.nsga.generations = 20;
  core::HadasEngine engine(space, hw::Target::kTx2PascalGpu, config);

  // Use a mid-sized baseline backbone and let the IOE pick exits + DVFS.
  const supernet::BackboneConfig backbone =
      supernet::attentive_nas_baselines()[3].config;  // a3
  std::cout << "training exit bank and searching (x, f) for backbone a3...\n";
  const core::IoeResult ioe = engine.run_ioe(backbone);

  // The design we deploy: max energy gain at >= backbone accuracy.
  const auto& bank = engine.exit_bank(backbone);
  const core::InnerSolution* design = &ioe.pareto.front();
  for (const auto& sol : ioe.pareto) {
    if (sol.metrics.oracle_accuracy < bank.backbone_accuracy()) continue;
    if (sol.metrics.energy_gain > design->metrics.energy_gain) design = &sol;
  }
  std::cout << "deploying " << design->placement.describe() << " at core="
            << design->setting.core_idx << " emc=" << design->setting.emc_idx
            << "  (design-stage ideal energy gain "
            << util::fmt_pct(design->metrics.energy_gain, 1) << ")\n\n";

  const auto& table_costs = engine.cost_table(backbone);
  const runtime::DeploymentSimulator sim(bank, table_costs);
  const data::SampleStream stream(engine.task(), 2000, 99);

  // --- Threshold sweep. ---
  util::TextTable sweep({"entropy threshold", "accuracy", "energy mJ",
                         "energy gain", "latency ms"});
  sweep.set_title("Entropy-controller threshold sweep (cascade costs included)");
  for (double threshold : {0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9}) {
    const auto report = sim.run(design->placement, design->setting,
                                runtime::EntropyPolicy(threshold), stream);
    sweep.add_row({util::fmt_fixed(threshold, 2), util::fmt_pct(report.accuracy, 2),
                   util::fmt_fixed(report.avg_energy_j * 1e3, 1),
                   util::fmt_pct(report.energy_gain, 1),
                   util::fmt_fixed(report.avg_latency_s * 1e3, 2)});
  }
  sweep.print(std::cout);

  // --- Policy comparison at matched accuracy. ---
  const double target = bank.backbone_accuracy();
  const double calibrated = sim.calibrate_entropy_threshold(
      design->placement, design->setting, stream, target);
  std::cout << "\ncalibrated entropy threshold for accuracy >= "
            << util::fmt_pct(target, 2) << ": " << util::fmt_fixed(calibrated, 3)
            << "\n\n";

  util::TextTable cmp({"policy", "accuracy", "energy mJ", "energy gain"});
  cmp.set_title("Controller comparison on the same deployed design");
  const runtime::OraclePolicy oracle;
  const runtime::EntropyPolicy entropy(calibrated);
  const runtime::ConfidencePolicy confidence(0.55);
  for (const runtime::ExitPolicy* policy :
       {static_cast<const runtime::ExitPolicy*>(&oracle),
        static_cast<const runtime::ExitPolicy*>(&entropy),
        static_cast<const runtime::ExitPolicy*>(&confidence)}) {
    const auto report = sim.run(design->placement, design->setting, *policy, stream);
    cmp.add_row({policy->name(), util::fmt_pct(report.accuracy, 2),
                 util::fmt_fixed(report.avg_energy_j * 1e3, 1),
                 util::fmt_pct(report.energy_gain, 1)});
  }
  // Predictive Exit ([14]): probes the first exit, then jumps straight to
  // the predicted one — at most two branch evaluations per sample.
  const runtime::PredictiveExitController predictive(bank, design->placement,
                                                     target);
  const auto predictive_report = sim.run_predictive(
      design->placement, design->setting, predictive, stream);
  cmp.add_row({"predictive", util::fmt_pct(predictive_report.accuracy, 2),
               util::fmt_fixed(predictive_report.avg_energy_j * 1e3, 1),
               util::fmt_pct(predictive_report.energy_gain, 1)});
  cmp.print(std::cout);

  // --- Exit histogram under the calibrated entropy controller. ---
  const auto report =
      sim.run(design->placement, design->setting, entropy, stream);
  util::TextTable histogram({"resolved at", "samples", "share"});
  histogram.set_title("\nWhere samples exit (entropy controller)");
  for (const auto& [layer, count] : report.exit_histogram) {
    const std::string where = layer == bank.total_layers()
                                  ? "backbone head"
                                  : "exit @ layer " + std::to_string(layer);
    histogram.add_row({where, std::to_string(count),
                       util::fmt_pct(static_cast<double>(count) /
                                         static_cast<double>(report.samples),
                                     1)});
  }
  histogram.print(std::cout);
  return 0;
}
