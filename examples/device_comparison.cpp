// Hardware-awareness demo: the same search, run against the four edge
// targets, lands on *different* backbones, exits and DVFS settings — the
// core argument for treating the hardware configuration as a search
// dimension instead of a fixed constraint.
//
//   ./build/examples/device_comparison

#include <algorithm>
#include <iostream>

#include "core/hadas_engine.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

int main() {
  using namespace hadas;

  const auto space = supernet::SearchSpace::attentive_nas();

  util::TextTable table({"device", "backbone (best design)", "res", "layers",
                         "exits", "core GHz", "emc GHz", "dyn acc",
                         "energy/sample", "energy gain"},
                        {util::Align::kLeft, util::Align::kLeft,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight});
  table.set_title("Best HADAS design per device (max energy gain at <=1% from "
                  "best dynamic accuracy)");

  for (hw::Target target : hw::all_targets()) {
    core::HadasConfig config;
    config.outer_population = 16;
    config.outer_generations = 6;
    config.ioe_backbones_per_generation = 2;
    config.ioe.nsga.population = 24;
    config.ioe.nsga.generations = 15;
    config.data.train_size = 1200;
    config.bank.train.epochs = 8;

    std::cout << "searching on " << hw::target_name(target) << "...\n";
    core::HadasEngine engine(space, target, config);
    const core::HadasResult result = engine.run();

    double best_acc = 0.0;
    for (const auto& sol : result.final_pareto)
      best_acc = std::max(best_acc, sol.dynamic.oracle_accuracy);
    const core::FinalSolution* best = nullptr;
    for (const auto& sol : result.final_pareto) {
      if (sol.dynamic.oracle_accuracy < best_acc - 0.01) continue;
      if (best == nullptr || sol.dynamic.energy_gain > best->dynamic.energy_gain)
        best = &sol;
    }

    const auto& device = engine.static_evaluator().hardware().device();
    table.add_row({
        hw::target_name(target),
        best->backbone.describe().substr(0, 24) + "...",
        std::to_string(best->backbone.resolution),
        std::to_string(best->backbone.total_layers()),
        std::to_string(best->placement.count()),
        util::fmt_fixed(device.core_freqs_hz[best->setting.core_idx] / 1e9, 2),
        util::fmt_fixed(device.emc_freqs_hz[best->setting.emc_idx] / 1e9, 2),
        util::fmt_pct(best->dynamic.oracle_accuracy, 1),
        util::fmt_fixed(best->dynamic.energy_per_sample_j * 1e3, 1) + " mJ",
        util::fmt_pct(best->dynamic.energy_gain, 1),
    });
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nNote how the chosen resolution/depth and especially the DVFS\n"
               "operating point differ per device: compute-rich GPUs tolerate\n"
               "larger inputs and drop the core clock further; the Denver CPU\n"
               "prefers compact backbones with moderate clocks.\n";
  return 0;
}
