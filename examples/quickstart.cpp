// Quickstart: run a small bi-level HADAS search on the TX2 Pascal GPU and
// print the resulting (backbone, exits, DVFS) Pareto set.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/hadas_engine.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

int main() {
  using namespace hadas;

  const auto space = supernet::SearchSpace::attentive_nas();

  core::HadasConfig config;
  config.outer_population = 12;
  config.outer_generations = 4;
  config.ioe_backbones_per_generation = 2;
  config.ioe.nsga.population = 24;
  config.ioe.nsga.generations = 12;
  config.data.train_size = 1200;
  config.data.val_size = 400;
  config.data.test_size = 600;
  config.bank.train.epochs = 4;

  std::cout << "HADAS quickstart: searching " << space.log10_cardinality()
            << " log10 backbones x exits x DVFS on "
            << hw::target_name(hw::Target::kTx2PascalGpu) << "\n";

  core::HadasEngine engine(space, hw::Target::kTx2PascalGpu, config);
  const core::HadasResult result = engine.run();

  std::cout << "explored backbones: " << result.backbones.size()
            << "  (static evals: " << result.outer_evaluations
            << ", inner evals: " << result.inner_evaluations << ")\n\n";

  util::TextTable table({"backbone", "exits", "core GHz", "emc GHz",
                         "static acc", "dyn acc", "energy gain"});
  table.set_title("Final (b*, x*, f*) Pareto set");
  for (const auto& sol : result.final_pareto) {
    const auto& dev = engine.static_evaluator().hardware().device();
    table.add_row({
        sol.backbone.describe().substr(0, 28) + "...",
        sol.placement.describe(),
        util::fmt_fixed(dev.core_freqs_hz[sol.setting.core_idx] / 1e9, 2),
        util::fmt_fixed(dev.emc_freqs_hz[sol.setting.emc_idx] / 1e9, 2),
        util::fmt_pct(sol.static_eval.accuracy, 2),
        util::fmt_pct(sol.dynamic.oracle_accuracy, 2),
        util::fmt_pct(sol.dynamic.energy_gain, 1),
    });
  }
  table.print(std::cout);
  return 0;
}
