// Sustained-stream deployment under a thermal envelope: why the DVFS point
// that wins on single-shot energy also wins on long-run throughput.
//
// A dynamic model processes a back-to-back stream on the TX2 Pascal GPU
// inside a tight passive-cooling envelope. At the max-performance setting
// the package heats up and the thermal governor caps the clock; at the
// search's energy-optimal setting the board stays cool and sustains.
//
//   ./build/examples/sustained_stream

#include <iostream>

#include "data/sample_stream.hpp"
#include "runtime/deployment.hpp"
#include "runtime/governor.hpp"
#include "runtime/sustained.hpp"
#include "supernet/accuracy.hpp"
#include "supernet/baselines.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

int main() {
  using namespace hadas;

  const auto space = supernet::SearchSpace::attentive_nas();
  const supernet::CostModel cost_model(space);
  const supernet::AccuracySurrogate surrogate(cost_model);
  const supernet::BackboneConfig backbone = supernet::baseline_a6();
  const supernet::NetworkCost cost = cost_model.analyze(backbone);

  data::DataConfig data_config;
  data_config.train_size = 1500;
  const data::SyntheticTask task(data_config);
  dynn::ExitBankConfig bank_config;
  bank_config.train.epochs = 8;
  std::cout << "training exit bank for a6...\n";
  const dynn::ExitBank bank(
      task, cost,
      data::separability_from_accuracy(surrogate.accuracy(backbone)),
      bank_config);

  const hw::HardwareEvaluator evaluator(hw::make_device(hw::Target::kTx2PascalGpu));
  const dynn::MultiExitCostTable table(cost, evaluator);
  const dynn::ExitPlacement placement(cost.num_mbconv_layers(), {14, 22, 30});
  const data::SampleStream stream(task, 3000, 77);
  // Calibrate the entropy threshold so the deployed accuracy stays near the
  // backbone's (a fixed guess either tanks accuracy or never exits).
  const runtime::DeploymentSimulator calibrator(bank, table);
  const double threshold = calibrator.calibrate_entropy_threshold(
      placement, hw::default_setting(evaluator.device()), stream,
      bank.backbone_accuracy() - 0.02);
  std::cout << "calibrated entropy threshold: " << threshold << "\n";
  const runtime::EntropyPolicy policy(threshold);

  // A tight passive-cooling envelope (fanless enclosure in the sun).
  hw::ThermalConfig thermal;
  thermal.throttle_temp_c = 62.0;
  thermal.resume_temp_c = 57.0;
  thermal.thermal_resistance_c_per_w = 5.0;
  thermal.time_constant_s = 4.0;
  thermal.throttled_core_idx = 3;
  const runtime::SustainedDeployment sim(bank, table, thermal);

  // Candidate operating points: performance governor, the offline
  // energy-optimal point, and something in between.
  const runtime::DvfsGovernor governor(table);
  const hw::DvfsSetting performance = hw::default_setting(evaluator.device());
  const hw::DvfsSetting efficient = governor.energy_optimal_full();
  const hw::DvfsSetting middle{(performance.core_idx + efficient.core_idx) / 2,
                               performance.emc_idx};

  util::TextTable out({"setting (core GHz, emc GHz)", "throughput /s",
                       "energy/sample mJ", "throttled", "peak temp", "accuracy"},
                      {util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});
  out.set_title("Sustained 3000-sample stream, tight thermal envelope (TX2 GPU)");

  const auto& device = evaluator.device();
  for (const auto& [name, setting] :
       {std::pair<const char*, hw::DvfsSetting>{"performance", performance},
        {"middle", middle},
        {"energy-optimal", efficient}}) {
    const runtime::SustainedReport report =
        sim.run(placement, setting, policy, stream);
    out.add_row({std::string(name) + " (" +
                     util::fmt_fixed(device.core_freqs_hz[setting.core_idx] / 1e9, 2) +
                     ", " +
                     util::fmt_fixed(device.emc_freqs_hz[setting.emc_idx] / 1e9, 2) +
                     ")",
                 util::fmt_fixed(report.throughput_sps, 1),
                 util::fmt_fixed(report.total_energy_j /
                                     static_cast<double>(report.samples) * 1e3,
                                 1),
                 util::fmt_pct(report.throttled_fraction, 1),
                 util::fmt_fixed(report.peak_temperature_c, 1) + " C",
                 util::fmt_pct(report.accuracy, 1)});
  }
  out.print(std::cout);
  std::cout << "\nUnder a tight envelope the performance governor spends much of\n"
               "the stream throttled to a LOWER clock than the energy-optimal\n"
               "point runs at voluntarily — paying peak-power heat for none of\n"
               "the sustained throughput. Joint (x, f) designs from HADAS pick\n"
               "the cool point at design time.\n";
  return 0;
}
