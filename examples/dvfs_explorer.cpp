// DVFS landscape explorer: prints the full (core frequency x EMC frequency)
// energy surface of a model on a device, for the static network and for an
// early-exit path — showing why the energy-optimal operating point is
// interior and workload-dependent (the structure the F subspace search
// exploits).
//
//   ./build/examples/dvfs_explorer

#include <iostream>

#include "dynn/multi_exit_cost.hpp"
#include "hw/evaluator.hpp"
#include "supernet/baselines.hpp"
#include "util/strutil.hpp"

using namespace hadas;

namespace {
void print_surface(const dynn::MultiExitCostTable& table,
                   const hw::DeviceSpec& device, bool exit_path) {
  std::cout << (exit_path ? "\n-- energy (mJ), path exiting after layer 8 --\n"
                          : "\n-- energy (mJ), full static network --\n");
  std::cout << "core\\emc ";
  for (std::size_t e = 0; e < device.emc_freqs_hz.size(); ++e)
    std::cout << util::fmt_fixed(device.emc_freqs_hz[e] / 1e9, 2) << "  ";
  std::cout << '\n';

  double best = 1e18;
  std::size_t best_c = 0, best_e = 0;
  for (std::size_t c = 0; c < device.core_freqs_hz.size(); ++c) {
    std::cout << util::fmt_fixed(device.core_freqs_hz[c] / 1e9, 2) << "     ";
    for (std::size_t e = 0; e < device.emc_freqs_hz.size(); ++e) {
      const hw::HwMeasurement m = exit_path
                                      ? table.exit_path(8, {c, e})
                                      : table.full_network({c, e});
      if (m.energy_j < best) {
        best = m.energy_j;
        best_c = c;
        best_e = e;
      }
      std::cout << util::fmt_fixed(m.energy_j * 1e3, 0) << "   ";
    }
    std::cout << '\n';
  }
  std::cout << "optimum: " << util::fmt_fixed(best * 1e3, 1) << " mJ at core "
            << util::fmt_fixed(device.core_freqs_hz[best_c] / 1e9, 2)
            << " GHz, emc "
            << util::fmt_fixed(device.emc_freqs_hz[best_e] / 1e9, 2) << " GHz\n";
}
}  // namespace

int main() {
  const auto space = supernet::SearchSpace::attentive_nas();
  const supernet::CostModel cost_model(space);
  const supernet::NetworkCost cost = cost_model.analyze(supernet::baseline_a6());

  for (hw::Target target :
       {hw::Target::kTx2PascalGpu, hw::Target::kDenverCpu}) {
    const hw::HardwareEvaluator evaluator(hw::make_device(target));
    const dynn::MultiExitCostTable table(cost, evaluator);
    const auto& device = evaluator.device();
    std::cout << "==== " << device.name << ", backbone a6 ====\n";
    print_surface(table, device, /*exit_path=*/false);
    print_surface(table, device, /*exit_path=*/true);
    const auto def = hw::default_setting(device);
    std::cout << "default (max-frequency) energy: full "
              << util::fmt_fixed(table.full_network(def).energy_j * 1e3, 1)
              << " mJ, exit@8 "
              << util::fmt_fixed(table.exit_path(8, def).energy_j * 1e3, 1)
              << " mJ\n\n";
  }
  std::cout << "Takeaway: the optimum moves when the workload changes (full vs\n"
               "early-exit path) and across devices — a fixed frequency chosen\n"
               "at design time is suboptimal, which is why HADAS searches F\n"
               "jointly with the exits.\n";
  return 0;
}
