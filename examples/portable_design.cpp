// Fleet deployment: search ONE dynamic design (backbone + exits) that works
// across all four edge targets, with the DVFS point tuned per device — a
// cross-device extension of HADAS for heterogeneous fleets where shipping a
// different model per device class is operationally expensive.
//
//   ./build/examples/portable_design

#include <iostream>

#include "core/multi_device.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

int main() {
  using namespace hadas;

  const auto space = supernet::SearchSpace::attentive_nas();
  core::MultiDeviceConfig config;
  config.outer_population = 16;
  config.outer_generations = 5;
  config.inner_backbones = 2;
  config.inner_nsga.population = 24;
  config.inner_nsga.generations = 14;
  config.data.train_size = 1500;
  config.bank.train.epochs = 8;

  std::cout << "joint search for one (backbone, exits) across 4 devices...\n";
  core::MultiDeviceEngine engine(space, config);
  const core::MultiDeviceResult result = engine.run();

  std::cout << "static evals: " << result.static_evaluations
            << ", joint inner evals: " << result.inner_evaluations
            << ", portable Pareto designs: " << result.pareto.size() << "\n\n";

  // The max-accuracy portable design, in detail.
  const core::MultiDeviceSolution* pick = &result.pareto.front();
  for (const auto& sol : result.pareto)
    if (sol.oracle_accuracy > pick->oracle_accuracy) pick = &sol;

  std::cout << "portable design: " << pick->backbone.describe().substr(0, 40)
            << "...\n  exits " << pick->placement.describe() << ", dyn acc "
            << util::fmt_pct(pick->oracle_accuracy, 2) << ", worst-device gain "
            << util::fmt_pct(pick->worst_gain, 1) << "\n\n";

  util::TextTable table({"device", "core GHz", "emc GHz", "energy/sample",
                         "energy gain"},
                        {util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight});
  table.set_title("Per-device operating points of the portable design");
  const auto targets = engine.targets();
  for (std::size_t d = 0; d < targets.size(); ++d) {
    const auto device = hw::make_device(targets[d]);
    table.add_row({
        hw::target_name(targets[d]),
        util::fmt_fixed(device.core_freqs_hz[pick->settings[d].core_idx] / 1e9, 2),
        util::fmt_fixed(device.emc_freqs_hz[pick->settings[d].emc_idx] / 1e9, 2),
        util::fmt_fixed(pick->per_device[d].energy_per_sample_j * 1e3, 1) + " mJ",
        util::fmt_pct(pick->per_device[d].energy_gain, 1),
    });
  }
  table.print(std::cout);
  std::cout << "\nThe same exits serve every device; only the frequency pair\n"
               "changes — the GPU targets drop their core clocks further than\n"
               "the CPUs, and the memory-bound Denver leans on a low EMC point.\n";
  return 0;
}
