// Runtime distribution drift: what happens to a deployed dynamic model when
// the inputs get harder over time ("in the wild" operation), and how an
// adaptive exit controller compensates.
//
// A fixed entropy threshold is calibrated on the easy regime; as the stream
// hardens, accuracy collapses while energy stays flat — hard inputs exit
// CONFIDENTLY WRONG (silent failure). The adaptive controller stabilizes
// the only label-free signal available (the exit rate), keeping the energy
// envelope predictable; recovering accuracy needs drift detection beyond
// any exit controller.
//
//   ./build/examples/drift_adaptation

#include <iostream>

#include "data/sample_stream.hpp"
#include "runtime/deployment.hpp"
#include "supernet/accuracy.hpp"
#include "supernet/baselines.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

int main() {
  using namespace hadas;

  const auto space = supernet::SearchSpace::attentive_nas();
  const supernet::CostModel cost_model(space);
  const supernet::AccuracySurrogate surrogate(cost_model);
  const supernet::BackboneConfig backbone =
      supernet::attentive_nas_baselines()[2].config;  // a2
  const supernet::NetworkCost cost = cost_model.analyze(backbone);

  data::DataConfig data_config;
  data_config.train_size = 1500;
  const data::SyntheticTask task(data_config);
  dynn::ExitBankConfig bank_config;
  bank_config.train.epochs = 8;
  std::cout << "training exit bank for a2...\n";
  const dynn::ExitBank bank(
      task, cost,
      data::separability_from_accuracy(surrogate.accuracy(backbone)),
      bank_config);

  const hw::HardwareEvaluator evaluator(hw::make_device(hw::Target::kTx2PascalGpu));
  const dynn::MultiExitCostTable table(cost, evaluator);
  const runtime::DeploymentSimulator sim(bank, table);
  const auto setting = hw::default_setting(evaluator.device());
  const dynn::ExitPlacement placement(cost.num_mbconv_layers(), {6, 10, 14});

  // The stream ramps from the easiest to the hardest inputs.
  const auto stream =
      data::drifting_stream(task, 2400, data::DriftPattern::kRampUp, 42);

  // Calibrate a fixed threshold on the EASY third (what a lab calibration
  // on clean data would produce).
  std::vector<std::size_t> easy(stream.indices().begin(),
                                stream.indices().begin() + 800);
  const data::SampleStream easy_stream(task, easy);
  const double threshold = sim.calibrate_entropy_threshold(
      placement, setting, easy_stream, bank.backbone_accuracy() + 0.05);
  std::cout << "threshold calibrated on the easy regime: "
            << util::fmt_fixed(threshold, 3) << "\n\n";

  // Measure the easy-regime exit rate; the adaptive controller will hold it.
  const runtime::EntropyPolicy fixed(threshold);
  const auto easy_report = sim.run(placement, setting, fixed, easy_stream);
  auto exit_rate_of = [&](const runtime::DeploymentReport& report) {
    const auto it = report.exit_histogram.find(cost.num_mbconv_layers());
    const std::size_t full = it == report.exit_histogram.end() ? 0 : it->second;
    return 1.0 - static_cast<double>(full) / static_cast<double>(report.samples);
  };
  const double target_rate = exit_rate_of(easy_report);
  const runtime::AdaptiveEntropyPolicy adaptive(threshold, target_rate, 0.02);
  std::cout << "easy-regime early-exit rate: " << util::fmt_pct(target_rate, 1)
            << " (the adaptive controller's target)\n\n";

  util::TextTable out({"stream phase", "policy", "accuracy", "exit rate",
                       "energy/sample", "threshold now"},
                      {util::Align::kLeft, util::Align::kLeft,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});
  out.set_title("Ramp-up drift: easy -> hard inputs (TX2 GPU, backbone a2)");

  const char* phases[] = {"easy (0-800)", "middle (800-1600)", "hard (1600-2400)"};
  for (int phase = 0; phase < 3; ++phase) {
    std::vector<std::size_t> slice(
        stream.indices().begin() + phase * 800,
        stream.indices().begin() + (phase + 1) * 800);
    const data::SampleStream phase_stream(task, slice);
    const auto fixed_report = sim.run(placement, setting, fixed, phase_stream);
    const auto adaptive_report =
        sim.run(placement, setting, adaptive, phase_stream);
    out.add_row({phases[phase], "fixed", util::fmt_pct(fixed_report.accuracy, 1),
                 util::fmt_pct(exit_rate_of(fixed_report), 1),
                 util::fmt_fixed(fixed_report.avg_energy_j * 1e3, 1) + " mJ",
                 util::fmt_fixed(threshold, 3)});
    out.add_row({phases[phase], "adaptive",
                 util::fmt_pct(adaptive_report.accuracy, 1),
                 util::fmt_pct(exit_rate_of(adaptive_report), 1),
                 util::fmt_fixed(adaptive_report.avg_energy_j * 1e3, 1) + " mJ",
                 util::fmt_fixed(adaptive.threshold(), 3)});
  }
  out.print(std::cout);
  std::cout << "\nTwo lessons the oracle-mapped design stage cannot see:\n"
               "  1. drifted (hard) inputs often exit CONFIDENTLY WRONG — the\n"
               "     dynamic model fails silently instead of slowing down, so\n"
               "     accuracy collapses while energy stays flat;\n"
               "  2. without labels a runtime controller can only stabilize\n"
               "     observable signals — the adaptive policy holds the exit\n"
               "     rate, keeping the energy envelope predictable, but cannot\n"
               "     recover accuracy. Drift detection needs other machinery.\n";
  return 0;
}
