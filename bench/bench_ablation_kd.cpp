// Ablation (beyond the paper): value of the knowledge-distillation term in
// the hybrid exit-training loss of eq. (4). Trains the exit bank of one
// backbone with the KD term enabled vs disabled and compares per-depth exit
// accuracy (N_i) and the oracle (union) dynamic accuracy.

#include <iostream>

#include "bench/common.hpp"
#include "dynn/exit_bank.hpp"
#include "supernet/baselines.hpp"
#include "util/csv.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;

int main() {
  const auto space = supernet::SearchSpace::attentive_nas();
  const supernet::CostModel cost_model(space);
  const supernet::AccuracySurrogate surrogate(cost_model);
  const supernet::BackboneConfig backbone = supernet::baseline_a6();
  const supernet::NetworkCost cost = cost_model.analyze(backbone);
  const double separability =
      data::separability_from_accuracy(surrogate.accuracy(backbone));

  core::HadasConfig config = bench::experiment_config();
  const data::SyntheticTask task(config.data);

  std::cout << "=== Ablation: exit training with vs without KD (backbone a6) ===\n\n";

  dynn::ExitBankConfig with_kd = config.bank;
  with_kd.train.kd_weight = 1.0;
  dynn::ExitBankConfig without_kd = config.bank;
  without_kd.train.kd_weight = 0.0;

  std::cout << "training exit bank with KD...\n";
  const dynn::ExitBank bank_kd(task, cost, separability, with_kd);
  std::cout << "training exit bank without KD...\n";
  const dynn::ExitBank bank_plain(task, cost, separability, without_kd);

  util::TextTable table({"exit layer", "depth frac", "N_i with KD", "N_i w/o KD",
                         "delta"},
                        {util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight});
  util::CsvWriter csv(bench::out_dir() + "/ablation_kd.csv",
                      {"layer", "depth_fraction", "n_with_kd", "n_without_kd"});

  double gain_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t layer : bank_kd.eligible_layers()) {
    const auto& with = bank_kd.exit_at(layer);
    const auto& without = bank_plain.exit_at(layer);
    // Print every third exit to keep the table compact.
    if (count % 3 == 0)
      table.add_row({std::to_string(layer), util::fmt_fixed(with.depth_fraction, 3),
                     util::fmt_pct(with.val_accuracy, 2),
                     util::fmt_pct(without.val_accuracy, 2),
                     util::fmt_fixed((with.val_accuracy - without.val_accuracy) * 100, 2)});
    csv.row({util::fmt_fixed(static_cast<double>(layer), 0),
             util::fmt_fixed(with.depth_fraction, 4),
             util::fmt_fixed(with.val_accuracy, 4),
             util::fmt_fixed(without.val_accuracy, 4)});
    gain_sum += with.val_accuracy - without.val_accuracy;
    ++count;
  }
  table.print(std::cout);

  const auto all = bank_kd.eligible_layers();
  std::cout << "\nmean N_i delta (KD - plain): "
            << util::fmt_fixed(gain_sum / static_cast<double>(count) * 100, 2)
            << " points over " << count << " exits\n"
            << "oracle accuracy, all exits sampled: with KD "
            << util::fmt_pct(bank_kd.oracle_accuracy(all), 2) << ", without "
            << util::fmt_pct(bank_plain.oracle_accuracy(all), 2) << "\n";
  return 0;
}
