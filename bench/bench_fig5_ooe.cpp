// Figure 5, top row: static (OOE) Pareto fronts of HADAS vs the AttentiveNAS
// baselines a0..a6 on the four hardware settings. Points are backbones in
// (energy, accuracy) space under static deployment at default DVFS.
//
// Paper shape to reproduce: the HADAS fronts generally dominate the
// baselines on all four devices; e.g. on the AGX Volta GPU a backbone
// dominates a6 with ~33% less energy at the same accuracy, and another
// dominates a1 with ~2.3% higher accuracy at the same energy.

#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "supernet/baselines.hpp"
#include "util/csv.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;

int main() {
  const auto space = supernet::SearchSpace::attentive_nas();

  std::cout << "=== Figure 5 (top): OOE static Pareto fronts on 4 devices ===\n";

  for (hw::Target target : hw::all_targets()) {
    core::HadasConfig config = bench::experiment_config();
    // The top row only needs the static exploration; skip the inner engines.
    config.ioe_backbones_per_generation = 0;
    core::HadasEngine engine(space, target, config);
    const core::HadasResult result = engine.run();

    const std::string slug = hw::target_name(target);
    std::cout << "\n--- " << slug << " ---\n";

    util::CsvWriter csv(
        bench::out_dir() + "/fig5_ooe_" +
            util::to_lower(slug.substr(0, 3)) + (slug.find("GPU") != std::string::npos ? "_gpu" : "_cpu") + ".csv",
        {"source", "energy_mj", "accuracy", "on_front"});

    // HADAS explored backbones + front.
    for (std::size_t i = 0; i < result.backbones.size(); ++i) {
      const auto& b = result.backbones[i];
      const bool on_front =
          std::find(result.static_front.begin(), result.static_front.end(), i) !=
          result.static_front.end();
      csv.row({std::string("hadas"), util::fmt_fixed(b.static_eval.energy_j * 1e3, 3),
               util::fmt_fixed(b.static_eval.accuracy, 4), on_front ? "1" : "0"});
    }

    // Baselines on the same device.
    util::TextTable table({"model", "accuracy", "energy mJ", "dominated by HADAS front?"},
                          {util::Align::kLeft, util::Align::kRight,
                           util::Align::kRight, util::Align::kRight});
    std::size_t dominated = 0;
    std::vector<supernet::Baseline> baselines = supernet::attentive_nas_baselines();
    for (const auto& baseline : baselines) {
      const core::StaticEval s = engine.static_evaluator().evaluate(baseline.config);
      csv.row({baseline.name, util::fmt_fixed(s.energy_j * 1e3, 3),
               util::fmt_fixed(s.accuracy, 4), "0"});
      bool is_dominated = false;
      for (std::size_t idx : result.static_front) {
        const auto& f = result.backbones[idx].static_eval;
        if (f.accuracy >= s.accuracy && f.energy_j <= s.energy_j &&
            (f.accuracy > s.accuracy || f.energy_j < s.energy_j)) {
          is_dominated = true;
          break;
        }
      }
      dominated += is_dominated ? 1 : 0;
      table.add_row({baseline.name, util::fmt_pct(s.accuracy, 2),
                     util::fmt_fixed(s.energy_j * 1e3, 1),
                     is_dominated ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "HADAS front size: " << result.static_front.size() << " of "
              << result.backbones.size() << " explored; baselines dominated: "
              << dominated << "/7\n";

    // Headline numbers in the style of the paper's AGX example.
    for (const auto& baseline : baselines) {
      if (baseline.name != "a6" && baseline.name != "a1") continue;
      const core::StaticEval s = engine.static_evaluator().evaluate(baseline.config);
      double best_energy_cut = 0.0, best_acc_gain = 0.0;
      for (std::size_t idx : result.static_front) {
        const auto& f = result.backbones[idx].static_eval;
        if (f.accuracy >= s.accuracy - 0.002)
          best_energy_cut = std::max(best_energy_cut, 1.0 - f.energy_j / s.energy_j);
        if (f.energy_j <= s.energy_j * 1.002)
          best_acc_gain = std::max(best_acc_gain, f.accuracy - s.accuracy);
      }
      std::cout << "  vs " << baseline.name << ": up to "
                << util::fmt_pct(best_energy_cut, 1)
                << " energy reduction at iso-accuracy, up to "
                << util::fmt_pct(best_acc_gain, 2)
                << " accuracy at iso-energy\n";
    }
  }
  std::cout << "\n(paper: on AGX, a6 dominated at ~33% less energy; a1 at +2.34% accuracy)\n";
  return 0;
}
