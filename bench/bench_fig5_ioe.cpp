// Figure 5, bottom row: dynamic (IOE) exploration clouds and Pareto fronts —
// HADAS vs the budget-matched "optimized baselines" (a0..a6 run through the
// same IOE) — on the four hardware settings. Plane: x = energy efficiency
// gain under ideal mapping (early exiting + DVFS vs the static backbone at
// default DVFS), y = average N_i of the sampled exits (eq. 6).
//
// Paper shape to reproduce: HADAS dominates the majority of the optimized
// baselines (average ratio of dominance 58.4%), and reaches more extreme
// Pareto points (e.g. 63% vs 52% max energy gain on the Carmel CPU).

#include <algorithm>
#include <iostream>

#include "bench/fig5_data.hpp"
#include "core/pareto.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;

int main() {
  std::cout << "=== Figure 5 (bottom): IOE dynamic fronts on 4 devices ===\n";

  util::TextTable table({"device", "pts H", "pts B", "front H", "front B",
                         "max gain H", "max gain B", "RoD H", "RoD B"},
                        {util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight});
  table.set_title("HADAS (H) vs optimized baselines (B), ideal-mapping plane");

  double rod_sum = 0.0;
  for (hw::Target target : hw::all_targets()) {
    std::cout << "\n--- " << hw::target_name(target) << " ---\n";
    const bench::DeviceIoeData data = bench::device_ioe_data(target);
    const auto front_h = bench::front_of(data.hadas);
    const auto front_b = bench::front_of(data.baseline);

    auto objs = [](const std::vector<bench::IoePoint>& pts) {
      std::vector<core::Objectives> o;
      for (const auto& p : pts) o.push_back({p.energy_gain, p.mean_n});
      return o;
    };
    const double c_hb = core::ratio_of_dominance(objs(front_h), objs(front_b));
    const double c_bh = core::ratio_of_dominance(objs(front_b), objs(front_h));
    rod_sum += c_hb;

    auto max_gain = [](const std::vector<bench::IoePoint>& pts) {
      double g = 0.0;
      for (const auto& p : pts) g = std::max(g, p.energy_gain);
      return g;
    };

    table.add_row({hw::target_name(target), std::to_string(data.hadas.size()),
                   std::to_string(data.baseline.size()),
                   std::to_string(front_h.size()), std::to_string(front_b.size()),
                   util::fmt_pct(max_gain(front_h), 1),
                   util::fmt_pct(max_gain(front_b), 1), util::fmt_pct(c_hb, 1),
                   util::fmt_pct(c_bh, 1)});
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\naverage ratio of dominance RoD(HADAS over baselines) = "
            << util::fmt_pct(rod_sum / 4.0, 1) << "  (paper: 58.4%)\n"
            << "point clouds saved under " << bench::out_dir()
            << "/fig5_points_*.csv\n";
  return 0;
}
