// Multi-host transport bench: the same K=2 island search run (a) inline
// (no network at all — the byte-identity reference) and (b) over the
// dist-net stack, coordinator and both NetWorkers cooperatively stepped
// across the deterministic in-process FakeNetwork. The delta between the
// two wall times is the full cost of the resumable session layer: framing,
// chunking, CRC, session journals, save-before-ack journaling and the
// migrant push/upload round trips.
//
// Exit code 1 if the net-mode merged front is not byte-identical to the
// inline reference — the bench doubles as a correctness gate in CI.
//
// Deterministic: fixed seed, fixed topology, single-threaded stepping.

#include <chrono>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "dist/coordinator.hpp"
#include "dist/net_transport.hpp"
#include "dist/worker.hpp"
#include "net/fake_socket.hpp"

namespace hadas {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

dist::DistSpec bench_spec() {
  dist::DistSpec spec;
  spec.device = "tx2-gpu";
  spec.space = "attentive";
  spec.outer_population = bench::paper_budget() ? 16 : 8;
  spec.outer_generations = bench::paper_budget() ? 8 : 4;
  spec.ioe_backbones_per_generation = 1;
  spec.ioe_population = 8;
  spec.ioe_generations = bench::paper_budget() ? 8 : 4;
  spec.seed = 20230417;
  spec.train_size = bench::paper_budget() ? 600 : 200;
  spec.epochs = 2;
  spec.islands = 2;
  spec.migration_every = 2;
  spec.migrants = 2;
  return spec;
}

}  // namespace
}  // namespace hadas

int main() {
  using namespace hadas;
  const std::string out = bench::out_dir();
  const dist::DistSpec spec = bench_spec();
  util::Json doc;

  std::cout << "== dist-net transport overhead (K=2) ==\n";

  // (a) Inline reference: no transport at all.
  const std::string inline_dir = out + "/dist_net_inline";
  std::filesystem::remove_all(inline_dir);
  dist::DistOptions inline_options;
  inline_options.spawn = false;
  auto start = std::chrono::steady_clock::now();
  const dist::DistReport inline_report =
      dist::DistCoordinator(spec, inline_dir, inline_options).run();
  const double inline_wall = seconds_since(start);
  const std::string reference = inline_report.merged.dump(2);
  std::cout << "  inline:   " << inline_wall << " s, front "
            << inline_report.merged.at("final_pareto").size() << "\n";

  // (b) The same search over the dist-net stack on the fake loopback.
  const std::string net_dir = out + "/dist_net_loopback";
  std::filesystem::remove_all(net_dir);
  auto network = std::make_shared<net::FakeNetwork>();
  net::FakeSocketHandler handler(network);
  dist::DistOptions net_options;
  net_options.listen = util::HostPort{"coord", 7600};
  net_options.socket_handler = &handler;
  net_options.heartbeat_ms = 60000;
  net_options.poll_ms = 1;
  net_options.log = [](const std::string&) {};
  dist::DistReport net_report;
  dist::NetTransport coordinator(spec, net_dir + "/coord", net_options,
                                 [](const std::string&) {});
  coordinator.start();
  std::vector<std::unique_ptr<dist::NetWorker>> workers;
  for (std::size_t island = 0; island < spec.islands; ++island) {
    dist::NetWorkerConfig config;
    config.connect = *net_options.listen;
    config.island = island;
    config.state_dir = net_dir + "/worker" + std::to_string(island);
    config.beat_every_ms = 0;
    workers.push_back(std::make_unique<dist::NetWorker>(&handler, config));
  }
  start = std::chrono::steady_clock::now();
  bool complete = false;
  for (std::size_t tick = 0; tick < 1000000 && !complete; ++tick) {
    coordinator.step(net_report);
    complete = coordinator.finished();
    for (auto& worker : workers) {
      if (!worker->done()) worker->step();
      complete = complete && worker->done();
    }
  }
  const double net_wall = seconds_since(start);
  const std::string merged =
      dist::merge_islands(spec, net_dir + "/coord").dump(2);
  std::cout << "  dist-net: " << net_wall << " s (overhead "
            << (net_wall - inline_wall) << " s, "
            << (inline_wall > 0 ? 100.0 * (net_wall - inline_wall) / inline_wall
                                : 0.0)
            << "%)\n";

  // dist.net.* counters accumulated by the run.
  const auto& metrics = dist::dist_net_metrics();
  std::cout << "  migrant sets: " << metrics.migrant_sets_sent.value()
            << " uploaded, " << metrics.migrant_sets_received.value()
            << " received, " << metrics.migrant_sets_replayed.value()
            << " replayed\n"
            << "  sessions: " << metrics.sessions_resumed.value()
            << " resumed, " << metrics.reconnects.value() << " reconnects, "
            << metrics.refusals.value() << " refusals, "
            << metrics.quarantines.value() << " quarantines\n";

  doc["inline_wall_s"] = util::Json(inline_wall);
  doc["net_wall_s"] = util::Json(net_wall);
  doc["migrant_sets_sent"] =
      util::Json(static_cast<std::size_t>(metrics.migrant_sets_sent.value()));
  doc["byte_identical"] = util::Json(complete && merged == reference);
  bench::write_result_json(out + "/dist_net.json", doc);

  if (!complete || merged != reference) {
    std::cerr << "FAIL: dist-net merged front diverged from the inline "
                 "reference\n";
    return 1;
  }
  std::cout << "  byte-identity: net-mode merged front == inline reference\n";
  return 0;
}
