// Island-scaling bench for the distributed search layer (src/dist): the
// same search budget evolved as K = 1, 2, 4 islands (inline coordinator —
// no subprocesses, so the numbers isolate partitioning + migration + merge
// cost from process supervision), plus micro-timings of the two merge-path
// primitives (select_migrants over a round-boundary checkpoint and
// merge_islands over the finished workdir).
//
// Deterministic: fixed seed, fixed topology; the merged front sizes and
// migrant counts printed here are stable across runs and machines.

#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/serialize.hpp"
#include "dist/coordinator.hpp"
#include "util/durable/checkpoint_chain.hpp"

namespace hadas {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

dist::DistSpec bench_spec() {
  dist::DistSpec spec;
  spec.device = "tx2-gpu";
  spec.space = "attentive";
  spec.outer_population = bench::paper_budget() ? 16 : 8;
  spec.outer_generations = bench::paper_budget() ? 8 : 4;
  spec.ioe_backbones_per_generation = 1;
  spec.ioe_population = 8;
  spec.ioe_generations = bench::paper_budget() ? 8 : 4;
  spec.seed = 20230417;
  spec.train_size = bench::paper_budget() ? 600 : 200;
  spec.epochs = 2;
  spec.migration_every = 2;
  spec.migrants = 2;
  return spec;
}

}  // namespace
}  // namespace hadas

int main() {
  using namespace hadas;
  const std::string out = bench::out_dir();
  util::Json doc;
  util::Json rows;
  util::Json::Array& row_list = rows.make_array();

  std::cout << "== dist island scaling (inline coordinator) ==\n";
  std::string workdir_k2;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    dist::DistSpec spec = bench_spec();
    spec.islands = k;
    const std::string workdir = out + "/dist_k" + std::to_string(k);
    std::filesystem::remove_all(workdir);
    if (k == 2) workdir_k2 = workdir;

    dist::DistOptions options;
    options.spawn = false;
    const auto start = std::chrono::steady_clock::now();
    const dist::DistReport report =
        dist::DistCoordinator(spec, workdir, options).run();
    const double wall = seconds_since(start);

    const std::size_t front = report.merged.at("final_pareto").size();
    std::cout << "  K=" << k << ": " << wall << " s, front " << front
              << ", migrants exchanged " << report.migrants_exchanged << "\n";
    util::Json row;
    row["islands"] = util::Json(k);
    row["wall_s"] = util::Json(wall);
    row["front"] = util::Json(front);
    row["migrants_exchanged"] = util::Json(report.migrants_exchanged);
    row_list.push_back(row);
  }
  doc["island_scaling"] = rows;

  // Micro-timings over the K=2 workdir the scaling loop just produced.
  {
    const dist::DistSpec spec = [] {
      dist::DistSpec s = bench_spec();
      s.islands = 2;
      return s;
    }();
    const auto space = dist::spec_space(spec);
    const util::durable::CheckpointChain chain(
        dist::chain_path(workdir_k2, 0), spec.checkpoint_keep);
    const auto loaded = core::load_checkpoint_chain(chain);
    if (!loaded.has_value()) {
      std::cerr << "bench_dist: K=2 chain unexpectedly empty\n";
      return 1;
    }

    constexpr std::size_t kReps = 200;
    auto start = std::chrono::steady_clock::now();
    std::size_t sink = 0;
    for (std::size_t i = 0; i < kReps; ++i)
      sink += dist::select_migrants(space, spec, loaded->checkpoint).size();
    const double select_us = seconds_since(start) / kReps * 1e6;

    start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kReps; ++i)
      sink += dist::merge_islands(spec, workdir_k2).at("final_pareto").size();
    const double merge_us = seconds_since(start) / kReps * 1e6;

    std::cout << "== merge-path primitives (K=2 workdir) ==\n"
              << "  select_migrants: " << select_us << " us/call\n"
              << "  merge_islands:   " << merge_us << " us/call"
              << "  (sink " << sink << ")\n";
    util::Json micro;
    micro["select_migrants_us"] = util::Json(select_us);
    micro["merge_islands_us"] = util::Json(merge_us);
    doc["merge_primitives"] = micro;
  }

  bench::write_result_json(out + "/dist.json", doc);
  std::cout << "wrote " << out << "/dist.json\n";
  return 0;
}
