// Overhead bench for the obs/ layer: the bench_parallel_scaling workload
// (fixed-seed HadasEngine::run) twice with observability fully off and
// twice fully on (metrics switch + trace sink), interleaved OFF/ON/OFF/ON
// to cancel thermal / cache drift. Reports the on-vs-off wall-clock delta
// (budget: < 3%) and checks the fronts are bit-identical — the hard
// observe-only contract.
//
// Exit status reflects only the fingerprint check: wall-clock overhead on
// a noisy shared container is reported, not enforced (CI containers
// timeslice one core and a 3% delta is within run-to-run noise there).

#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/hadas_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/strutil.hpp"

namespace hadas {
namespace {

/// Same FNV-1a front fingerprint as bench_parallel_scaling: equal values
/// <=> bit-identical final Pareto sets.
std::uint64_t fingerprint(const core::HadasResult& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  auto mix_double = [&](double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(result.final_pareto.size());
  for (const core::FinalSolution& sol : result.final_pareto) {
    for (std::uint8_t bit : sol.placement.mask()) mix(bit);
    mix(sol.setting.core_idx);
    mix(sol.setting.emc_idx);
    mix_double(sol.dynamic.score_eq5);
    mix_double(sol.dynamic.energy_gain);
    mix_double(sol.dynamic.oracle_accuracy);
    mix_double(sol.static_eval.latency_s);
    mix_double(sol.static_eval.energy_j);
  }
  for (std::size_t idx : result.static_front) mix(idx);
  return h;
}

core::HadasConfig workload_config() {
  core::HadasConfig config = bench::experiment_config();
  if (!bench::paper_budget()) {
    // The bench_parallel_scaling workload, so the overhead number is
    // directly comparable to that bench's serial row.
    config.outer_population = 12;
    config.outer_generations = 4;
    config.ioe_backbones_per_generation = 4;
    config.ioe.nsga.population = 20;
    config.ioe.nsga.generations = 10;
    config.data.train_size = 1000;
    config.bank.train.epochs = 6;
  }
  return config;
}

void set_obs(bool on) {
  obs::set_enabled(on);
  if (on) {
    obs::TraceSink::global().enable();
  } else {
    obs::TraceSink::global().disable();
  }
  obs::TraceSink::global().clear();
  obs::MetricsRegistry::global().reset();
}

struct RunSample {
  double seconds = 0.0;
  std::uint64_t front_fingerprint = 0;
};

RunSample timed_run(const supernet::SearchSpace& space,
                    const core::HadasConfig& config, bool obs_on) {
  using clock = std::chrono::steady_clock;
  set_obs(obs_on);
  core::HadasEngine engine(space, hw::Target::kTx2PascalGpu, config);
  const auto t0 = clock::now();
  const core::HadasResult result = engine.run();
  RunSample sample;
  sample.seconds = std::chrono::duration<double>(clock::now() - t0).count();
  sample.front_fingerprint = fingerprint(result);
  if (obs_on) core::export_search_metrics(engine, result);
  return sample;
}

}  // namespace
}  // namespace hadas

int main() {
  using namespace hadas;

  std::cout << "=== Observability overhead (obs/) ===\n\n";

  const supernet::SearchSpace space = supernet::SearchSpace::attentive_nas();
  const core::HadasConfig config = workload_config();

  // OFF/ON interleaved pairs; best-of per mode discards scheduler noise.
  const std::vector<bool> schedule = {false, true, false, true};
  double best_off = 0.0, best_on = 0.0;
  std::uint64_t reference = 0;
  bool all_identical = true;
  util::Json::Array runs;

  std::cout << "obs   seconds  identical\n";
  for (const bool on : schedule) {
    const RunSample sample = timed_run(space, config, on);
    if (reference == 0) reference = sample.front_fingerprint;
    const bool identical = sample.front_fingerprint == reference;
    all_identical = all_identical && identical;
    auto& best = on ? best_on : best_off;
    if (best == 0.0 || sample.seconds < best) best = sample.seconds;
    std::cout << (on ? "on " : "off") << "   "
              << util::fmt_fixed(sample.seconds, 2) << "     "
              << (identical ? "yes" : "NO") << "\n";

    util::Json::Object run;
    run["obs_enabled"] = on;
    run["seconds"] = sample.seconds;
    run["identical_to_first"] = identical;
    runs.push_back(util::Json(std::move(run)));
  }

  const std::size_t events = obs::TraceSink::global().size();
  const std::uint64_t tasks = obs::MetricsRegistry::global()
                                  .counter("exec.tasks_total")
                                  .value();
  set_obs(false);

  const double overhead =
      best_off > 0.0 ? (best_on - best_off) / best_off : 0.0;
  std::cout << "\nbest off " << util::fmt_fixed(best_off, 2) << " s, best on "
            << util::fmt_fixed(best_on, 2) << " s -> overhead "
            << util::fmt_pct(overhead, 2) << " (budget 3%)\n";
  std::cout << "instrumentation live on the on-passes: " << tasks
            << " pool tasks counted, " << events << " trace events\n";
  std::cout << "determinism: "
            << (all_identical ? "fronts bit-identical with obs on and off"
                              : "FRONT MISMATCH — obs is not observe-only")
            << "\n";

  util::Json::Object doc;
  doc["bench"] = "observability";
  doc["best_off_seconds"] = best_off;
  doc["best_on_seconds"] = best_on;
  doc["overhead_fraction"] = overhead;
  doc["overhead_budget_fraction"] = 0.03;
  doc["within_budget"] = overhead < 0.03;
  doc["all_identical"] = all_identical;
  doc["trace_events"] = events;
  doc["pool_tasks_counted"] = tasks;
  doc["runs"] = util::Json(std::move(runs));

  const std::string path = bench::out_dir() + "/observability.json";
  bench::write_result_json(path, util::Json(std::move(doc)));
  std::cout << "\nwrote " << path << "\n";

  return all_identical ? 0 : 1;
}
