// Fleet registry scaling bench: per-operation latency of the device
// registry at N = 16 / 128 / 512 devices — construction (provisioning),
// examine_all (the `hadas device examine` path), group partition (the
// search's membership snapshot), failover-head selection (the serve plan's
// preference scan), a rolling chaos round, and a durable save + load cycle.
//
// Exit gate: two same-seed registries driven through the same call sequence
// must serialize byte-identically; a mismatch exits non-zero so CI catches a
// determinism regression before any test does.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "hw/fleet/registry.hpp"

namespace {

using hadas::hw::fleet::FleetConfig;
using hadas::hw::fleet::FleetRegistry;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

FleetConfig config_for(std::size_t devices) {
  FleetConfig config;
  config.devices = devices;
  config.chaos.kill_per_round = devices / 16;
  config.chaos.recover_per_round = devices / 32;
  config.chaos.degrade_per_round = devices / 32;
  config.chaos.rounds = 8;
  return config;
}

}  // namespace

int main() {
  const std::string out = hadas::bench::out_dir() + "/fleet_scaling.json";
  hadas::util::Json::Array rows;

  std::printf("fleet registry scaling (ms per operation)\n");
  std::printf("%8s %12s %12s %12s %12s %12s %12s\n", "devices", "provision",
              "examine_all", "partition", "failover", "chaos_round",
              "save+load");

  for (const std::size_t devices : {std::size_t{16}, std::size_t{128},
                                    std::size_t{512}}) {
    auto start = Clock::now();
    FleetRegistry registry(config_for(devices));
    const double provision_ms = ms_since(start);

    start = Clock::now();
    const auto infos = registry.examine_all();
    const double examine_ms = ms_since(start);
    if (infos.size() != devices) return 1;

    // The search's membership snapshot: every group's BDF-sorted members.
    start = Clock::now();
    std::size_t partitioned = 0;
    for (std::size_t g = 0; g < registry.group_count(); ++g) {
      partitioned += registry.group_members(g).size();
    }
    const double partition_ms = ms_since(start);
    if (partitioned != devices) return 1;

    // The serve plan's preference scan: failover head of every group,
    // repeated as a serving loop would on each lane rotation.
    constexpr std::size_t kFailoverReps = 100;
    start = Clock::now();
    std::size_t heads = 0;
    for (std::size_t rep = 0; rep < kFailoverReps; ++rep) {
      for (std::size_t g = 0; g < registry.group_count(); ++g) {
        heads += registry.preferred_device(g).has_value() ? 1 : 0;
      }
    }
    const double failover_ms = ms_since(start) / kFailoverReps;
    if (heads == 0) return 1;

    start = Clock::now();
    registry.advance_round();
    const double round_ms = ms_since(start);

    const std::string state_path =
        hadas::bench::out_dir() + "/fleet_bench_state.json";
    start = Clock::now();
    registry.save(state_path);
    const FleetRegistry resumed = FleetRegistry::load(state_path);
    const double durable_ms = ms_since(start);

    // Determinism gate 1: the checkpoint round-trips byte-identically.
    if (resumed.to_json().dump(2) != registry.to_json().dump(2)) {
      std::fprintf(stderr,
                   "FAIL: fleet checkpoint round-trip diverged at N=%zu\n",
                   devices);
      return 1;
    }

    // Determinism gate 2: a second registry driven through the same call
    // sequence serializes byte-identically (chaos included).
    FleetRegistry replay(config_for(devices));
    replay.advance_round();
    if (replay.to_json().dump(2) != registry.to_json().dump(2)) {
      std::fprintf(stderr,
                   "FAIL: same-seed fleet registries diverged at N=%zu\n",
                   devices);
      return 1;
    }

    std::printf("%8zu %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f\n", devices,
                provision_ms, examine_ms, partition_ms, failover_ms, round_ms,
                durable_ms);

    hadas::util::Json row;
    row["devices"] = hadas::util::Json(static_cast<double>(devices));
    row["provision_ms"] = hadas::util::Json(provision_ms);
    row["examine_all_ms"] = hadas::util::Json(examine_ms);
    row["partition_ms"] = hadas::util::Json(partition_ms);
    row["failover_scan_ms"] = hadas::util::Json(failover_ms);
    row["chaos_round_ms"] = hadas::util::Json(round_ms);
    row["save_load_ms"] = hadas::util::Json(durable_ms);
    row["serviceable"] =
        hadas::util::Json(static_cast<double>(registry.serviceable_count()));
    rows.push_back(std::move(row));
  }

  hadas::util::Json doc;
  doc["bench"] = hadas::util::Json(std::string("fleet_scaling"));
  doc["rows"] = hadas::util::Json(std::move(rows));
  hadas::bench::write_result_json(out, doc);
  std::printf("wrote %s\n", out.c_str());
  std::printf("determinism gates passed\n");
  return 0;
}
