// Search-convergence curves (supplementary to Fig. 6's endpoint metrics):
// per-generation hypervolume of the IOE's population front for NSGA-II vs a
// random-search baseline at the same evaluation budget, on one backbone.
// Shows how quickly the evolutionary engine closes in on the final front —
// the practical answer to "how many of the 3500 IOE iterations matter?".

#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "core/nsga2.hpp"
#include "dynn/dynamic_eval.hpp"
#include "supernet/baselines.hpp"
#include "util/csv.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;

namespace {
/// The IOE's (X, F) problem, reduced to the two reported axes so HV curves
/// are comparable across engines.
class TrackedInnerProblem final : public core::Problem {
 public:
  TrackedInnerProblem(const dynn::DynamicEvaluator& eval,
                      const hw::DeviceSpec& device, std::size_t layers)
      : eval_(eval), device_(device), layers_(layers) {
    eligible_ = dynn::ExitPlacement(layers).num_eligible();
  }

  std::vector<std::size_t> gene_cardinalities() const override {
    std::vector<std::size_t> card(eligible_, 2);
    card.push_back(device_.core_freqs_hz.size());
    card.push_back(device_.emc_freqs_hz.size());
    return card;
  }

  void repair(core::IntGenome& genome, hadas::util::Rng& rng) const override {
    bool any = false;
    for (std::size_t i = 0; i < eligible_; ++i) any = any || genome[i] != 0;
    if (!any) genome[rng.uniform_index(eligible_)] = 1;
  }

  core::Objectives evaluate(const core::IntGenome& genome) override {
    dynn::ExitPlacement placement(layers_);
    for (std::size_t i = 0; i < eligible_; ++i)
      if (genome[i] != 0)
        placement.set_exit(dynn::ExitPlacement::kFirstEligible + i, true);
    const hw::DvfsSetting setting{
        static_cast<std::size_t>(genome[eligible_]),
        static_cast<std::size_t>(genome[eligible_ + 1])};
    const dynn::DynamicMetrics m = eval_.evaluate(placement, setting);
    return {m.energy_gain, m.oracle_accuracy};
  }

 private:
  const dynn::DynamicEvaluator& eval_;
  const hw::DeviceSpec& device_;
  std::size_t layers_;
  std::size_t eligible_ = 0;
};
}  // namespace

int main() {
  const auto space = supernet::SearchSpace::attentive_nas();
  const core::HadasConfig config = bench::experiment_config();
  const supernet::CostModel cm(space);
  const supernet::AccuracySurrogate surrogate(cm);
  const auto backbone = supernet::attentive_nas_baselines()[3].config;  // a3
  const supernet::NetworkCost cost = cm.analyze(backbone);

  std::cout << "=== Convergence: NSGA-II vs random search (IOE of a3) ===\n\n"
            << "training exit bank...\n";
  const data::SyntheticTask task(config.data);
  const dynn::ExitBank bank(
      task, cost, data::separability_from_accuracy(surrogate.accuracy(backbone)),
      config.bank);
  const hw::HardwareEvaluator evaluator(hw::make_device(hw::Target::kTx2PascalGpu));
  const dynn::MultiExitCostTable table(cost, evaluator);
  const dynn::DynamicEvaluator eval(bank, table);

  TrackedInnerProblem problem(eval, evaluator.device(), bank.total_layers());
  core::Nsga2Config nsga_config;
  nsga_config.population = 30;
  nsga_config.generations = 25;
  nsga_config.seed = 7;
  nsga_config.hv_reference = {0.0, 0.0};
  const core::Nsga2Result nsga = core::Nsga2(nsga_config).run(problem);

  // Random-search baseline: same per-generation budget; track the HV of the
  // best-so-far front.
  TrackedInnerProblem random_problem(eval, evaluator.device(), bank.total_layers());
  hadas::util::Rng rng(7);
  std::vector<core::Objectives> random_points;
  std::vector<double> random_hv;
  for (std::size_t gen = 0; gen <= nsga_config.generations; ++gen) {
    for (std::size_t i = 0; i < nsga_config.population; ++i)
      random_points.push_back(
          random_problem.evaluate(random_problem.random_genome(rng)));
    const auto front = core::pareto_front(random_points);
    std::vector<core::Objectives> front_points;
    for (std::size_t idx : front) front_points.push_back(random_points[idx]);
    random_hv.push_back(core::hypervolume(front_points, {0.0, 0.0}));
  }

  util::TextTable out({"generation", "evals", "HV nsga2 (pop)", "HV random (all)"},
                      {util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});
  util::CsvWriter csv(bench::out_dir() + "/convergence.csv",
                      {"generation", "evaluations", "hv_nsga", "hv_random"});
  for (std::size_t g = 0; g < nsga.generations.size(); g += 2) {
    const auto& stats = nsga.generations[g];
    out.add_row({std::to_string(stats.generation),
                 std::to_string((stats.generation + 1) * nsga_config.population),
                 util::fmt_fixed(stats.hypervolume, 4),
                 util::fmt_fixed(random_hv[g], 4)});
    csv.row({static_cast<double>(stats.generation),
             static_cast<double>((stats.generation + 1) * nsga_config.population),
             stats.hypervolume, random_hv[g]});
  }
  out.print(std::cout);
  std::cout << "\n(nsga2 column is the HV of the CURRENT population front —\n"
               " elitist, so non-decreasing; random column accumulates all\n"
               " samples. NSGA-II should reach random's final HV several\n"
               " generations early and end above it.)\n";
  return 0;
}
