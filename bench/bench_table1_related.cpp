// Table I: qualitative comparison between related work and HADAS — printed
// verbatim from the paper (no computation; kept so every paper table has a
// bench target), plus the feature checklist this implementation covers.

#include <iostream>

#include "util/table.hpp"

using namespace hadas;

int main() {
  util::TextTable t({"work", "early-exiting", "NAS", "DVFS", "compatibility"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});
  t.set_title("Table I — comparison between related works and HADAS");
  t.add_row({"BranchyNet [2]", "x", "", "", ""});
  t.add_row({"CDLN [4]", "x", "", "", ""});
  t.add_row({"S2dnas [10]", "x", "x", "", ""});
  t.add_row({"Dynamic-OFA [6]", "", "x", "", "x"});
  t.add_row({"EExNAS [3]", "x", "x", "", ""});
  t.add_row({"EdgeBERT [13]", "x", "", "x", ""});
  t.add_row({"Predictive Exit [14]", "x", "", "x", ""});
  t.add_row({"HADAS", "x", "x", "x", "x"});
  t.print(std::cout);

  std::cout << "\nthis implementation exercises all four columns:\n"
               "  early-exiting : dynn::ExitBank + dynn::ExitPlacement\n"
               "  NAS           : core::HadasEngine over supernet::SearchSpace\n"
               "  DVFS          : hw::DvfsSetting over hw::DeviceSpec tables\n"
               "  compatibility : backbones/baselines share one supernet space;\n"
               "                  runtime::ExitPolicy plugs in any controller\n";
  return 0;
}
