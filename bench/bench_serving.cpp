// Serving-layer bench for runtime/serve: (1) pass-through fidelity — with
// the robustness envelope inactive the supervisor's deployment accounting
// must equal DeploymentSimulator::run bit for bit; (2) overload behaviour of
// the bounded admission queue (shed rate, queue depth, SLO percentiles
// across offered load); (3) determinism — a 5% fault trace replayed twice
// and at several thread counts must produce byte-identical ServeReports;
// (4) failover — a primary that drops dead mid-trace re-homes the remainder
// onto the replica lane and still answers every admitted request. Results go
// to stdout and bench_out/serving.json.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/hadas_engine.hpp"
#include "data/sample_stream.hpp"
#include "hw/faults.hpp"
#include "runtime/controller.hpp"
#include "runtime/serve/supervisor.hpp"
#include "supernet/baselines.hpp"
#include "util/strutil.hpp"

namespace hadas {
namespace {

/// Stable FNV-1a over the full JSON serialization — equal fingerprints
/// <=> byte-identical reports (to_json round-trips every counter and the
/// exact bit pattern of every double via the fixed dump format).
std::uint64_t fingerprint(const runtime::serve::ServeReport& report) {
  const std::string dump = report.to_json().dump();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : dump) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

core::HadasConfig serving_config() {
  core::HadasConfig config = bench::experiment_config();
  if (!bench::paper_budget()) {
    config.data.train_size = 900;
    config.bank.train.epochs = 5;
  }
  return config;
}

}  // namespace
}  // namespace hadas

int main() {
  using namespace hadas;

  std::cout << "=== Serving supervisor: fidelity, overload, determinism ===\n\n";

  const supernet::SearchSpace space = supernet::SearchSpace::attentive_nas();
  core::HadasEngine engine(space, hw::Target::kTx2PascalGpu, serving_config());
  const supernet::BackboneConfig backbone = supernet::baseline_a0();
  const dynn::ExitBank& bank = engine.exit_bank(backbone);
  const dynn::MultiExitCostTable& costs = engine.cost_table(backbone);
  const hw::DvfsSetting setting = hw::default_setting(costs.evaluator().device());
  const std::size_t layers = bank.total_layers();
  const dynn::ExitPlacement placement(
      layers, {std::max(dynn::ExitPlacement::kFirstEligible, layers / 3),
               std::max(dynn::ExitPlacement::kFirstEligible + 1, 2 * layers / 3)});
  const runtime::EntropyPolicy policy(0.5);

  const std::size_t requests = bench::paper_budget() ? 4000 : 1000;
  const data::SampleStream stream(engine.task(), requests, 11);
  util::Json::Object doc;
  doc["bench"] = "serving";
  doc["requests"] = requests;

  // ---- Part 1: pass-through fidelity (inactive envelope) ----
  runtime::serve::TrafficConfig traffic;
  traffic.requests = requests;
  traffic.arrival_rate_hz = 0.0;  // back-to-back: queueing plays no role
  const auto trace = runtime::serve::poisson_trace(stream, traffic);

  const runtime::serve::ServeSupervisor plain(
      bank, {{&costs, setting, hw::FaultConfig{}}}, {});
  const runtime::serve::ServeReport pass = plain.run(placement, {&policy}, trace);
  const runtime::DeploymentSimulator simulator(bank, costs);
  const runtime::DeploymentReport direct =
      simulator.run(placement, setting, policy, stream);
  const bool pass_identical =
      pass.deployment.samples == direct.samples &&
      pass.deployment.accuracy == direct.accuracy &&
      pass.deployment.avg_energy_j == direct.avg_energy_j &&
      pass.deployment.avg_latency_s == direct.avg_latency_s &&
      pass.deployment.energy_gain == direct.energy_gain &&
      pass.deployment.latency_gain == direct.latency_gain &&
      pass.deployment.exit_histogram == direct.exit_histogram;
  std::cout << "pass-through vs DeploymentSimulator: "
            << (pass_identical ? "bit-identical" : "MISMATCH") << " ("
            << requests << " requests, accuracy "
            << util::fmt_pct(pass.deployment.accuracy, 2) << ")\n\n";
  util::Json::Object fidelity;
  fidelity["envelope_active"] = plain.envelope_active();
  fidelity["identical_to_simulator"] = pass_identical;
  fidelity["accuracy"] = pass.deployment.accuracy;
  fidelity["avg_energy_j"] = pass.deployment.avg_energy_j;
  doc["pass_through"] = util::Json(std::move(fidelity));

  // ---- Part 2: overload sweep over offered rates ----
  // Service capacity is roughly 1/avg_latency; sweep loads around it and
  // watch the bounded queue trade shed rate for p99.
  const double capacity_hz = 1.0 / pass.deployment.avg_latency_s;
  std::cout << "overload sweep (queue capacity 32, est. capacity "
            << util::fmt_fixed(capacity_hz, 0) << " req/s):\n"
            << "  load    shed%    p50 ms    p99 ms   max depth\n";
  util::Json::Array sweep;
  for (const double load : {0.5, 0.9, 1.2, 2.0}) {
    runtime::serve::ServeConfig config;
    config.admission.queue_capacity = 32;
    config.slo.deadline_s = 4.0 * pass.deployment.avg_latency_s;
    runtime::serve::TrafficConfig shaped;
    shaped.requests = requests;
    shaped.arrival_rate_hz = load * capacity_hz;
    const auto loaded_trace = runtime::serve::poisson_trace(stream, shaped);
    const runtime::serve::ServeSupervisor supervisor(
        bank, {{&costs, setting, hw::FaultConfig{}}}, config);
    const auto report = supervisor.run(placement, {&policy}, loaded_trace);
    std::cout << "  " << util::fmt_fixed(load, 1) << "x   "
              << util::fmt_fixed(100.0 * report.shed_rate, 1) << "     "
              << util::fmt_fixed(report.p50_latency_s * 1e3, 2) << "     "
              << util::fmt_fixed(report.p99_latency_s * 1e3, 2) << "     "
              << report.max_queue_depth << "\n";
    util::Json::Object entry;
    entry["load_factor"] = load;
    entry["offered_hz"] = shaped.arrival_rate_hz;
    entry["shed_rate"] = report.shed_rate;
    entry["miss_rate"] = report.miss_rate;
    entry["p50_latency_s"] = report.p50_latency_s;
    entry["p99_latency_s"] = report.p99_latency_s;
    entry["max_queue_depth"] = report.max_queue_depth;
    sweep.push_back(util::Json(std::move(entry)));
  }
  doc["overload_sweep"] = util::Json(std::move(sweep));

  // ---- Part 3: determinism at 5% faults across runs and thread counts ----
  const hw::FaultConfig faults = hw::parse_fault_config("rate=0.05,nan=0.01,seed=77");
  runtime::serve::TrafficConfig shaped;
  shaped.requests = requests;
  shaped.arrival_rate_hz = 0.9 * capacity_hz;
  const auto fault_trace = runtime::serve::poisson_trace(stream, shaped);
  bool deterministic = true;
  std::uint64_t reference = 0;
  std::size_t fallbacks = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{6}}) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      runtime::serve::ServeConfig config;
      config.watchdog.overrun_factor = 3.0;
      config.degraded.enabled = true;
      config.exec.threads = threads;
      const runtime::serve::ServeSupervisor supervisor(
          bank, {{&costs, setting, faults}}, config);
      const auto report = supervisor.run(
          placement, runtime::serve::ladder_view(
                         runtime::serve::entropy_ladder(0.5, 0.15, 3)),
          fault_trace);
      const std::uint64_t fp = fingerprint(report);
      if (reference == 0) {
        reference = fp;
        fallbacks = report.watchdog_fallbacks;
      }
      deterministic = deterministic && fp == reference;
    }
  }
  std::cout << "\n5% faults, threads {1,2,6} x2 runs: "
            << (deterministic ? "all reports byte-identical" : "DIVERGED")
            << " (" << fallbacks << " watchdog fallbacks)\n";
  util::Json::Object determinism;
  determinism["fingerprint"] = std::to_string(reference);
  determinism["identical_across_runs_and_threads"] = deterministic;
  determinism["watchdog_fallbacks"] = fallbacks;
  doc["determinism"] = util::Json(std::move(determinism));

  // ---- Part 4: dead primary fails over mid-trace ----
  const hw::FaultConfig dying = hw::parse_fault_config("dropout=100,seed=5");
  runtime::serve::ServeConfig failover_config;
  const runtime::serve::ServeSupervisor fleet(
      bank,
      {{&costs, setting, dying}, {&costs, setting, hw::FaultConfig{}}},
      failover_config);
  const auto failover_report = fleet.run(placement, {&policy}, fault_trace);
  const bool failover_ok =
      failover_report.devices_lost == 1 &&
      failover_report.deployment.samples == failover_report.admitted &&
      failover_report.lanes.size() == 2 &&
      failover_report.lanes[0].served == 100;
  std::cout << "dead primary after 100 requests: "
            << (failover_ok ? "replica served the remainder" : "FAILED") << " ("
            << failover_report.lanes[1].served << " re-homed, "
            << failover_report.failovers << " failover events)\n";
  util::Json::Object failover;
  failover["devices_lost"] = failover_report.devices_lost;
  failover["primary_served"] = failover_report.lanes[0].served;
  failover["replica_served"] = failover_report.lanes[1].served;
  failover["all_admitted_answered"] = failover_ok;
  doc["failover"] = util::Json(std::move(failover));

  const bool ok = pass_identical && deterministic && failover_ok;
  std::cout << "\nverdict: "
            << (ok ? "serving layer holds all three contracts"
                   : "CONTRACT VIOLATION")
            << "\n";

  const std::string path = bench::out_dir() + "/serving.json";
  bench::write_result_json(path, util::Json(std::move(doc)));
  std::cout << "wrote " << path << "\n";
  return ok ? 0 : 1;
}
