// Ablation (substrate): the supernet pretraining stage HADAS builds on.
// Compares subnet-sampling strategies (uniform / BestUp / WorstUp, with the
// sandwich rule) at increasing training budgets: where the training mass
// goes and how close sampled subnets get to their converged potential.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "supernet/baselines.hpp"
#include "supernet/supernet_trainer.hpp"
#include "util/csv.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;
using supernet::SamplingStrategy;

namespace {
const char* name_of(SamplingStrategy strategy) {
  switch (strategy) {
    case SamplingStrategy::kUniform: return "uniform";
    case SamplingStrategy::kBestUp: return "bestup";
    case SamplingStrategy::kWorstUp: return "worstup";
  }
  return "?";
}
}  // namespace

int main() {
  const auto space = supernet::SearchSpace::attentive_nas();
  const supernet::CostModel cm(space);
  const supernet::AccuracySurrogate surrogate(cm);

  // Fixed probe set: the 10% highest-potential subnets of a random draw —
  // the region the OOE's accuracy extreme will sample from.
  util::Rng probe_rng(123);
  std::vector<supernet::BackboneConfig> probes;
  for (int i = 0; i < 300; ++i)
    probes.push_back(supernet::decode(space, supernet::random_genome(space, probe_rng)));
  std::sort(probes.begin(), probes.end(),
            [&](const auto& a, const auto& b) {
              return surrogate.accuracy(a) > surrogate.accuracy(b);
            });
  probes.resize(30);

  std::cout << "=== Ablation: supernet pretraining sampling strategies ===\n\n";
  util::TextTable table({"budget (steps)", "strategy", "mean sampled potential",
                         "mean maturity", "top-probe acc", "largest-subnet acc"});
  util::CsvWriter csv(bench::out_dir() + "/ablation_supernet.csv",
                      {"budget", "strategy", "sampled_potential", "maturity",
                       "probe_acc", "largest_acc"});

  for (std::size_t budget : {100u, 400u, 1600u}) {
    for (SamplingStrategy strategy :
         {SamplingStrategy::kUniform, SamplingStrategy::kBestUp,
          SamplingStrategy::kWorstUp}) {
      supernet::SupernetTrainConfig config;
      config.sampling = strategy;
      config.seed = 7;
      supernet::SupernetTrainer trainer(space, cm, config);
      trainer.train(budget);
      double probe_acc = 0.0;
      for (const auto& probe : probes) probe_acc += trainer.accuracy(probe);
      probe_acc /= static_cast<double>(probes.size());
      const double largest_acc = trainer.accuracy(trainer.largest_subnet());
      table.add_row({std::to_string(budget), name_of(strategy),
                     util::fmt_pct(trainer.mean_sampled_potential(), 2),
                     util::fmt_pct(trainer.mean_maturity(), 1),
                     util::fmt_pct(probe_acc, 2), util::fmt_pct(largest_acc, 2)});
      csv.row({util::fmt_fixed(static_cast<double>(budget), 0), name_of(strategy),
               util::fmt_fixed(trainer.mean_sampled_potential(), 4),
               util::fmt_fixed(trainer.mean_maturity(), 4),
               util::fmt_fixed(probe_acc, 4), util::fmt_fixed(largest_acc, 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(expected: BestUp shifts the sampled-subnet potential up and\n"
               " WorstUp down relative to uniform; all strategies converge the\n"
               " sandwich ends fast while mid-space probes need large budgets —\n"
               " the weight-sharing coverage problem attentive sampling targets)\n";
  return 0;
}
