// Micro-benchmarks (google-benchmark) of the primitives on the hot paths of
// the search: cost-model analysis, hardware measurement, dynamic candidate
// evaluation, non-dominated sorting and hypervolume.

#include <benchmark/benchmark.h>

#include "core/hadas_engine.hpp"
#include "core/pareto.hpp"
#include "core/serialize.hpp"
#include "supernet/baselines.hpp"
#include "util/linalg.hpp"
#include "util/rng.hpp"

using namespace hadas;

namespace {

const supernet::SearchSpace& space() {
  static const supernet::SearchSpace s = supernet::SearchSpace::attentive_nas();
  return s;
}

void BM_CostModelAnalyze(benchmark::State& state) {
  const supernet::CostModel cm(space());
  const auto config = supernet::baseline_a6();
  for (auto _ : state) benchmark::DoNotOptimize(cm.analyze(config));
}
BENCHMARK(BM_CostModelAnalyze);

void BM_AccuracySurrogate(benchmark::State& state) {
  const supernet::CostModel cm(space());
  const supernet::AccuracySurrogate surrogate(cm);
  const auto config = supernet::attentive_nas_baselines()[3].config;
  for (auto _ : state) benchmark::DoNotOptimize(surrogate.accuracy(config));
}
BENCHMARK(BM_AccuracySurrogate);

void BM_HardwareMeasure(benchmark::State& state) {
  const supernet::CostModel cm(space());
  const hw::HardwareEvaluator evaluator(hw::make_device(hw::Target::kTx2PascalGpu));
  const auto net = cm.analyze(supernet::baseline_a6());
  const auto setting = hw::default_setting(evaluator.device());
  for (auto _ : state) benchmark::DoNotOptimize(evaluator.measure_network(net, setting));
}
BENCHMARK(BM_HardwareMeasure);

void BM_NonDominatedSort(benchmark::State& state) {
  util::Rng rng(9);
  std::vector<core::Objectives> pts(static_cast<std::size_t>(state.range(0)));
  for (auto& p : pts) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  for (auto _ : state) benchmark::DoNotOptimize(core::non_dominated_sort(pts));
}
BENCHMARK(BM_NonDominatedSort)->Arg(64)->Arg(256);

void BM_Hypervolume2D(benchmark::State& state) {
  util::Rng rng(10);
  std::vector<core::Objectives> pts(static_cast<std::size_t>(state.range(0)));
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
  const core::Objectives ref = {0.0, 0.0};
  for (auto _ : state) benchmark::DoNotOptimize(core::hypervolume(pts, ref));
}
BENCHMARK(BM_Hypervolume2D)->Arg(64)->Arg(1024);

void BM_ExitPathMeasure(benchmark::State& state) {
  const supernet::CostModel cm(space());
  const hw::HardwareEvaluator evaluator(hw::make_device(hw::Target::kTx2PascalGpu));
  const auto net = cm.analyze(supernet::baseline_a6());
  const dynn::MultiExitCostTable table(net, evaluator);
  const auto setting = hw::default_setting(evaluator.device());
  std::size_t layer = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.exit_path(layer, setting));
    layer = 5 + (layer + 3) % (net.num_mbconv_layers() - 5);
  }
}
BENCHMARK(BM_ExitPathMeasure);

void BM_JsonRoundTrip(benchmark::State& state) {
  // A representative saved design.
  hadas::util::Json json = core::to_json(supernet::baseline_a6());
  const std::string text = json.dump(2);
  for (auto _ : state) benchmark::DoNotOptimize(hadas::util::Json::parse(text));
}
BENCHMARK(BM_JsonRoundTrip);

void BM_RidgeFit(benchmark::State& state) {
  util::Rng rng(11);
  const std::size_t n = static_cast<std::size_t>(state.range(0)), d = 11;
  std::vector<std::vector<double>> x(n, std::vector<double>(d));
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x[i][j] = rng.normal();
    y[i] = rng.normal();
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(hadas::util::ridge_regression(x, y, 1e-6));
}
BENCHMARK(BM_RidgeFit)->Arg(64)->Arg(512);

void BM_DynamicCandidateEvaluation(benchmark::State& state) {
  // The IOE's hot path: one full D(x, f | b) evaluation.
  static const supernet::CostModel cm(space());
  static const data::SyntheticTask task([] {
    data::DataConfig config;
    config.train_size = 700;
    config.val_size = 400;
    config.test_size = 400;
    return config;
  }());
  static const supernet::NetworkCost net = cm.analyze(supernet::baseline_a0());
  static const dynn::ExitBank bank(task, net, 7.0, [] {
    dynn::ExitBankConfig config;
    config.train.epochs = 3;
    return config;
  }());
  static const hw::HardwareEvaluator evaluator(
      hw::make_device(hw::Target::kTx2PascalGpu));
  static const dynn::MultiExitCostTable table(net, evaluator);
  static const dynn::DynamicEvaluator eval(bank, table);
  const dynn::ExitPlacement placement(net.num_mbconv_layers(), {5, 8, 11});
  std::size_t core = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(placement, {core, 5}));
    core = (core + 1) % evaluator.device().core_freqs_hz.size();
  }
}
BENCHMARK(BM_DynamicCandidateEvaluation);

}  // namespace

BENCHMARK_MAIN();
