// Scaling bench for the exec/ subsystem: fixed-seed HadasEngine::run at
// 1/2/4/auto threads — wall clock, speedup vs. serial, memo-cache hit
// rates, and a fingerprint check that every thread count produced the
// bit-identical final Pareto set. A warm-started rerun demonstrates the
// cross-run S(b) memo. Results go to stdout and
// bench_out/parallel_scaling.json.
//
// Note: the speedup column measures the host, not the code — on a
// single-core container every thread count timeslices one CPU and the
// ratio stays ~1x; the determinism ("identical") column must hold
// everywhere.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/hadas_engine.hpp"
#include "util/json.hpp"
#include "util/strutil.hpp"

namespace hadas {
namespace {

/// Stable FNV-1a fingerprint of a result's final Pareto set (bit patterns
/// of every reported metric) — equal fingerprints <=> bit-identical fronts.
std::uint64_t fingerprint(const core::HadasResult& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  auto mix_double = [&](double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(result.final_pareto.size());
  for (const core::FinalSolution& sol : result.final_pareto) {
    for (std::uint8_t bit : sol.placement.mask()) mix(bit);
    mix(sol.setting.core_idx);
    mix(sol.setting.emc_idx);
    mix_double(sol.dynamic.score_eq5);
    mix_double(sol.dynamic.energy_gain);
    mix_double(sol.dynamic.oracle_accuracy);
    mix_double(sol.static_eval.latency_s);
    mix_double(sol.static_eval.energy_j);
  }
  for (std::size_t idx : result.static_front) mix(idx);
  return h;
}

core::HadasConfig scaling_config() {
  core::HadasConfig config = bench::experiment_config();
  if (!bench::paper_budget()) {
    // Scaled to keep 4 full runs + a warm rerun in bench-suite time while
    // leaving several concurrent IOEs per generation to dispatch.
    config.outer_population = 12;
    config.outer_generations = 4;
    config.ioe_backbones_per_generation = 4;
    config.ioe.nsga.population = 20;
    config.ioe.nsga.generations = 10;
    config.data.train_size = 1000;
    config.bank.train.epochs = 6;
  }
  return config;
}

}  // namespace
}  // namespace hadas

int main() {
  using namespace hadas;
  using clock = std::chrono::steady_clock;

  std::cout << "=== Parallel execution scaling (exec/) ===\n\n";

  const supernet::SearchSpace space = supernet::SearchSpace::attentive_nas();
  const core::HadasConfig base = scaling_config();

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  const std::size_t hw_threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (std::find(thread_counts.begin(), thread_counts.end(), hw_threads) ==
      thread_counts.end())
    thread_counts.push_back(hw_threads);

  util::Json::Array runs;
  double serial_seconds = 0.0;
  std::uint64_t serial_fingerprint = 0;
  bool all_identical = true;

  std::cout << "threads  seconds  speedup  identical  s_cache_hit%  cost_hit%\n";
  for (const std::size_t threads : thread_counts) {
    core::HadasConfig config = base;
    config.exec.threads = threads;
    core::HadasEngine engine(space, hw::Target::kTx2PascalGpu, config);

    const auto t0 = clock::now();
    const core::HadasResult result = engine.run();
    const double seconds =
        std::chrono::duration<double>(clock::now() - t0).count();

    const std::uint64_t fp = fingerprint(result);
    if (threads == 1) {
      serial_seconds = seconds;
      serial_fingerprint = fp;
    }
    const bool identical = fp == serial_fingerprint;
    all_identical = all_identical && identical;
    const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
    const exec::CacheStats s_stats = engine.static_cache_stats();
    const exec::CacheStats c_stats = engine.cost_cache_stats();

    std::cout << "  " << engine.threads() << "      "
              << util::fmt_fixed(seconds, 2) << "    "
              << util::fmt_fixed(speedup, 2) << "x    "
              << (identical ? "yes" : "NO ") << "       "
              << util::fmt_fixed(100.0 * s_stats.hit_rate(), 1) << "          "
              << util::fmt_fixed(100.0 * c_stats.hit_rate(), 1) << "\n";

    util::Json::Object run;
    run["threads"] = engine.threads();
    run["seconds"] = seconds;
    run["speedup_vs_serial"] = speedup;
    run["identical_to_serial"] = identical;
    run["final_pareto_size"] = result.final_pareto.size();
    run["outer_evaluations"] = result.outer_evaluations;
    run["inner_evaluations"] = result.inner_evaluations;
    run["static_cache_hits"] = s_stats.hits;
    run["static_cache_misses"] = s_stats.misses;
    run["cost_cache_hits"] = c_stats.hits;
    run["cost_cache_misses"] = c_stats.misses;
    run["cost_cache_hit_rate"] = c_stats.hit_rate();
    runs.push_back(util::Json(std::move(run)));
  }

  // Warm-started rerun on a fresh engine pre-seeded by a cold run: the
  // second run's repeated genomes hit the S(b) memo instead of re-running
  // the static pipeline.
  core::HadasConfig warm_config = base;
  warm_config.exec.threads = hw_threads;
  core::HadasEngine warm_engine(space, hw::Target::kTx2PascalGpu, warm_config);
  const core::HadasResult cold = warm_engine.run();
  const exec::CacheStats before = warm_engine.static_cache_stats();
  const core::WarmStart warm =
      core::warm_start_from_solutions(space, cold.final_pareto);
  const auto w0 = clock::now();
  const core::HadasResult resumed = warm_engine.run(warm);
  const double warm_seconds =
      std::chrono::duration<double>(clock::now() - w0).count();
  const exec::CacheStats after = warm_engine.static_cache_stats();
  const std::uint64_t warm_hits = after.hits - before.hits;

  std::cout << "\nwarm-started rerun: " << util::fmt_fixed(warm_seconds, 2)
            << " s, " << warm_hits << " S(b) memo hits, final front "
            << resumed.final_pareto.size() << " solutions\n";
  std::cout << "determinism: "
            << (all_identical ? "all thread counts bit-identical"
                              : "MISMATCH ACROSS THREAD COUNTS")
            << "\n";

  util::Json::Object doc;
  doc["bench"] = "parallel_scaling";
  doc["config_outer_population"] = base.outer_population;
  doc["config_outer_generations"] = base.outer_generations;
  doc["config_ioe_backbones_per_generation"] = base.ioe_backbones_per_generation;
  doc["hardware_concurrency"] = hw_threads;
  doc["all_identical"] = all_identical;
  doc["runs"] = util::Json(std::move(runs));
  util::Json::Object warm_obj;
  warm_obj["seconds"] = warm_seconds;
  warm_obj["static_cache_hits"] = warm_hits;
  warm_obj["static_cache_hit_rate"] = after.hit_rate();
  warm_obj["final_pareto_size"] = resumed.final_pareto.size();
  doc["warm_start"] = util::Json(std::move(warm_obj));

  const std::string path = bench::out_dir() + "/parallel_scaling.json";
  bench::write_result_json(path, util::Json(std::move(doc)));
  std::cout << "\nwrote " << path << "\n";

  return all_identical ? 0 : 1;
}
