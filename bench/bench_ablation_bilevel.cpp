// Ablation (beyond the paper, justifying the nested structure of Sec. III):
// bi-level (nested) optimization vs a flat joint NSGA-II over the full
// (B, X, F) genome at a comparable evaluation budget. The flat search must
// train an exit bank for every distinct backbone it touches, so at equal
// wall-clock it explores far fewer dynamic candidates; the bi-level split
// amortizes one bank across thousands of cheap (x, f) evaluations.

#include <chrono>
#include <iostream>

#include "bench/common.hpp"
#include "core/nsga2.hpp"
#include "core/pareto.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;

namespace {

/// Flat joint problem: genome = [backbone genes | 32 exit bits | core | emc].
/// Exit bits beyond the decoded backbone's eligible range are ignored.
class FlatJointProblem final : public core::Problem {
 public:
  static constexpr std::size_t kMaxExitBits = 32;

  FlatJointProblem(const supernet::SearchSpace& space,
                   const core::HadasEngine& engine)
      : space_(space),
        engine_(engine),
        device_(engine.static_evaluator().hardware().device()) {}

  std::vector<std::size_t> gene_cardinalities() const override {
    std::vector<std::size_t> card = space_.gene_cardinalities();
    card.insert(card.end(), kMaxExitBits, 2);
    card.push_back(device_.core_freqs_hz.size());
    card.push_back(device_.emc_freqs_hz.size());
    return card;
  }

  void repair(core::IntGenome& genome, hadas::util::Rng& rng) const override {
    const std::size_t base = space_.genome_length();
    bool any = false;
    for (std::size_t i = 0; i < kMaxExitBits; ++i) any = any || genome[base + i];
    if (!any) genome[base + rng.uniform_index(kMaxExitBits)] = 1;
  }

  core::Objectives evaluate(const core::IntGenome& genome) override {
    const std::size_t base = space_.genome_length();
    const supernet::Genome bg(genome.begin(),
                              genome.begin() + static_cast<std::ptrdiff_t>(base));
    const supernet::BackboneConfig backbone = supernet::decode(space_, bg);
    const std::size_t layers =
        static_cast<std::size_t>(backbone.total_layers());
    dynn::ExitPlacement placement(layers);
    bool any = false;
    for (std::size_t i = 0; i < kMaxExitBits; ++i) {
      const std::size_t layer = dynn::ExitPlacement::kFirstEligible + i;
      if (genome[base + i] != 0 && placement.is_eligible(layer)) {
        placement.set_exit(layer, true);
        any = true;
      }
    }
    if (!any) placement.set_exit(dynn::ExitPlacement::kFirstEligible, true);
    hw::DvfsSetting setting{
        static_cast<std::size_t>(genome[base + kMaxExitBits]),
        static_cast<std::size_t>(genome[base + kMaxExitBits + 1])};
    // Trains (or fetches) this backbone's exit bank — the expensive step the
    // flat search cannot amortize.
    const core::InnerSolution sol =
        engine_.evaluate_dynamic(backbone, placement, setting);
    ++bank_touches_;
    return {sol.metrics.energy_gain, sol.metrics.oracle_accuracy};
  }

  std::size_t bank_touches() const { return bank_touches_; }

 private:
  const supernet::SearchSpace& space_;
  const core::HadasEngine& engine_;
  const hw::DeviceSpec& device_;
  std::size_t bank_touches_ = 0;
};

}  // namespace

int main() {
  const auto space = supernet::SearchSpace::attentive_nas();

  // Small matched budgets: the flat arm's cost is dominated by bank
  // training, so both arms are scaled to finish in about a minute.
  core::HadasConfig nested_config = bench::experiment_config();
  nested_config.outer_population = 12;
  nested_config.outer_generations = 5;
  nested_config.ioe_backbones_per_generation = 2;

  std::cout << "=== Ablation: nested (bi-level) vs flat joint search, TX2 GPU ===\n\n";

  std::cout << "running nested bi-level search...\n";
  auto t0 = std::chrono::steady_clock::now();
  core::HadasEngine nested_engine(space, hw::Target::kTx2PascalGpu, nested_config);
  const core::HadasResult nested = nested_engine.run();
  const double nested_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<core::Objectives> nested_pts;
  for (const auto& sol : nested.final_pareto)
    nested_pts.push_back({sol.dynamic.energy_gain, sol.dynamic.oracle_accuracy});

  std::cout << "running flat joint search...\n";
  t0 = std::chrono::steady_clock::now();
  core::HadasEngine flat_engine(space, hw::Target::kTx2PascalGpu, nested_config);
  FlatJointProblem flat_problem(space, flat_engine);
  core::Nsga2Config flat_nsga;
  flat_nsga.population = 16;
  flat_nsga.generations = 6;
  flat_nsga.seed = 77;
  core::Nsga2 flat(flat_nsga);
  const core::Nsga2Result flat_result = flat.run(flat_problem);
  const double flat_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<core::Objectives> flat_pts;
  for (const auto& ind : flat_result.front) flat_pts.push_back(ind.objectives);

  const core::Objectives ref = {0.0, 0.0};
  util::TextTable table({"arm", "wall s", "dynamic evals", "front", "HV",
                         "C(this,other)"},
                        {util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight});
  table.add_row({"nested (HADAS)", util::fmt_fixed(nested_s, 1),
                 std::to_string(nested.inner_evaluations),
                 std::to_string(nested_pts.size()),
                 util::fmt_fixed(core::hypervolume(nested_pts, ref), 4),
                 util::fmt_pct(core::coverage(nested_pts, flat_pts), 1)});
  table.add_row({"flat joint", util::fmt_fixed(flat_s, 1),
                 std::to_string(flat_result.evaluations),
                 std::to_string(flat_pts.size()),
                 util::fmt_fixed(core::hypervolume(flat_pts, ref), 4),
                 util::fmt_pct(core::coverage(flat_pts, nested_pts), 1)});
  table.print(std::cout);
  std::cout << "\n(expected: nested reaches a larger hypervolume per unit "
               "wall-clock because one trained bank serves thousands of "
               "(x, f) evaluations)\n";
  return 0;
}
