// Figure 1 (motivational example): accuracy and energy of AttentiveNAS a0,
// a6 and a HADAS model on the TX2 Pascal GPU across the three optimization
// stages — Static, Dyn (early exiting), Dyn w/ HW (early exiting + DVFS).
//
// Paper shape to reproduce: statically a0 is the most energy-efficient
// (~22% better than the HADAS model); after Dyn the HADAS model catches up;
// after Dyn w/ HW it becomes more efficient than a0 (~19% in the paper),
// while its accuracy is on par with a6.

#include <iostream>

#include "bench/common.hpp"
#include "supernet/baselines.hpp"
#include "util/csv.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;

namespace {

struct StageRow {
  std::string model;
  double static_acc, dyn_acc;
  double e_static, e_dyn, e_dyn_hw;  // mJ
};

StageRow evaluate_model(const core::HadasEngine& engine, const std::string& name,
                        const supernet::BackboneConfig& config) {
  StageRow row;
  row.model = name;
  const core::StaticEval s = engine.static_evaluator().evaluate(config);
  row.e_static = s.energy_j * 1e3;

  // Dyn w/ HW: full IOE over (X, F).
  const core::IoeResult ioe = engine.run_ioe(config);
  // Pick the solution maximizing energy gain subject to dynamic accuracy at
  // least the backbone's (the paper keeps "the desired level of accuracy").
  const double acc_floor = engine.exit_bank(config).backbone_accuracy();
  const core::InnerSolution* best = nullptr;
  for (const auto& sol : ioe.pareto) {
    if (sol.metrics.oracle_accuracy < acc_floor) continue;
    if (best == nullptr || sol.metrics.energy_gain > best->metrics.energy_gain)
      best = &sol;
  }
  if (best == nullptr) best = &ioe.pareto.front();

  row.e_dyn_hw = best->metrics.energy_per_sample_j * 1e3;
  row.dyn_acc = best->metrics.oracle_accuracy;
  row.static_acc = acc_floor;

  // Dyn (no HW): the same placement at the default DVFS setting.
  const auto default_f =
      hw::default_setting(engine.static_evaluator().hardware().device());
  const core::InnerSolution dyn =
      engine.evaluate_dynamic(config, best->placement, default_f);
  row.e_dyn = dyn.metrics.energy_per_sample_j * 1e3;
  return row;
}

}  // namespace

int main() {
  const auto space = supernet::SearchSpace::attentive_nas();
  core::HadasConfig config = bench::experiment_config();
  core::HadasEngine engine(space, hw::Target::kTx2PascalGpu, config);

  std::cout << "=== Figure 1: motivational comparison on "
            << hw::target_name(hw::Target::kTx2PascalGpu) << " ===\n\n";

  // HADAS model: best trade-off design from a bi-level search.
  std::cout << "[1/3] running HADAS bi-level search...\n";
  const core::HadasResult result = engine.run();
  // Choose the final solution with the highest energy gain among those within
  // 1% dynamic accuracy of the best (the "large agile model" of Fig. 1).
  double best_acc = 0.0;
  for (const auto& sol : result.final_pareto)
    best_acc = std::max(best_acc, sol.dynamic.oracle_accuracy);
  const core::FinalSolution* hadas_sol = nullptr;
  for (const auto& sol : result.final_pareto) {
    if (sol.dynamic.oracle_accuracy < best_acc - 0.01) continue;
    if (hadas_sol == nullptr ||
        sol.dynamic.energy_gain > hadas_sol->dynamic.energy_gain)
      hadas_sol = &sol;
  }

  std::cout << "[2/3] evaluating AttentiveNAS baselines a0, a6...\n";
  const StageRow a0 = evaluate_model(engine, "AttentiveNAS_a0", supernet::baseline_a0());
  const StageRow a6 = evaluate_model(engine, "AttentiveNAS_a6", supernet::baseline_a6());
  std::cout << "[3/3] evaluating the HADAS model...\n";
  const StageRow hadas_row =
      evaluate_model(engine, "HADAS", hadas_sol->backbone);

  util::TextTable table({"model", "acc (static)", "acc (dyn)", "E static mJ",
                         "E dyn mJ", "E dyn w/HW mJ"},
                        {util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight});
  table.set_title("Fig. 1 — three optimization stages (Static / Dyn / Dyn w/ HW)");
  util::CsvWriter csv(bench::out_dir() + "/fig1_motivation.csv",
                      {"model", "acc_static", "acc_dyn", "e_static_mj",
                       "e_dyn_mj", "e_dyn_hw_mj"});
  for (const StageRow& row : {a0, a6, hadas_row}) {
    table.add_row({row.model, util::fmt_pct(row.static_acc, 2),
                   util::fmt_pct(row.dyn_acc, 2), util::fmt_fixed(row.e_static, 1),
                   util::fmt_fixed(row.e_dyn, 1), util::fmt_fixed(row.e_dyn_hw, 1)});
    csv.row({row.model, util::fmt_fixed(row.static_acc, 4),
             util::fmt_fixed(row.dyn_acc, 4), util::fmt_fixed(row.e_static, 2),
             util::fmt_fixed(row.e_dyn, 2), util::fmt_fixed(row.e_dyn_hw, 2)});
  }
  table.print(std::cout);

  const double gap_static = hadas_row.e_static / a0.e_static;
  const double gap_final = hadas_row.e_dyn_hw / a0.e_dyn_hw;
  std::cout << "\npaper shape checks:\n"
            << "  energy gap HADAS/a0: " << util::fmt_fixed(gap_static, 2)
            << "x static -> " << util::fmt_fixed(gap_final, 2)
            << "x after Dyn w/ HW (paper: 1.22x -> 0.81x, i.e. full"
               " crossover; see EXPERIMENTS.md on why the crossover is"
               " partial here)\n"
            << "  stage-wise gains compound for every model: HADAS "
            << util::fmt_pct(1.0 - hadas_row.e_dyn / hadas_row.e_static, 1)
            << " from Dyn, then "
            << util::fmt_pct(1.0 - hadas_row.e_dyn_hw / hadas_row.e_dyn, 1)
            << " more from DVFS\n"
            << "  HADAS dyn accuracy " << util::fmt_pct(hadas_row.dyn_acc, 2)
            << " vs a6 dyn accuracy " << util::fmt_pct(a6.dyn_acc, 2)
            << " (paper: on par)\n";
  return 0;
}
