// Throughput / resume-latency bench for the networked serving layer
// (src/net). Drives hadasd + client over the in-process loopback fake
// network with a scripted ServeService (no bank training, so the numbers
// isolate the wire protocol): a clean run measures request upload + report
// download throughput; a seeded-flaky run with S severed connections
// measures what resumption costs — extra protocol steps (the simulated
// clock: one step = one cooperative daemon+client round) and replayed
// bytes — and byte-compares the resumed report against the clean one.
//
// Results land crash-safely in <out>/net_throughput.json (durable
// envelope, same as every bench). Exit status reflects the byte-identity
// check: a resumed report differing from the clean one is a protocol bug,
// not noise.

#include <chrono>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "net/client.hpp"
#include "net/fake_socket.hpp"
#include "net/server.hpp"
#include "runtime/serve/bridge.hpp"
#include "util/json.hpp"
#include "util/strutil.hpp"

namespace hadas {
namespace {

/// Deterministic service: digests the trace into a report padded to a
/// realistic size so the download side of the protocol is exercised.
class ScriptedService : public runtime::serve::ServeService {
 public:
  std::size_t sample_count() const override { return 512; }
  const std::string& fingerprint() const override { return fingerprint_; }
  std::string run_trace(const std::vector<runtime::serve::RemoteRequest>&
                            requests) const override {
    std::uint64_t id_sum = 0;
    for (const auto& request : requests) id_sum += request.id;
    const std::string digest = "{\"requests\": " +
                               std::to_string(requests.size()) +
                               ", \"id_sum\": " + std::to_string(id_sum) +
                               "}\n";
    std::string report;
    while (report.size() < 128 * 1024) report += digest;
    return report;
  }

 private:
  std::string fingerprint_ = "bench-net-throughput-v1";
};

struct RunStats {
  std::size_t steps = 0;
  double wall_s = 0.0;
  std::size_t reconnects = 0;
  std::uint64_t bytes_replayed = 0;
  std::string report;
};

RunStats run_session(const std::string& dir, std::size_t requests,
                     std::size_t severs) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto network = std::make_shared<net::FakeNetwork>();
  net::FakeSocketHandler handler(network);
  ScriptedService service;

  net::DaemonConfig daemon_config;
  daemon_config.listen = {"bench", 1};
  daemon_config.state_dir = dir;
  net::ServeDaemon daemon(handler, service, daemon_config);
  daemon.start();

  net::ClientConfig client_config;
  client_config.connect = {"bench", 1};
  client_config.session_id = "bench";
  client_config.state_path = dir + "/client.json";
  client_config.traffic.requests = requests;
  client_config.traffic.arrival_rate_hz = 500.0;
  client_config.traffic.seed = 0xBE9C4;

  net::FlakyConfig flaky;
  flaky.severs = severs;
  flaky.seed = 0xF1A6;
  flaky.min_bytes = 2000;
  flaky.max_bytes = 60000;
  net::FlakySocketHandler chaos(handler, flaky);
  net::ServeClient client(
      severs > 0 ? static_cast<net::SocketHandler&>(chaos)
                 : static_cast<net::SocketHandler&>(handler),
      client_config);

  RunStats stats;
  const std::uint64_t replayed_before =
      net::net_metrics().bytes_replayed.value();
  const auto start = std::chrono::steady_clock::now();
  while (!client.done()) {
    client.step();
    daemon.step();
    ++stats.steps;
  }
  stats.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  stats.reconnects = client.reconnects();
  stats.bytes_replayed =
      net::net_metrics().bytes_replayed.value() - replayed_before;
  stats.report = client.report();
  std::filesystem::remove_all(dir);
  return stats;
}

}  // namespace
}  // namespace hadas

int main() {
  using namespace hadas;
  const std::size_t requests = bench::paper_budget() ? 200000 : 20000;
  const std::size_t severs = 8;
  const std::string dir = bench::out_dir();

  std::cout << "clean loopback session (" << requests << " requests)...\n";
  const RunStats clean = run_session(dir + "/net_bench_clean", requests, 0);
  std::cout << "flaky loopback session (" << severs << " severs)...\n";
  const RunStats chaos =
      run_session(dir + "/net_bench_flaky", requests, severs);

  const double req_per_s =
      clean.wall_s > 0.0 ? static_cast<double>(requests) / clean.wall_s : 0.0;
  const double resume_steps =
      chaos.reconnects > 0
          ? static_cast<double>(chaos.steps - clean.steps) / chaos.reconnects
          : 0.0;
  const bool identical = clean.report == chaos.report;

  std::cout << "clean:  " << clean.steps << " steps, "
            << util::fmt_fixed(clean.wall_s * 1e3, 1) << " ms wall, "
            << util::fmt_si(req_per_s) << " req/s\n"
            << "flaky:  " << chaos.steps << " steps, "
            << chaos.reconnects << " reconnects, "
            << chaos.bytes_replayed << " bytes replayed\n"
            << "resume: " << util::fmt_fixed(resume_steps, 1)
            << " extra steps per sever (simulated clock)\n"
            << "report: " << (identical ? "byte-identical" : "DIFFERS")
            << " after chaos\n";

  util::Json::Object doc;
  doc["bench"] = util::Json(std::string("net_throughput"));
  doc["requests"] = util::Json(requests);
  doc["clean_steps"] = util::Json(clean.steps);
  doc["clean_wall_s"] = util::Json(clean.wall_s);
  doc["requests_per_s"] = util::Json(req_per_s);
  doc["severs"] = util::Json(severs);
  doc["flaky_steps"] = util::Json(chaos.steps);
  doc["flaky_reconnects"] = util::Json(chaos.reconnects);
  doc["flaky_bytes_replayed"] = util::Json(chaos.bytes_replayed);
  doc["resume_steps_per_sever"] = util::Json(resume_steps);
  doc["report_byte_identical"] = util::Json(identical);
  const std::string out = dir + "/net_throughput.json";
  bench::write_result_json(out, util::Json(std::move(doc)));
  std::cout << "results -> " << out << "\n";
  return identical ? 0 : 1;
}
