// Ablation (beyond the paper): value of each DVFS dimension. Runs the IOE
// for one backbone on the TX2 Pascal GPU under three F subspaces — default
// frequencies only (no DVFS), core-frequency only, and core+EMC — and
// compares the best achievable energy gain at a fixed accuracy floor.

#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "core/ioe.hpp"
#include "supernet/baselines.hpp"
#include "util/csv.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;

namespace {
/// Best energy gain among solutions meeting the accuracy floor.
double best_gain(const core::IoeResult& ioe, double floor) {
  double best = 0.0;
  for (const auto& sol : ioe.history)
    if (sol.metrics.oracle_accuracy >= floor)
      best = std::max(best, sol.metrics.energy_gain);
  return best;
}
}  // namespace

int main() {
  const auto space = supernet::SearchSpace::attentive_nas();
  const supernet::CostModel cost_model(space);
  const supernet::AccuracySurrogate surrogate(cost_model);
  const supernet::BackboneConfig backbone = supernet::baseline_a6();
  const supernet::NetworkCost cost = cost_model.analyze(backbone);
  const double separability =
      data::separability_from_accuracy(surrogate.accuracy(backbone));

  const core::HadasConfig config = bench::experiment_config();
  const data::SyntheticTask task(config.data);

  std::cout << "=== Ablation: DVFS dimensions (backbone a6, TX2 Pascal GPU) ===\n\n";
  std::cout << "training exit bank...\n";
  const dynn::ExitBank bank(task, cost, separability, config.bank);

  struct Variant {
    std::string name;
    hw::DeviceSpec device;
  };
  std::vector<Variant> variants;
  {
    hw::DeviceSpec full = hw::make_device(hw::Target::kTx2PascalGpu);
    hw::DeviceSpec core_only = full;
    core_only.emc_freqs_hz = {full.emc_freqs_hz.back()};
    hw::DeviceSpec none = core_only;
    none.core_freqs_hz = {full.core_freqs_hz.back()};
    variants.push_back({"no DVFS (defaults)", none});
    variants.push_back({"core only", core_only});
    variants.push_back({"core + EMC", full});
  }

  const double floor = bank.backbone_accuracy();
  util::TextTable table({"F subspace", "|F|", "best energy gain @ acc floor"},
                        {util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight});
  util::CsvWriter csv(bench::out_dir() + "/ablation_dvfs.csv",
                      {"variant", "f_size", "best_gain"});

  for (const Variant& variant : variants) {
    const hw::HardwareEvaluator evaluator(variant.device);
    const dynn::MultiExitCostTable table_costs(cost, evaluator);
    core::IoeConfig ioe_config = config.ioe;
    core::InnerEngine engine(bank, table_costs, ioe_config);
    const core::IoeResult result = engine.run();
    const double gain = best_gain(result, floor);
    table.add_row({variant.name, std::to_string(hw::dvfs_space_size(variant.device)),
                   util::fmt_pct(gain, 1)});
    csv.row({variant.name,
             util::fmt_fixed(static_cast<double>(hw::dvfs_space_size(variant.device)), 0),
             util::fmt_fixed(gain, 4)});
  }
  table.print(std::cout);
  std::cout << "\n(expected: each added frequency domain increases the best"
               " achievable gain; EEx alone < +core < +core+EMC)\n";
  return 0;
}
