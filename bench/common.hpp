#pragma once

// Shared configuration for the paper-reproduction bench binaries.
//
// Every bench is deterministic (fixed seeds). Default budgets are scaled
// down from the paper's (450 OOE / 3500 IOE iterations) so the full bench
// suite runs in minutes on a laptop; set HADAS_PAPER_BUDGET=1 to use the
// paper's iteration counts.

#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/hadas_engine.hpp"
#include "util/durable/durable_file.hpp"
#include "util/json.hpp"

namespace hadas::bench {

/// Durable-envelope format tag of bench result JSON files.
inline constexpr const char* kBenchFormatTag = "hadas-bench-v1";

/// Write a bench result document crash-safely (write-to-temp + fsync +
/// atomic rename via util::durable::DurableFile): a bench killed mid-write
/// leaves the previous result intact, never a torn JSON file.
inline void write_result_json(const std::string& path,
                              const hadas::util::Json& doc) {
  hadas::util::durable::DurableFile::write(path, kBenchFormatTag,
                                           doc.dump(2) + "\n");
}

inline bool paper_budget() {
  const char* env = std::getenv("HADAS_PAPER_BUDGET");
  return env != nullptr && std::string(env) == "1";
}

/// Directory where benches drop their CSV series (figure data).
inline std::string out_dir() {
  const char* env = std::getenv("HADAS_BENCH_OUT");
  std::string dir = env != nullptr ? env : "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

/// The standard experiment configuration used by all benches.
inline core::HadasConfig experiment_config() {
  core::HadasConfig config;
  if (paper_budget()) {
    config.outer_population = 30;           // 30 x 15 = 450 OOE iterations
    config.outer_generations = 15;
    config.ioe_backbones_per_generation = 3;
    config.ioe.nsga.population = 50;        // 50 x 70 = 3500 IOE iterations
    config.ioe.nsga.generations = 70;
  } else {
    config.outer_population = 24;           // 24 x 10 = 240 OOE iterations
    config.outer_generations = 10;
    config.ioe_backbones_per_generation = 3;
    config.ioe.nsga.population = 30;        // 30 x 20 = 600 IOE iterations
    config.ioe.nsga.generations = 20;
    config.data.train_size = 1500;
    config.bank.train.epochs = 8;
  }
  config.seed = 20230417;
  return config;
}

/// Budget-matched IOE config for optimizing the AttentiveNAS baselines ("for
/// a fair comparison, we fix the same optimization budget", Sec. V-B).
inline core::IoeConfig baseline_ioe_config() { return experiment_config().ioe; }

}  // namespace hadas::bench
