#include "bench/fig5_data.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/pareto.hpp"
#include "supernet/baselines.hpp"

namespace hadas::bench {

namespace {
std::string device_slug(hw::Target target) {
  switch (target) {
    case hw::Target::kAgxVoltaGpu: return "agx_volta_gpu";
    case hw::Target::kCarmelCpu: return "carmel_cpu";
    case hw::Target::kTx2PascalGpu: return "tx2_pascal_gpu";
    case hw::Target::kDenverCpu: return "denver_cpu";
  }
  return "unknown";
}

IoePoint to_point(const core::InnerSolution& sol) {
  return {sol.metrics.energy_gain, sol.metrics.mean_n,
          sol.metrics.oracle_accuracy};
}
}  // namespace

std::string fig5_cache_path(hw::Target target) {
  return out_dir() + "/fig5_points_" + device_slug(target) + ".csv";
}

DeviceIoeData compute_device_ioe(hw::Target target) {
  const auto space = supernet::SearchSpace::attentive_nas();
  const core::HadasConfig config = experiment_config();

  DeviceIoeData data;
  core::HadasEngine engine(space, target, config);

  std::cerr << "  [" << hw::target_name(target) << "] bi-level HADAS run...\n";
  const core::HadasResult result = engine.run();
  for (const auto& outcome : result.backbones) {
    for (const auto& sol : outcome.inner_history)
      data.hadas.push_back(to_point(sol));
  }

  std::cerr << "  [" << hw::target_name(target)
            << "] optimized baselines (a0..a6, same IOE budget)...\n";
  for (const auto& baseline : supernet::attentive_nas_baselines()) {
    const core::IoeResult ioe = engine.run_ioe(baseline.config);
    for (const auto& sol : ioe.history) data.baseline.push_back(to_point(sol));
  }
  return data;
}

void write_fig5_cache(hw::Target target, const DeviceIoeData& data) {
  std::ofstream out(fig5_cache_path(target));
  out << "source,energy_gain,mean_n,oracle_acc\n";
  for (const auto& p : data.hadas)
    out << "hadas," << p.energy_gain << ',' << p.mean_n << ',' << p.oracle_acc
        << '\n';
  for (const auto& p : data.baseline)
    out << "baseline," << p.energy_gain << ',' << p.mean_n << ','
        << p.oracle_acc << '\n';
}

bool load_fig5_cache(hw::Target target, DeviceIoeData* data) {
  std::ifstream in(fig5_cache_path(target));
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;  // header
  DeviceIoeData loaded;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string source, field;
    if (!std::getline(ls, source, ',')) return false;
    IoePoint p;
    if (!std::getline(ls, field, ',')) return false;
    p.energy_gain = std::stod(field);
    if (!std::getline(ls, field, ',')) return false;
    p.mean_n = std::stod(field);
    if (!std::getline(ls, field, ',')) return false;
    p.oracle_acc = std::stod(field);
    if (source == "hadas")
      loaded.hadas.push_back(p);
    else if (source == "baseline")
      loaded.baseline.push_back(p);
    else
      return false;
  }
  if (loaded.hadas.empty() || loaded.baseline.empty()) return false;
  *data = std::move(loaded);
  return true;
}

DeviceIoeData device_ioe_data(hw::Target target) {
  DeviceIoeData data;
  if (load_fig5_cache(target, &data)) {
    std::cerr << "  [" << hw::target_name(target) << "] using cached points ("
              << fig5_cache_path(target) << ")\n";
    return data;
  }
  data = compute_device_ioe(target);
  write_fig5_cache(target, data);
  return data;
}

std::vector<IoePoint> front_of(const std::vector<IoePoint>& cloud) {
  std::vector<core::Objectives> pts;
  pts.reserve(cloud.size());
  for (const auto& p : cloud) pts.push_back({p.energy_gain, p.mean_n});
  std::vector<IoePoint> front;
  for (std::size_t idx : core::pareto_front(pts)) front.push_back(cloud[idx]);
  return front;
}

}  // namespace hadas::bench
