// Figure 6: search-efficacy comparison between HADAS and the optimized
// baselines on the four platforms — (a) hypervolume of the dominated
// objective-space region, (b) ratio of dominance. Reuses bench_fig5_ioe's
// cached point clouds when available.
//
// Paper shape to reproduce: HADAS wins on both metrics on all four devices;
// on the Pascal GPU its HV coverage and RoD are ~16% and ~95% higher.

#include <iostream>

#include "bench/fig5_data.hpp"
#include "core/pareto.hpp"
#include "util/csv.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;

int main() {
  std::cout << "=== Figure 6: hypervolume and ratio of dominance ===\n";

  util::TextTable table({"device", "HV HADAS", "HV baseline", "HV ratio",
                         "RoD HADAS", "RoD baseline"},
                        {util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight});
  util::CsvWriter csv(bench::out_dir() + "/fig6_hv_rod.csv",
                      {"device", "hv_hadas", "hv_baseline", "rod_hadas",
                       "rod_baseline"});

  for (hw::Target target : hw::all_targets()) {
    const bench::DeviceIoeData data = bench::device_ioe_data(target);
    const auto front_h = bench::front_of(data.hadas);
    const auto front_b = bench::front_of(data.baseline);

    auto objs = [](const std::vector<bench::IoePoint>& pts) {
      std::vector<core::Objectives> o;
      for (const auto& p : pts) o.push_back({p.energy_gain, p.mean_n});
      return o;
    };
    const core::Objectives ref = {0.0, 0.0};
    const double hv_h = core::hypervolume(objs(front_h), ref);
    const double hv_b = core::hypervolume(objs(front_b), ref);
    const double rod_h = core::ratio_of_dominance(objs(front_h), objs(front_b));
    const double rod_b = core::ratio_of_dominance(objs(front_b), objs(front_h));

    table.add_row({hw::target_name(target), util::fmt_fixed(hv_h, 4),
                   util::fmt_fixed(hv_b, 4),
                   util::fmt_fixed(hv_b > 0 ? hv_h / hv_b : 0.0, 2) + "x",
                   util::fmt_pct(rod_h, 1), util::fmt_pct(rod_b, 1)});
    csv.row({hw::target_name(target), util::fmt_fixed(hv_h, 6),
             util::fmt_fixed(hv_b, 6), util::fmt_fixed(rod_h, 4),
             util::fmt_fixed(rod_b, 4)});
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\n(paper: HADAS ahead on both metrics on all four platforms;\n"
               " Pascal GPU: +16% HV coverage, +95% RoD over the baselines)\n";
  return 0;
}
