// Robustness bench for the hw/ fault-tolerance layer: (1) wrapper overhead
// of the robust measurement envelope at a 0% fault rate — a tight
// measure_network micro-loop plus a full HadasEngine::run, both of which
// must stay bit-identical to the raw path — and (2) recovery statistics
// (retries, quarantines, breaker trips) at 5% and 20% transient fault
// rates, where the noiseless fault model lets the search reconverge to the
// clean run's exact Pareto front. Results go to stdout and
// bench_out/robustness.json.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/hadas_engine.hpp"
#include "hw/device.hpp"
#include "hw/robust_eval.hpp"
#include "supernet/baselines.hpp"
#include "supernet/cost_model.hpp"
#include "util/json.hpp"
#include "util/strutil.hpp"

namespace hadas {
namespace {

using clock_type = std::chrono::steady_clock;

/// Stable FNV-1a fingerprint of a result's final Pareto set (bit patterns
/// of every reported metric) — equal fingerprints <=> bit-identical fronts.
std::uint64_t fingerprint(const core::HadasResult& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  auto mix_double = [&](double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(result.final_pareto.size());
  for (const core::FinalSolution& sol : result.final_pareto) {
    for (std::uint8_t bit : sol.placement.mask()) mix(bit);
    mix(sol.setting.core_idx);
    mix(sol.setting.emc_idx);
    mix_double(sol.dynamic.score_eq5);
    mix_double(sol.dynamic.energy_gain);
    mix_double(sol.dynamic.oracle_accuracy);
    mix_double(sol.static_eval.latency_s);
    mix_double(sol.static_eval.energy_j);
  }
  for (std::size_t idx : result.static_front) mix(idx);
  return h;
}

core::HadasConfig robustness_config() {
  core::HadasConfig config = bench::experiment_config();
  if (!bench::paper_budget()) {
    // Scaled so six full runs (raw, 2x engaged, 5%, 20%, spare) fit in
    // bench-suite time.
    config.outer_population = 12;
    config.outer_generations = 3;
    config.ioe_backbones_per_generation = 3;
    config.ioe.nsga.population = 16;
    config.ioe.nsga.generations = 8;
    config.data.train_size = 800;
    config.bank.train.epochs = 4;
  }
  return config;
}

/// Tight measure_network loop over the AttentiveNAS baselines; returns
/// seconds. The latency sum is returned through `sink` to keep the
/// optimizer honest.
double micro_loop(const hw::HardwareEvaluator& eval,
                  const hw::RobustEvaluator* robust,
                  const std::vector<supernet::NetworkCost>& costs,
                  std::size_t iterations, double* sink) {
  const hw::DvfsSetting setting = hw::default_setting(eval.device());
  double acc = 0.0;
  const auto t0 = clock_type::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    const supernet::NetworkCost& cost = costs[i % costs.size()];
    const hw::HwMeasurement m =
        robust != nullptr ? robust->measure_network(cost, setting, i)
                          : eval.measure_network(cost, setting);
    acc += m.latency_s;
  }
  const double seconds =
      std::chrono::duration<double>(clock_type::now() - t0).count();
  *sink += acc;
  return seconds;
}

util::Json::Object health_json(const hw::HealthReport& report) {
  util::Json::Object obj;
  obj["state"] = hw::breaker_state_name(report.state);
  obj["measurements"] = report.measurements;
  obj["attempts"] = report.attempts;
  obj["retries"] = report.retries;
  obj["transient_failures"] = report.transient_failures;
  obj["quarantined"] = report.quarantined;
  obj["outliers_rejected"] = report.outliers_rejected;
  obj["failed_measurements"] = report.failed_measurements;
  obj["breaker_trips"] = report.breaker_trips;
  obj["simulated_backoff_s"] = report.backoff_s;
  return obj;
}

}  // namespace
}  // namespace hadas

int main() {
  using namespace hadas;

  std::cout << "=== Robust measurement envelope: overhead & recovery ===\n\n";

  const supernet::SearchSpace space = supernet::SearchSpace::attentive_nas();
  const core::HadasConfig base = robustness_config();
  util::Json::Object doc;
  doc["bench"] = "robustness";

  // ---- Part 1a: per-call wrapper overhead (micro-loop, 0% faults) ----
  const hw::HardwareEvaluator eval(hw::make_device(hw::Target::kTx2PascalGpu));
  const supernet::CostModel cost_model(space);
  std::vector<supernet::NetworkCost> costs;
  for (const auto& baseline : supernet::attentive_nas_baselines())
    costs.push_back(cost_model.analyze(baseline.config));

  const std::size_t iterations = bench::paper_budget() ? 200000 : 50000;
  double sink = 0.0;
  // Warm up caches, then time raw vs. engaged (samples=1: pure envelope
  // cost; samples=3: envelope + median aggregation).
  (void)micro_loop(eval, nullptr, costs, iterations / 10, &sink);
  const double raw_s = micro_loop(eval, nullptr, costs, iterations, &sink);

  hw::RobustConfig engaged1;
  engaged1.engage = true;
  engaged1.samples = 1;
  const hw::RobustEvaluator robust1(eval, engaged1);
  const double wrap1_s = micro_loop(eval, &robust1, costs, iterations, &sink);

  hw::RobustConfig engaged3;
  engaged3.engage = true;
  engaged3.samples = 3;
  const hw::RobustEvaluator robust3(eval, engaged3);
  const double wrap3_s = micro_loop(eval, &robust3, costs, iterations, &sink);

  const double micro1_pct = raw_s > 0.0 ? 100.0 * (wrap1_s - raw_s) / raw_s : 0.0;
  const double micro3_pct = raw_s > 0.0 ? 100.0 * (wrap3_s - raw_s) / raw_s : 0.0;
  std::cout << "micro measure_network x" << iterations << ":\n"
            << "  raw                 " << util::fmt_fixed(raw_s * 1e3, 1)
            << " ms\n"
            << "  engaged, samples=1  " << util::fmt_fixed(wrap1_s * 1e3, 1)
            << " ms  (+" << util::fmt_fixed(micro1_pct, 1) << "%)\n"
            << "  engaged, samples=3  " << util::fmt_fixed(wrap3_s * 1e3, 1)
            << " ms  (+" << util::fmt_fixed(micro3_pct, 1) << "%)\n\n";

  util::Json::Object micro;
  micro["iterations"] = iterations;
  micro["raw_seconds"] = raw_s;
  micro["engaged_samples1_seconds"] = wrap1_s;
  micro["engaged_samples3_seconds"] = wrap3_s;
  micro["overhead_samples1_pct"] = micro1_pct;
  micro["overhead_samples3_pct"] = micro3_pct;
  doc["micro"] = util::Json(std::move(micro));

  // ---- Part 1b: end-to-end search overhead at 0% faults ----
  // The engaged envelope must not change a single bit of the result.
  auto timed_run = [&](const core::HadasConfig& config, double* seconds) {
    core::HadasEngine engine(space, hw::Target::kTx2PascalGpu, config);
    const auto t0 = clock_type::now();
    core::HadasResult result = engine.run();
    *seconds = std::chrono::duration<double>(clock_type::now() - t0).count();
    return result;
  };

  double clean_s = 0.0;
  const core::HadasResult clean = timed_run(base, &clean_s);
  const std::uint64_t clean_fp = fingerprint(clean);

  core::HadasConfig engaged_cfg = base;
  engaged_cfg.robust.engage = true;
  engaged_cfg.robust.samples = 3;
  double engaged_s = 0.0;
  const core::HadasResult engaged = timed_run(engaged_cfg, &engaged_s);
  const bool engaged_identical = fingerprint(engaged) == clean_fp;
  const double search_pct =
      clean_s > 0.0 ? 100.0 * (engaged_s - clean_s) / clean_s : 0.0;

  std::cout << "full search (pop " << base.outer_population << ", gens "
            << base.outer_generations << "):\n"
            << "  raw path            " << util::fmt_fixed(clean_s, 2) << " s\n"
            << "  engaged, samples=3  " << util::fmt_fixed(engaged_s, 2)
            << " s  (" << (search_pct >= 0.0 ? "+" : "")
            << util::fmt_fixed(search_pct, 1) << "%, target < 5%)  front "
            << (engaged_identical ? "identical" : "DIFFERS") << "\n\n";

  util::Json::Object search;
  search["raw_seconds"] = clean_s;
  search["engaged_samples3_seconds"] = engaged_s;
  search["overhead_pct"] = search_pct;
  search["overhead_target_pct"] = 5.0;
  search["within_target"] = search_pct < 5.0;
  search["front_identical_to_raw"] = engaged_identical;
  search["final_pareto_size"] = clean.final_pareto.size();
  doc["search_overhead"] = util::Json(std::move(search));

  // ---- Part 2: recovery statistics under transient faults ----
  // Faults are noiseless here, so every recovered measurement equals the
  // clean value exactly and the 5% front must match the clean fingerprint.
  util::Json::Array recovery;
  bool low_rate_identical = false;
  std::cout << "rate   seconds  retries  transient  quarantined  failed  "
               "trips  front==clean\n";
  for (const double rate : {0.05, 0.20}) {
    core::HadasConfig config = base;
    config.robust.faults.transient_failure_rate = rate;
    config.robust.faults.nan_rate = rate / 5.0;
    double seconds = 0.0;
    const core::HadasResult result = timed_run(config, &seconds);
    const hw::HealthReport& health = result.device_health;
    const bool identical = fingerprint(result) == clean_fp;
    if (rate == 0.05) low_rate_identical = identical;

    std::cout << util::fmt_fixed(rate, 2) << "   "
              << util::fmt_fixed(seconds, 2) << "     " << health.retries
              << "      " << health.transient_failures << "        "
              << health.quarantined << "           "
              << health.failed_measurements << "       "
              << health.breaker_trips << "      "
              << (identical ? "yes" : "NO") << "\n";

    util::Json::Object entry;
    entry["transient_failure_rate"] = rate;
    entry["nan_rate"] = rate / 5.0;
    entry["seconds"] = seconds;
    entry["front_identical_to_clean"] = identical;
    entry["final_pareto_size"] = result.final_pareto.size();
    entry["health"] = util::Json(health_json(health));
    recovery.push_back(util::Json(std::move(entry)));
  }
  doc["recovery"] = util::Json(std::move(recovery));
  doc["checksum_sink"] = sink;  // anti-DCE; also documents determinism drift

  const bool ok = engaged_identical && low_rate_identical;
  std::cout << "\nverdict: engaged-at-0% "
            << (engaged_identical ? "bit-identical" : "MISMATCH")
            << ", 5%-rate front "
            << (low_rate_identical ? "reconverged exactly" : "DIVERGED")
            << "\n";

  const std::string path = bench::out_dir() + "/robustness.json";
  bench::write_result_json(path, util::Json(std::move(doc)));
  std::cout << "wrote " << path << "\n";
  return ok ? 0 : 1;
}
