#pragma once

// Shared computation for Fig. 5 (bottom row) and Fig. 6: per device, the
// clouds of (x, f | b) candidates explored by HADAS's bi-level search and by
// the budget-matched "optimized baselines" (a0..a6 run through the same IOE).
//
// Points live in the paper's reported plane: x = ideal-mapping energy
// efficiency gain, y = average N_i of the sampled exits. The expensive
// computation is cached as CSV under the bench output directory so that
// bench_fig6 can reuse bench_fig5_ioe's run.

#include <string>
#include <vector>

#include "bench/common.hpp"

namespace hadas::bench {

struct IoePoint {
  double energy_gain = 0.0;
  double mean_n = 0.0;
  double oracle_acc = 0.0;
};

struct DeviceIoeData {
  std::vector<IoePoint> hadas;     ///< every candidate explored by HADAS IOEs
  std::vector<IoePoint> baseline;  ///< every candidate explored for a0..a6
};

/// File the cache lives in for a device.
std::string fig5_cache_path(hw::Target target);

/// Full computation: bi-level HADAS run + budget-matched baseline IOEs.
DeviceIoeData compute_device_ioe(hw::Target target);

/// Load a cached computation; returns false if absent/corrupt.
bool load_fig5_cache(hw::Target target, DeviceIoeData* data);

/// Write the cache.
void write_fig5_cache(hw::Target target, const DeviceIoeData& data);

/// Cache-or-compute.
DeviceIoeData device_ioe_data(hw::Target target);

/// Pareto front of a cloud in the (energy_gain, mean_n) plane.
std::vector<IoePoint> front_of(const std::vector<IoePoint>& cloud);

}  // namespace hadas::bench
