// Ablation (paper Sec. V-A claim): "HADAS's search overhead can be reduced
// to 1 GPU day if a proxy model replaced the HW-in-the-loop setup". Trains
// the ridge proxy on a profiling budget of measured paths and reports its
// held-out fidelity (R^2, Spearman rank correlation, mean relative error) as
// a function of the number of profiling measurements — plus the speedup of
// a proxy query over the simulated in-the-loop measurement.

#include <chrono>
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "dynn/proxy_sampling.hpp"
#include "hw/proxy.hpp"
#include "supernet/baselines.hpp"
#include "util/csv.hpp"
#include "util/linalg.hpp"
#include "util/statistics.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;

int main() {
  const auto space = supernet::SearchSpace::attentive_nas();
  const supernet::CostModel cm(space);
  const hw::HardwareEvaluator evaluator(hw::make_device(hw::Target::kTx2PascalGpu));

  // Profiling corpus: the baseline family plus random subnets.
  std::vector<supernet::NetworkCost> nets;
  for (const auto& baseline : supernet::attentive_nas_baselines())
    nets.push_back(cm.analyze(baseline.config));
  util::Rng rng(55);
  for (int i = 0; i < 9; ++i)
    nets.push_back(cm.analyze(supernet::decode(space, supernet::random_genome(space, rng))));

  const auto held_out = dynn::collect_proxy_samples(evaluator, nets, 50, 999);

  std::cout << "=== Ablation: proxy model vs HW-in-the-loop (TX2 Pascal GPU) ===\n\n";
  util::TextTable table({"profiling samples", "R^2 latency", "R^2 energy",
                         "Spearman energy", "mean |rel err| energy"});
  util::CsvWriter csv(bench::out_dir() + "/ablation_proxy.csv",
                      {"samples", "r2_latency", "r2_energy", "spearman_energy",
                       "mre_energy"});

  for (std::size_t per_net : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto train = dynn::collect_proxy_samples(evaluator, nets, per_net,
                                                   1000 + per_net);
    if (train.size() < 12) continue;
    const hw::ProxyModel proxy = hw::ProxyModel::fit(evaluator.device(), train);
    std::vector<double> pl, tl, pe, te;
    double mre = 0.0;
    for (const auto& sample : held_out) {
      const auto m = proxy.predict(sample.macs, sample.traffic_bytes,
                                   sample.layer_count, sample.setting);
      pl.push_back(m.latency_s);
      tl.push_back(sample.measured.latency_s);
      pe.push_back(m.energy_j);
      te.push_back(sample.measured.energy_j);
      mre += std::fabs(m.energy_j - sample.measured.energy_j) /
             sample.measured.energy_j;
    }
    mre /= static_cast<double>(held_out.size());
    table.add_row({std::to_string(train.size()),
                   util::fmt_fixed(util::r_squared(pl, tl), 4),
                   util::fmt_fixed(util::r_squared(pe, te), 4),
                   util::fmt_fixed(util::spearman(pe, te), 4),
                   util::fmt_pct(mre, 2)});
    csv.row({static_cast<double>(train.size()), util::r_squared(pl, tl),
             util::r_squared(pe, te), util::spearman(pe, te), mre});
  }
  table.print(std::cout);

  // Query-speed comparison (the "2-3 GPU days -> 1 GPU day" argument).
  const auto& net = nets.front();
  const dynn::MultiExitCostTable cost_table(net, evaluator);
  const auto train = dynn::collect_proxy_samples(evaluator, nets, 8, 77);
  const hw::ProxyModel proxy = hw::ProxyModel::fit(evaluator.device(), train);

  auto time_of = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 20000; ++i) fn(static_cast<std::size_t>(i));
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count() /
           20000.0;
  };
  double sink = 0.0;
  const double t_measure = time_of([&](std::size_t i) {
    sink += evaluator.measure_network(net, {i % 13, i % 11}).energy_j;
  });
  const double t_proxy = time_of([&](std::size_t i) {
    sink += proxy.predict(net.total_macs, net.total_traffic_bytes,
                          static_cast<double>(net.layers.size()), {i % 13, i % 11})
                .energy_j;
  });
  std::cout << "\nper-query cost: analytic in-the-loop "
            << util::fmt_fixed(t_measure * 1e6, 2) << " us vs proxy "
            << util::fmt_fixed(t_proxy * 1e6, 2) << " us ("
            << util::fmt_fixed(t_measure / t_proxy, 1) << "x)\n"
            << "(on the physical testbed each in-the-loop measurement takes\n"
            << " seconds of board time; the proxy removes it entirely — the\n"
            << " paper's 2-3 GPU days -> 1 GPU day estimate)  [sink "
            << util::fmt_fixed(sink, 1) << "]\n";
  return 0;
}
