// Table II: the joint HADAS search spaces — decision variables, value
// ranges and cardinalities for B (backbones), X (exits) and F (DVFS) — as
// instantiated by this implementation, plus the total space sizes.

#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "dynn/exit_placement.hpp"
#include "supernet/baselines.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;

int main() {
  const auto space = supernet::SearchSpace::attentive_nas();

  std::cout << "=== Table II: HADAS joint search spaces ===\n\n";

  util::TextTable b({"decision variable", "values", "cardinality"},
                    {util::Align::kLeft, util::Align::kLeft, util::Align::kRight});
  b.set_title("Backbone search space (B)");
  b.add_row({"number of blocks (n_block)", "7", "1"});
  {
    std::vector<std::string> res;
    for (int r : space.resolutions) res.push_back(std::to_string(r));
    b.add_row({"input resolution (res)", "{" + util::join(res, ",") + "}",
               std::to_string(space.resolutions.size())});
  }
  for (std::size_t s = 0; s < supernet::kNumStages; ++s) {
    const auto& st = space.stages[s];
    auto fmt = [](const std::vector<int>& v) {
      std::vector<std::string> parts;
      for (int x : v) parts.push_back(std::to_string(x));
      return "{" + util::join(parts, ",") + "}";
    };
    b.add_row({st.name + " (w, d, k, er)",
               fmt(st.widths) + " x " + fmt(st.depths) + " x " + fmt(st.kernels) +
                   " x " + fmt(st.expands),
               std::to_string(st.widths.size() * st.depths.size() *
                              st.kernels.size() * st.expands.size())});
  }
  b.add_row({"last conv width", "{1792, 1984}", std::to_string(space.last_widths.size())});
  b.print(std::cout);
  std::cout << "total |B| = 10^" << util::fmt_fixed(space.log10_cardinality(), 2)
            << "  (paper: 2.94e11 = 10^11.47)\n\n";

  util::TextTable x({"decision variable", "values", "example (a0 / a6)"},
                    {util::Align::kLeft, util::Align::kLeft, util::Align::kLeft});
  x.set_title("Exits search space (X), conditioned on the backbone depth");
  const int l_a0 = supernet::baseline_a0().total_layers();
  const int l_a6 = supernet::baseline_a6().total_layers();
  x.add_row({"number of exits (nX)", "[1, sum(l)-5]",
             std::to_string(l_a0 - 5) + " / " + std::to_string(l_a6 - 5) + " max"});
  x.add_row({"exit positions (posX)", "[5, sum(l))",
             "layers 5.." + std::to_string(l_a0 - 1) + " / 5.." +
                 std::to_string(l_a6 - 1)});
  x.print(std::cout);
  std::cout << "|X| for a0 = 2^" << (l_a0 - 5) << "-1, for a6 = 2^" << (l_a6 - 5)
            << "-1 placements\n\n";

  util::TextTable f({"hardware", "frequency range", "cardinality"},
                    {util::Align::kLeft, util::Align::kLeft, util::Align::kRight});
  f.set_title("DVFS search space (F)");
  for (hw::Target target : hw::all_targets()) {
    const hw::DeviceSpec dev = hw::make_device(target);
    f.add_row({dev.name + " (core)",
               "[" + util::fmt_fixed(dev.core_freqs_hz.front() / 1e9, 1) + "GHz, " +
                   util::fmt_fixed(dev.core_freqs_hz.back() / 1e9, 1) + "GHz]",
               std::to_string(dev.core_freqs_hz.size())});
  }
  for (const char* platform : {"AGX", "TX2"}) {
    const hw::DeviceSpec dev = hw::make_device(
        platform == std::string("AGX") ? hw::Target::kAgxVoltaGpu
                                       : hw::Target::kTx2PascalGpu);
    f.add_row({std::string("EMC frequency (") + platform + " SOC)",
               "[" + util::fmt_fixed(dev.emc_freqs_hz.front() / 1e9, 1) + "GHz, " +
                   util::fmt_fixed(dev.emc_freqs_hz.back() / 1e9, 1) + "GHz]",
               std::to_string(dev.emc_freqs_hz.size())});
  }
  f.print(std::cout);

  double joint_log10 = space.log10_cardinality() +
                       std::log10(std::pow(2.0, l_a6 - 5)) +
                       std::log10(13.0 * 11.0);
  std::cout << "\nexample joint |B x X x F| (a6-depth backbone on TX2 GPU) = 10^"
            << util::fmt_fixed(joint_log10, 1) << "\n";
  return 0;
}
