// Table III: DyNN comparison on the TX2 Pascal GPU — static vs dynamic
// accuracy and energy for AttentiveNAS a0 (most efficient baseline), a6
// (most accurate baseline) and the top HADAS designs b1..b4.
//
// Columns: Baseline Acc | EEx Acc | Baseline Ergy | EEx Ergy | EEx_DVFS Ergy.
// Paper shape to reproduce: the HADAS models beat the baselines in both
// static and dynamic evaluation; b1 is ~57% / ~19% more energy-efficient
// than a6 / a0 while matching a6's (dynamic) accuracy level.

#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "supernet/baselines.hpp"
#include "util/csv.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;

namespace {

struct Row {
  std::string name;
  double baseline_acc, eex_acc;
  double baseline_mj, eex_mj, eex_dvfs_mj;
};

/// Evaluate one design choice: placement+setting from an IOE solution; the
/// EEx column re-measures the same placement at default DVFS.
Row make_row(const core::HadasEngine& engine, const std::string& name,
             const supernet::BackboneConfig& config,
             const dynn::ExitPlacement& placement, hw::DvfsSetting setting) {
  Row row;
  row.name = name;
  const auto& device = engine.static_evaluator().hardware().device();
  row.baseline_acc = engine.exit_bank(config).backbone_accuracy();
  const core::StaticEval s = engine.static_evaluator().evaluate(config);
  row.baseline_mj = s.energy_j * 1e3;

  const core::InnerSolution dvfs_sol =
      engine.evaluate_dynamic(config, placement, setting);
  row.eex_acc = dvfs_sol.metrics.oracle_accuracy;
  row.eex_dvfs_mj = dvfs_sol.metrics.energy_per_sample_j * 1e3;

  const core::InnerSolution eex_sol =
      engine.evaluate_dynamic(config, placement, hw::default_setting(device));
  row.eex_mj = eex_sol.metrics.energy_per_sample_j * 1e3;
  return row;
}

/// Best IOE solution: max energy gain subject to dynamic accuracy >= floor.
const core::InnerSolution* pick(const core::IoeResult& ioe, double acc_floor) {
  const core::InnerSolution* best = nullptr;
  for (const auto& sol : ioe.pareto) {
    if (sol.metrics.oracle_accuracy < acc_floor) continue;
    if (best == nullptr || sol.metrics.energy_gain > best->metrics.energy_gain)
      best = &sol;
  }
  return best != nullptr ? best : &ioe.pareto.front();
}

}  // namespace

int main() {
  const auto space = supernet::SearchSpace::attentive_nas();
  core::HadasEngine engine(space, hw::Target::kTx2PascalGpu,
                           bench::experiment_config());

  std::cout << "=== Table III: DyNN comparison on the TX2 Pascal GPU ===\n\n";

  std::vector<Row> rows;

  // --- AttentiveNAS baselines through the IOE (same budget). ---
  for (const char* name : {"a0", "a6"}) {
    const supernet::BackboneConfig config = name == std::string("a0")
                                                ? supernet::baseline_a0()
                                                : supernet::baseline_a6();
    std::cout << "optimizing AttentiveNAS_" << name << "...\n";
    const core::IoeResult ioe = engine.run_ioe(config);
    const core::InnerSolution* sol =
        pick(ioe, engine.exit_bank(config).backbone_accuracy());
    rows.push_back(make_row(engine, std::string("AttentiveNAS_") + name, config,
                            sol->placement, sol->setting));
  }

  // --- HADAS b1..b4: top designs from a bi-level run, spread over the
  // accuracy range as in the paper's table. ---
  std::cout << "running HADAS bi-level search...\n";
  const core::HadasResult result = engine.run();
  std::vector<const core::FinalSolution*> finals;
  for (const auto& sol : result.final_pareto) finals.push_back(&sol);
  std::sort(finals.begin(), finals.end(),
            [](const core::FinalSolution* a, const core::FinalSolution* b) {
              return a->dynamic.oracle_accuracy > b->dynamic.oracle_accuracy;
            });
  const std::size_t picks = std::min<std::size_t>(4, finals.size());
  for (std::size_t i = 0; i < picks; ++i) {
    // Spread selections across the sorted front (b1 = most accurate).
    const std::size_t idx =
        picks > 1 ? i * (finals.size() - 1) / (picks - 1) : 0;
    const core::FinalSolution* sol = finals[idx];
    rows.push_back(make_row(engine, "HADAS_b" + std::to_string(i + 1),
                            sol->backbone, sol->placement, sol->setting));
  }

  util::TextTable table({"model", "Baseline Acc", "EEx Acc", "Baseline Ergy(mJ)",
                         "EEx Ergy(mJ)", "EEx_DVFS Ergy(mJ)"},
                        {util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight});
  util::CsvWriter csv(bench::out_dir() + "/table3_dynn.csv",
                      {"model", "baseline_acc", "eex_acc", "baseline_mj",
                       "eex_mj", "eex_dvfs_mj"});
  for (const Row& row : rows) {
    table.add_row({row.name, util::fmt_pct(row.baseline_acc, 2),
                   util::fmt_pct(row.eex_acc, 2),
                   util::fmt_fixed(row.baseline_mj, 2),
                   util::fmt_fixed(row.eex_mj, 2),
                   util::fmt_fixed(row.eex_dvfs_mj, 2)});
    csv.row({row.name, util::fmt_fixed(row.baseline_acc, 4),
             util::fmt_fixed(row.eex_acc, 4), util::fmt_fixed(row.baseline_mj, 2),
             util::fmt_fixed(row.eex_mj, 2), util::fmt_fixed(row.eex_dvfs_mj, 2)});
  }
  table.print(std::cout);

  // Headline: b1 vs a6 and a0 on final (EEx+DVFS) energy.
  const Row& a0 = rows[0];
  const Row& a6 = rows[1];
  if (rows.size() > 2) {
    const Row& b1 = rows[2];
    std::cout << "\nb1 is " << util::fmt_pct(1.0 - b1.eex_dvfs_mj / a6.eex_mj, 1)
              << " more energy-efficient than a6 (EEx) and "
              << util::fmt_pct(1.0 - b1.eex_dvfs_mj / a0.eex_mj, 1)
              << " more than a0 (EEx)   [paper: 57% and 19%]\n";
  }
  return 0;
}
