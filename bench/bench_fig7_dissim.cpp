// Figure 7: ablation of the dissimilarity regularizer (dissim^gamma) in the
// exit score of eq. (6). The IOE is run for one backbone with the term
// disabled and with it enabled over two ranges of gamma; fronts are compared
// in the (energy gain, mean N_i) plane.
//
// Paper shape to reproduce: including dissimilarity focuses the search on
// dissimilar, high-contribution exits — improving the ratio of dominance
// (paper: +41%) and the accuracy/energy extremes of the front.

#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "core/pareto.hpp"
#include "supernet/baselines.hpp"
#include "util/csv.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;

namespace {
std::vector<core::Objectives> plane(const core::IoeResult& ioe) {
  std::vector<core::Objectives> pts;
  for (const auto& sol : ioe.pareto)
    pts.push_back({sol.metrics.energy_gain, sol.metrics.mean_n});
  return pts;
}

double max_axis(const std::vector<core::Objectives>& pts, std::size_t axis) {
  double best = 0.0;
  for (const auto& p : pts) best = std::max(best, p[axis]);
  return best;
}
}  // namespace

int main() {
  const auto space = supernet::SearchSpace::attentive_nas();
  core::HadasEngine engine(space, hw::Target::kTx2PascalGpu,
                           bench::experiment_config());
  // One fixed mid-sized backbone, as in the paper's single-backbone ablation.
  const supernet::BackboneConfig backbone =
      supernet::attentive_nas_baselines()[3].config;  // a3

  std::cout << "=== Figure 7: dissimilarity ablation (backbone a3, TX2 GPU) ===\n\n";

  // The ablation runs the paper's 2-D IOE formulation: energy efficiency
  // enters only through the eq.(5) score, so the dissimilarity term steers
  // which candidates the search explores (as in the paper's Fig. 7).
  core::IoeConfig base = bench::experiment_config().ioe;
  base.include_gain_objective = false;

  core::IoeConfig off = base;
  off.score.use_dissim = false;
  std::cout << "running IOE without dissim...\n";
  const core::IoeResult without = engine.run_ioe_with(backbone, off);
  const auto pts_without = plane(without);

  util::TextTable table({"gamma", "RoD(with,without)", "RoD(without,with)",
                         "HV with", "HV without", "max gain", "max mean N"},
                        {util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight});
  util::CsvWriter csv(bench::out_dir() + "/fig7_dissim.csv",
                      {"gamma", "rod_with_over_without", "rod_without_over_with",
                       "hv_with", "hv_without", "max_gain_with", "max_mean_n_with"});

  const core::Objectives ref = {0.0, 0.0};
  const double hv_without = core::hypervolume(pts_without, ref);

  // Two gamma ranges, as in the paper's left/right panels.
  for (double gamma : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::IoeConfig on = base;
    on.score.use_dissim = true;
    on.score.gamma = gamma;
    std::cout << "running IOE with dissim, gamma=" << gamma << "...\n";
    const core::IoeResult with = engine.run_ioe_with(backbone, on);
    const auto pts_with = plane(with);

    const double rod_wo = core::ratio_of_dominance(pts_with, pts_without);
    const double rod_ow = core::ratio_of_dominance(pts_without, pts_with);
    const double hv_with = core::hypervolume(pts_with, ref);
    table.add_row({util::fmt_fixed(gamma, 2), util::fmt_pct(rod_wo, 1),
                   util::fmt_pct(rod_ow, 1), util::fmt_fixed(hv_with, 4),
                   util::fmt_fixed(hv_without, 4),
                   util::fmt_pct(max_axis(pts_with, 0), 1),
                   util::fmt_pct(max_axis(pts_with, 1), 1)});
    csv.row({util::fmt_fixed(gamma, 2), util::fmt_fixed(rod_wo, 4),
             util::fmt_fixed(rod_ow, 4), util::fmt_fixed(hv_with, 5),
             util::fmt_fixed(hv_without, 5),
             util::fmt_fixed(max_axis(pts_with, 0), 4),
             util::fmt_fixed(max_axis(pts_with, 1), 4)});
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nwithout dissim: max gain " << util::fmt_pct(max_axis(pts_without, 0), 1)
            << ", max mean N " << util::fmt_pct(max_axis(pts_without, 1), 1)
            << "\n(paper shape: including dissim^gamma should enlarge the "
               "dominated hypervolume\n and push the accuracy extreme of the "
               "front upward -- compare 'HV with' vs\n 'HV without' and 'max "
               "mean N' vs the line above; the paper additionally\n reports a "
               "+41% RoD at its budget)\n";
  return 0;
}
