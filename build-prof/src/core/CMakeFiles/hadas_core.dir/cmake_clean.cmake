file(REMOVE_RECURSE
  "CMakeFiles/hadas_core.dir/hadas_engine.cpp.o"
  "CMakeFiles/hadas_core.dir/hadas_engine.cpp.o.d"
  "CMakeFiles/hadas_core.dir/ioe.cpp.o"
  "CMakeFiles/hadas_core.dir/ioe.cpp.o.d"
  "CMakeFiles/hadas_core.dir/multi_device.cpp.o"
  "CMakeFiles/hadas_core.dir/multi_device.cpp.o.d"
  "CMakeFiles/hadas_core.dir/nsga2.cpp.o"
  "CMakeFiles/hadas_core.dir/nsga2.cpp.o.d"
  "CMakeFiles/hadas_core.dir/pareto.cpp.o"
  "CMakeFiles/hadas_core.dir/pareto.cpp.o.d"
  "CMakeFiles/hadas_core.dir/sensitivity.cpp.o"
  "CMakeFiles/hadas_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/hadas_core.dir/serialize.cpp.o"
  "CMakeFiles/hadas_core.dir/serialize.cpp.o.d"
  "CMakeFiles/hadas_core.dir/static_eval.cpp.o"
  "CMakeFiles/hadas_core.dir/static_eval.cpp.o.d"
  "libhadas_core.a"
  "libhadas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
