file(REMOVE_RECURSE
  "libhadas_core.a"
)
