# Empty compiler generated dependencies file for hadas_core.
# This may be replaced when dependencies are built.
