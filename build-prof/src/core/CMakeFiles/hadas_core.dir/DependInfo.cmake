
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hadas_engine.cpp" "src/core/CMakeFiles/hadas_core.dir/hadas_engine.cpp.o" "gcc" "src/core/CMakeFiles/hadas_core.dir/hadas_engine.cpp.o.d"
  "/root/repo/src/core/ioe.cpp" "src/core/CMakeFiles/hadas_core.dir/ioe.cpp.o" "gcc" "src/core/CMakeFiles/hadas_core.dir/ioe.cpp.o.d"
  "/root/repo/src/core/multi_device.cpp" "src/core/CMakeFiles/hadas_core.dir/multi_device.cpp.o" "gcc" "src/core/CMakeFiles/hadas_core.dir/multi_device.cpp.o.d"
  "/root/repo/src/core/nsga2.cpp" "src/core/CMakeFiles/hadas_core.dir/nsga2.cpp.o" "gcc" "src/core/CMakeFiles/hadas_core.dir/nsga2.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/core/CMakeFiles/hadas_core.dir/pareto.cpp.o" "gcc" "src/core/CMakeFiles/hadas_core.dir/pareto.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/hadas_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/hadas_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/hadas_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/hadas_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/static_eval.cpp" "src/core/CMakeFiles/hadas_core.dir/static_eval.cpp.o" "gcc" "src/core/CMakeFiles/hadas_core.dir/static_eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/dynn/CMakeFiles/hadas_dynn.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/hw/CMakeFiles/hadas_hw.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/supernet/CMakeFiles/hadas_supernet.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/data/CMakeFiles/hadas_data.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/obs/CMakeFiles/hadas_obs.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/hadas_util.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/exec/CMakeFiles/hadas_exec.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/nn/CMakeFiles/hadas_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
