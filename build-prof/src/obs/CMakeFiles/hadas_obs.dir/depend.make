# Empty dependencies file for hadas_obs.
# This may be replaced when dependencies are built.
