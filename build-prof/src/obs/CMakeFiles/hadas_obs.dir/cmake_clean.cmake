file(REMOVE_RECURSE
  "CMakeFiles/hadas_obs.dir/metrics.cpp.o"
  "CMakeFiles/hadas_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/hadas_obs.dir/trace.cpp.o"
  "CMakeFiles/hadas_obs.dir/trace.cpp.o.d"
  "libhadas_obs.a"
  "libhadas_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
