file(REMOVE_RECURSE
  "libhadas_obs.a"
)
