file(REMOVE_RECURSE
  "libhadas_exec.a"
)
