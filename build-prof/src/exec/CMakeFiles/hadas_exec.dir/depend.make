# Empty dependencies file for hadas_exec.
# This may be replaced when dependencies are built.
