file(REMOVE_RECURSE
  "CMakeFiles/hadas_exec.dir/chaos.cpp.o"
  "CMakeFiles/hadas_exec.dir/chaos.cpp.o.d"
  "CMakeFiles/hadas_exec.dir/dispatcher.cpp.o"
  "CMakeFiles/hadas_exec.dir/dispatcher.cpp.o.d"
  "CMakeFiles/hadas_exec.dir/thread_pool.cpp.o"
  "CMakeFiles/hadas_exec.dir/thread_pool.cpp.o.d"
  "libhadas_exec.a"
  "libhadas_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
