# CMake generated Testfile for 
# Source directory: /root/repo/src/supernet
# Build directory: /root/repo/build-prof/src/supernet
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
