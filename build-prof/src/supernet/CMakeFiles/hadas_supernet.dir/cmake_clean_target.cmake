file(REMOVE_RECURSE
  "libhadas_supernet.a"
)
