
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/supernet/accuracy.cpp" "src/supernet/CMakeFiles/hadas_supernet.dir/accuracy.cpp.o" "gcc" "src/supernet/CMakeFiles/hadas_supernet.dir/accuracy.cpp.o.d"
  "/root/repo/src/supernet/backbone.cpp" "src/supernet/CMakeFiles/hadas_supernet.dir/backbone.cpp.o" "gcc" "src/supernet/CMakeFiles/hadas_supernet.dir/backbone.cpp.o.d"
  "/root/repo/src/supernet/baselines.cpp" "src/supernet/CMakeFiles/hadas_supernet.dir/baselines.cpp.o" "gcc" "src/supernet/CMakeFiles/hadas_supernet.dir/baselines.cpp.o.d"
  "/root/repo/src/supernet/cost_model.cpp" "src/supernet/CMakeFiles/hadas_supernet.dir/cost_model.cpp.o" "gcc" "src/supernet/CMakeFiles/hadas_supernet.dir/cost_model.cpp.o.d"
  "/root/repo/src/supernet/search_space.cpp" "src/supernet/CMakeFiles/hadas_supernet.dir/search_space.cpp.o" "gcc" "src/supernet/CMakeFiles/hadas_supernet.dir/search_space.cpp.o.d"
  "/root/repo/src/supernet/supernet_trainer.cpp" "src/supernet/CMakeFiles/hadas_supernet.dir/supernet_trainer.cpp.o" "gcc" "src/supernet/CMakeFiles/hadas_supernet.dir/supernet_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/exec/CMakeFiles/hadas_exec.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/hadas_util.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/obs/CMakeFiles/hadas_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
