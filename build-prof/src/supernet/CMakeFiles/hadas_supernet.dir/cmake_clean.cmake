file(REMOVE_RECURSE
  "CMakeFiles/hadas_supernet.dir/accuracy.cpp.o"
  "CMakeFiles/hadas_supernet.dir/accuracy.cpp.o.d"
  "CMakeFiles/hadas_supernet.dir/backbone.cpp.o"
  "CMakeFiles/hadas_supernet.dir/backbone.cpp.o.d"
  "CMakeFiles/hadas_supernet.dir/baselines.cpp.o"
  "CMakeFiles/hadas_supernet.dir/baselines.cpp.o.d"
  "CMakeFiles/hadas_supernet.dir/cost_model.cpp.o"
  "CMakeFiles/hadas_supernet.dir/cost_model.cpp.o.d"
  "CMakeFiles/hadas_supernet.dir/search_space.cpp.o"
  "CMakeFiles/hadas_supernet.dir/search_space.cpp.o.d"
  "CMakeFiles/hadas_supernet.dir/supernet_trainer.cpp.o"
  "CMakeFiles/hadas_supernet.dir/supernet_trainer.cpp.o.d"
  "libhadas_supernet.a"
  "libhadas_supernet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_supernet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
