# Empty dependencies file for hadas_supernet.
# This may be replaced when dependencies are built.
