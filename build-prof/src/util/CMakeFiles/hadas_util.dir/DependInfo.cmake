
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/csv.cpp" "src/util/CMakeFiles/hadas_util.dir/csv.cpp.o" "gcc" "src/util/CMakeFiles/hadas_util.dir/csv.cpp.o.d"
  "/root/repo/src/util/durable/checkpoint_chain.cpp" "src/util/CMakeFiles/hadas_util.dir/durable/checkpoint_chain.cpp.o" "gcc" "src/util/CMakeFiles/hadas_util.dir/durable/checkpoint_chain.cpp.o.d"
  "/root/repo/src/util/durable/durable_file.cpp" "src/util/CMakeFiles/hadas_util.dir/durable/durable_file.cpp.o" "gcc" "src/util/CMakeFiles/hadas_util.dir/durable/durable_file.cpp.o.d"
  "/root/repo/src/util/failpoint.cpp" "src/util/CMakeFiles/hadas_util.dir/failpoint.cpp.o" "gcc" "src/util/CMakeFiles/hadas_util.dir/failpoint.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/util/CMakeFiles/hadas_util.dir/json.cpp.o" "gcc" "src/util/CMakeFiles/hadas_util.dir/json.cpp.o.d"
  "/root/repo/src/util/linalg.cpp" "src/util/CMakeFiles/hadas_util.dir/linalg.cpp.o" "gcc" "src/util/CMakeFiles/hadas_util.dir/linalg.cpp.o.d"
  "/root/repo/src/util/mathutil.cpp" "src/util/CMakeFiles/hadas_util.dir/mathutil.cpp.o" "gcc" "src/util/CMakeFiles/hadas_util.dir/mathutil.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/hadas_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/hadas_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/statistics.cpp" "src/util/CMakeFiles/hadas_util.dir/statistics.cpp.o" "gcc" "src/util/CMakeFiles/hadas_util.dir/statistics.cpp.o.d"
  "/root/repo/src/util/strutil.cpp" "src/util/CMakeFiles/hadas_util.dir/strutil.cpp.o" "gcc" "src/util/CMakeFiles/hadas_util.dir/strutil.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/hadas_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/hadas_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
