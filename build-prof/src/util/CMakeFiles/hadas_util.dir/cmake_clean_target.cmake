file(REMOVE_RECURSE
  "libhadas_util.a"
)
