file(REMOVE_RECURSE
  "CMakeFiles/hadas_util.dir/csv.cpp.o"
  "CMakeFiles/hadas_util.dir/csv.cpp.o.d"
  "CMakeFiles/hadas_util.dir/durable/checkpoint_chain.cpp.o"
  "CMakeFiles/hadas_util.dir/durable/checkpoint_chain.cpp.o.d"
  "CMakeFiles/hadas_util.dir/durable/durable_file.cpp.o"
  "CMakeFiles/hadas_util.dir/durable/durable_file.cpp.o.d"
  "CMakeFiles/hadas_util.dir/failpoint.cpp.o"
  "CMakeFiles/hadas_util.dir/failpoint.cpp.o.d"
  "CMakeFiles/hadas_util.dir/json.cpp.o"
  "CMakeFiles/hadas_util.dir/json.cpp.o.d"
  "CMakeFiles/hadas_util.dir/linalg.cpp.o"
  "CMakeFiles/hadas_util.dir/linalg.cpp.o.d"
  "CMakeFiles/hadas_util.dir/mathutil.cpp.o"
  "CMakeFiles/hadas_util.dir/mathutil.cpp.o.d"
  "CMakeFiles/hadas_util.dir/rng.cpp.o"
  "CMakeFiles/hadas_util.dir/rng.cpp.o.d"
  "CMakeFiles/hadas_util.dir/statistics.cpp.o"
  "CMakeFiles/hadas_util.dir/statistics.cpp.o.d"
  "CMakeFiles/hadas_util.dir/strutil.cpp.o"
  "CMakeFiles/hadas_util.dir/strutil.cpp.o.d"
  "CMakeFiles/hadas_util.dir/table.cpp.o"
  "CMakeFiles/hadas_util.dir/table.cpp.o.d"
  "libhadas_util.a"
  "libhadas_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
