# Empty dependencies file for hadas_util.
# This may be replaced when dependencies are built.
