# Empty compiler generated dependencies file for hadas_net.
# This may be replaced when dependencies are built.
