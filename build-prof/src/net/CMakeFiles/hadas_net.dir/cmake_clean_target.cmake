file(REMOVE_RECURSE
  "libhadas_net.a"
)
