file(REMOVE_RECURSE
  "CMakeFiles/hadas_net.dir/backed_stream.cpp.o"
  "CMakeFiles/hadas_net.dir/backed_stream.cpp.o.d"
  "CMakeFiles/hadas_net.dir/client.cpp.o"
  "CMakeFiles/hadas_net.dir/client.cpp.o.d"
  "CMakeFiles/hadas_net.dir/connection.cpp.o"
  "CMakeFiles/hadas_net.dir/connection.cpp.o.d"
  "CMakeFiles/hadas_net.dir/fake_socket.cpp.o"
  "CMakeFiles/hadas_net.dir/fake_socket.cpp.o.d"
  "CMakeFiles/hadas_net.dir/frame.cpp.o"
  "CMakeFiles/hadas_net.dir/frame.cpp.o.d"
  "CMakeFiles/hadas_net.dir/server.cpp.o"
  "CMakeFiles/hadas_net.dir/server.cpp.o.d"
  "CMakeFiles/hadas_net.dir/session.cpp.o"
  "CMakeFiles/hadas_net.dir/session.cpp.o.d"
  "CMakeFiles/hadas_net.dir/socket.cpp.o"
  "CMakeFiles/hadas_net.dir/socket.cpp.o.d"
  "libhadas_net.a"
  "libhadas_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
