file(REMOVE_RECURSE
  "CMakeFiles/hadas_hw.dir/device.cpp.o"
  "CMakeFiles/hadas_hw.dir/device.cpp.o.d"
  "CMakeFiles/hadas_hw.dir/evaluator.cpp.o"
  "CMakeFiles/hadas_hw.dir/evaluator.cpp.o.d"
  "CMakeFiles/hadas_hw.dir/faults.cpp.o"
  "CMakeFiles/hadas_hw.dir/faults.cpp.o.d"
  "CMakeFiles/hadas_hw.dir/fleet/bdf.cpp.o"
  "CMakeFiles/hadas_hw.dir/fleet/bdf.cpp.o.d"
  "CMakeFiles/hadas_hw.dir/fleet/lifecycle.cpp.o"
  "CMakeFiles/hadas_hw.dir/fleet/lifecycle.cpp.o.d"
  "CMakeFiles/hadas_hw.dir/fleet/registry.cpp.o"
  "CMakeFiles/hadas_hw.dir/fleet/registry.cpp.o.d"
  "CMakeFiles/hadas_hw.dir/proxy.cpp.o"
  "CMakeFiles/hadas_hw.dir/proxy.cpp.o.d"
  "CMakeFiles/hadas_hw.dir/robust_eval.cpp.o"
  "CMakeFiles/hadas_hw.dir/robust_eval.cpp.o.d"
  "CMakeFiles/hadas_hw.dir/thermal.cpp.o"
  "CMakeFiles/hadas_hw.dir/thermal.cpp.o.d"
  "libhadas_hw.a"
  "libhadas_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
