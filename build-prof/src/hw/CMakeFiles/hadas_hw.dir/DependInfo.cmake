
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/device.cpp" "src/hw/CMakeFiles/hadas_hw.dir/device.cpp.o" "gcc" "src/hw/CMakeFiles/hadas_hw.dir/device.cpp.o.d"
  "/root/repo/src/hw/evaluator.cpp" "src/hw/CMakeFiles/hadas_hw.dir/evaluator.cpp.o" "gcc" "src/hw/CMakeFiles/hadas_hw.dir/evaluator.cpp.o.d"
  "/root/repo/src/hw/faults.cpp" "src/hw/CMakeFiles/hadas_hw.dir/faults.cpp.o" "gcc" "src/hw/CMakeFiles/hadas_hw.dir/faults.cpp.o.d"
  "/root/repo/src/hw/fleet/bdf.cpp" "src/hw/CMakeFiles/hadas_hw.dir/fleet/bdf.cpp.o" "gcc" "src/hw/CMakeFiles/hadas_hw.dir/fleet/bdf.cpp.o.d"
  "/root/repo/src/hw/fleet/lifecycle.cpp" "src/hw/CMakeFiles/hadas_hw.dir/fleet/lifecycle.cpp.o" "gcc" "src/hw/CMakeFiles/hadas_hw.dir/fleet/lifecycle.cpp.o.d"
  "/root/repo/src/hw/fleet/registry.cpp" "src/hw/CMakeFiles/hadas_hw.dir/fleet/registry.cpp.o" "gcc" "src/hw/CMakeFiles/hadas_hw.dir/fleet/registry.cpp.o.d"
  "/root/repo/src/hw/proxy.cpp" "src/hw/CMakeFiles/hadas_hw.dir/proxy.cpp.o" "gcc" "src/hw/CMakeFiles/hadas_hw.dir/proxy.cpp.o.d"
  "/root/repo/src/hw/robust_eval.cpp" "src/hw/CMakeFiles/hadas_hw.dir/robust_eval.cpp.o" "gcc" "src/hw/CMakeFiles/hadas_hw.dir/robust_eval.cpp.o.d"
  "/root/repo/src/hw/thermal.cpp" "src/hw/CMakeFiles/hadas_hw.dir/thermal.cpp.o" "gcc" "src/hw/CMakeFiles/hadas_hw.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/supernet/CMakeFiles/hadas_supernet.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/hadas_util.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/obs/CMakeFiles/hadas_obs.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/exec/CMakeFiles/hadas_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
