file(REMOVE_RECURSE
  "libhadas_hw.a"
)
