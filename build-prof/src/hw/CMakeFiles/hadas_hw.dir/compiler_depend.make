# Empty compiler generated dependencies file for hadas_hw.
# This may be replaced when dependencies are built.
