
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynn/dynamic_eval.cpp" "src/dynn/CMakeFiles/hadas_dynn.dir/dynamic_eval.cpp.o" "gcc" "src/dynn/CMakeFiles/hadas_dynn.dir/dynamic_eval.cpp.o.d"
  "/root/repo/src/dynn/exit_bank.cpp" "src/dynn/CMakeFiles/hadas_dynn.dir/exit_bank.cpp.o" "gcc" "src/dynn/CMakeFiles/hadas_dynn.dir/exit_bank.cpp.o.d"
  "/root/repo/src/dynn/exit_placement.cpp" "src/dynn/CMakeFiles/hadas_dynn.dir/exit_placement.cpp.o" "gcc" "src/dynn/CMakeFiles/hadas_dynn.dir/exit_placement.cpp.o.d"
  "/root/repo/src/dynn/multi_exit_cost.cpp" "src/dynn/CMakeFiles/hadas_dynn.dir/multi_exit_cost.cpp.o" "gcc" "src/dynn/CMakeFiles/hadas_dynn.dir/multi_exit_cost.cpp.o.d"
  "/root/repo/src/dynn/proxy_sampling.cpp" "src/dynn/CMakeFiles/hadas_dynn.dir/proxy_sampling.cpp.o" "gcc" "src/dynn/CMakeFiles/hadas_dynn.dir/proxy_sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/data/CMakeFiles/hadas_data.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/hw/CMakeFiles/hadas_hw.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/nn/CMakeFiles/hadas_nn.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/supernet/CMakeFiles/hadas_supernet.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/hadas_util.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/exec/CMakeFiles/hadas_exec.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/obs/CMakeFiles/hadas_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
