file(REMOVE_RECURSE
  "libhadas_dynn.a"
)
