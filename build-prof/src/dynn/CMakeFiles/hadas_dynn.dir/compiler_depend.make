# Empty compiler generated dependencies file for hadas_dynn.
# This may be replaced when dependencies are built.
