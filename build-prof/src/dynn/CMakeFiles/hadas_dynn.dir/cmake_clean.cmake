file(REMOVE_RECURSE
  "CMakeFiles/hadas_dynn.dir/dynamic_eval.cpp.o"
  "CMakeFiles/hadas_dynn.dir/dynamic_eval.cpp.o.d"
  "CMakeFiles/hadas_dynn.dir/exit_bank.cpp.o"
  "CMakeFiles/hadas_dynn.dir/exit_bank.cpp.o.d"
  "CMakeFiles/hadas_dynn.dir/exit_placement.cpp.o"
  "CMakeFiles/hadas_dynn.dir/exit_placement.cpp.o.d"
  "CMakeFiles/hadas_dynn.dir/multi_exit_cost.cpp.o"
  "CMakeFiles/hadas_dynn.dir/multi_exit_cost.cpp.o.d"
  "CMakeFiles/hadas_dynn.dir/proxy_sampling.cpp.o"
  "CMakeFiles/hadas_dynn.dir/proxy_sampling.cpp.o.d"
  "libhadas_dynn.a"
  "libhadas_dynn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_dynn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
