# CMake generated Testfile for 
# Source directory: /root/repo/src/dynn
# Build directory: /root/repo/build-prof/src/dynn
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
