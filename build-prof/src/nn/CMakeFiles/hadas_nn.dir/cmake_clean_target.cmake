file(REMOVE_RECURSE
  "libhadas_nn.a"
)
