file(REMOVE_RECURSE
  "CMakeFiles/hadas_nn.dir/losses.cpp.o"
  "CMakeFiles/hadas_nn.dir/losses.cpp.o.d"
  "CMakeFiles/hadas_nn.dir/matrix.cpp.o"
  "CMakeFiles/hadas_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/hadas_nn.dir/mlp.cpp.o"
  "CMakeFiles/hadas_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/hadas_nn.dir/trainer.cpp.o"
  "CMakeFiles/hadas_nn.dir/trainer.cpp.o.d"
  "libhadas_nn.a"
  "libhadas_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
