
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/losses.cpp" "src/nn/CMakeFiles/hadas_nn.dir/losses.cpp.o" "gcc" "src/nn/CMakeFiles/hadas_nn.dir/losses.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/nn/CMakeFiles/hadas_nn.dir/matrix.cpp.o" "gcc" "src/nn/CMakeFiles/hadas_nn.dir/matrix.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/nn/CMakeFiles/hadas_nn.dir/mlp.cpp.o" "gcc" "src/nn/CMakeFiles/hadas_nn.dir/mlp.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/hadas_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/hadas_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/util/CMakeFiles/hadas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
