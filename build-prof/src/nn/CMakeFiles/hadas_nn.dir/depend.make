# Empty dependencies file for hadas_nn.
# This may be replaced when dependencies are built.
