
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/controller.cpp" "src/runtime/CMakeFiles/hadas_runtime.dir/controller.cpp.o" "gcc" "src/runtime/CMakeFiles/hadas_runtime.dir/controller.cpp.o.d"
  "/root/repo/src/runtime/deployment.cpp" "src/runtime/CMakeFiles/hadas_runtime.dir/deployment.cpp.o" "gcc" "src/runtime/CMakeFiles/hadas_runtime.dir/deployment.cpp.o.d"
  "/root/repo/src/runtime/governor.cpp" "src/runtime/CMakeFiles/hadas_runtime.dir/governor.cpp.o" "gcc" "src/runtime/CMakeFiles/hadas_runtime.dir/governor.cpp.o.d"
  "/root/repo/src/runtime/predictive_exit.cpp" "src/runtime/CMakeFiles/hadas_runtime.dir/predictive_exit.cpp.o" "gcc" "src/runtime/CMakeFiles/hadas_runtime.dir/predictive_exit.cpp.o.d"
  "/root/repo/src/runtime/serve/bridge.cpp" "src/runtime/CMakeFiles/hadas_runtime.dir/serve/bridge.cpp.o" "gcc" "src/runtime/CMakeFiles/hadas_runtime.dir/serve/bridge.cpp.o.d"
  "/root/repo/src/runtime/serve/fleet_failover.cpp" "src/runtime/CMakeFiles/hadas_runtime.dir/serve/fleet_failover.cpp.o" "gcc" "src/runtime/CMakeFiles/hadas_runtime.dir/serve/fleet_failover.cpp.o.d"
  "/root/repo/src/runtime/serve/journal.cpp" "src/runtime/CMakeFiles/hadas_runtime.dir/serve/journal.cpp.o" "gcc" "src/runtime/CMakeFiles/hadas_runtime.dir/serve/journal.cpp.o.d"
  "/root/repo/src/runtime/serve/slo.cpp" "src/runtime/CMakeFiles/hadas_runtime.dir/serve/slo.cpp.o" "gcc" "src/runtime/CMakeFiles/hadas_runtime.dir/serve/slo.cpp.o.d"
  "/root/repo/src/runtime/serve/supervisor.cpp" "src/runtime/CMakeFiles/hadas_runtime.dir/serve/supervisor.cpp.o" "gcc" "src/runtime/CMakeFiles/hadas_runtime.dir/serve/supervisor.cpp.o.d"
  "/root/repo/src/runtime/serve/traffic.cpp" "src/runtime/CMakeFiles/hadas_runtime.dir/serve/traffic.cpp.o" "gcc" "src/runtime/CMakeFiles/hadas_runtime.dir/serve/traffic.cpp.o.d"
  "/root/repo/src/runtime/sustained.cpp" "src/runtime/CMakeFiles/hadas_runtime.dir/sustained.cpp.o" "gcc" "src/runtime/CMakeFiles/hadas_runtime.dir/sustained.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/dynn/CMakeFiles/hadas_dynn.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/data/CMakeFiles/hadas_data.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/exec/CMakeFiles/hadas_exec.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/obs/CMakeFiles/hadas_obs.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/hadas_util.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/hw/CMakeFiles/hadas_hw.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/nn/CMakeFiles/hadas_nn.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/supernet/CMakeFiles/hadas_supernet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
