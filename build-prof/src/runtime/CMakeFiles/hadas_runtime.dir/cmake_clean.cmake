file(REMOVE_RECURSE
  "CMakeFiles/hadas_runtime.dir/controller.cpp.o"
  "CMakeFiles/hadas_runtime.dir/controller.cpp.o.d"
  "CMakeFiles/hadas_runtime.dir/deployment.cpp.o"
  "CMakeFiles/hadas_runtime.dir/deployment.cpp.o.d"
  "CMakeFiles/hadas_runtime.dir/governor.cpp.o"
  "CMakeFiles/hadas_runtime.dir/governor.cpp.o.d"
  "CMakeFiles/hadas_runtime.dir/predictive_exit.cpp.o"
  "CMakeFiles/hadas_runtime.dir/predictive_exit.cpp.o.d"
  "CMakeFiles/hadas_runtime.dir/serve/bridge.cpp.o"
  "CMakeFiles/hadas_runtime.dir/serve/bridge.cpp.o.d"
  "CMakeFiles/hadas_runtime.dir/serve/fleet_failover.cpp.o"
  "CMakeFiles/hadas_runtime.dir/serve/fleet_failover.cpp.o.d"
  "CMakeFiles/hadas_runtime.dir/serve/journal.cpp.o"
  "CMakeFiles/hadas_runtime.dir/serve/journal.cpp.o.d"
  "CMakeFiles/hadas_runtime.dir/serve/slo.cpp.o"
  "CMakeFiles/hadas_runtime.dir/serve/slo.cpp.o.d"
  "CMakeFiles/hadas_runtime.dir/serve/supervisor.cpp.o"
  "CMakeFiles/hadas_runtime.dir/serve/supervisor.cpp.o.d"
  "CMakeFiles/hadas_runtime.dir/serve/traffic.cpp.o"
  "CMakeFiles/hadas_runtime.dir/serve/traffic.cpp.o.d"
  "CMakeFiles/hadas_runtime.dir/sustained.cpp.o"
  "CMakeFiles/hadas_runtime.dir/sustained.cpp.o.d"
  "libhadas_runtime.a"
  "libhadas_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
