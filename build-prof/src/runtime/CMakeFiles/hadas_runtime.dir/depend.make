# Empty dependencies file for hadas_runtime.
# This may be replaced when dependencies are built.
