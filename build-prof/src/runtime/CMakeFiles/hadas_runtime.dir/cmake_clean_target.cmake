file(REMOVE_RECURSE
  "libhadas_runtime.a"
)
