file(REMOVE_RECURSE
  "CMakeFiles/hadas_data.dir/sample_stream.cpp.o"
  "CMakeFiles/hadas_data.dir/sample_stream.cpp.o.d"
  "CMakeFiles/hadas_data.dir/synthetic_task.cpp.o"
  "CMakeFiles/hadas_data.dir/synthetic_task.cpp.o.d"
  "libhadas_data.a"
  "libhadas_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
