# Empty compiler generated dependencies file for hadas_data.
# This may be replaced when dependencies are built.
