file(REMOVE_RECURSE
  "libhadas_data.a"
)
