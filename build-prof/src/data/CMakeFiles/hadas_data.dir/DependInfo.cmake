
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/sample_stream.cpp" "src/data/CMakeFiles/hadas_data.dir/sample_stream.cpp.o" "gcc" "src/data/CMakeFiles/hadas_data.dir/sample_stream.cpp.o.d"
  "/root/repo/src/data/synthetic_task.cpp" "src/data/CMakeFiles/hadas_data.dir/synthetic_task.cpp.o" "gcc" "src/data/CMakeFiles/hadas_data.dir/synthetic_task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/nn/CMakeFiles/hadas_nn.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/hadas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
