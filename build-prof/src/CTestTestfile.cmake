# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-prof/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("exec")
subdirs("nn")
subdirs("data")
subdirs("supernet")
subdirs("hw")
subdirs("dynn")
subdirs("core")
subdirs("runtime")
subdirs("net")
subdirs("dist")
