file(REMOVE_RECURSE
  "CMakeFiles/hadas_dist.dir/coordinator.cpp.o"
  "CMakeFiles/hadas_dist.dir/coordinator.cpp.o.d"
  "CMakeFiles/hadas_dist.dir/fork_transport.cpp.o"
  "CMakeFiles/hadas_dist.dir/fork_transport.cpp.o.d"
  "CMakeFiles/hadas_dist.dir/island.cpp.o"
  "CMakeFiles/hadas_dist.dir/island.cpp.o.d"
  "CMakeFiles/hadas_dist.dir/net_transport.cpp.o"
  "CMakeFiles/hadas_dist.dir/net_transport.cpp.o.d"
  "CMakeFiles/hadas_dist.dir/worker.cpp.o"
  "CMakeFiles/hadas_dist.dir/worker.cpp.o.d"
  "libhadas_dist.a"
  "libhadas_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
