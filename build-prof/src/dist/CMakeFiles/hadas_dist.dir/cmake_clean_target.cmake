file(REMOVE_RECURSE
  "libhadas_dist.a"
)
