# Empty compiler generated dependencies file for hadas_dist.
# This may be replaced when dependencies are built.
