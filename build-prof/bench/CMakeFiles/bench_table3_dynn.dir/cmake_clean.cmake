file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dynn.dir/bench_table3_dynn.cpp.o"
  "CMakeFiles/bench_table3_dynn.dir/bench_table3_dynn.cpp.o.d"
  "bench_table3_dynn"
  "bench_table3_dynn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dynn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
