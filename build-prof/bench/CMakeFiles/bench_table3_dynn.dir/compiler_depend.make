# Empty compiler generated dependencies file for bench_table3_dynn.
# This may be replaced when dependencies are built.
