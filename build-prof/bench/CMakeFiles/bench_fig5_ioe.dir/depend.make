# Empty dependencies file for bench_fig5_ioe.
# This may be replaced when dependencies are built.
