file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_ioe.dir/bench_fig5_ioe.cpp.o"
  "CMakeFiles/bench_fig5_ioe.dir/bench_fig5_ioe.cpp.o.d"
  "bench_fig5_ioe"
  "bench_fig5_ioe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ioe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
