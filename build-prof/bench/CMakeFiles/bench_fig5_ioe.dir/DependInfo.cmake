
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_ioe.cpp" "bench/CMakeFiles/bench_fig5_ioe.dir/bench_fig5_ioe.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_ioe.dir/bench_fig5_ioe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/bench/CMakeFiles/hadas_bench_common.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/core/CMakeFiles/hadas_core.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/runtime/CMakeFiles/hadas_runtime.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/dynn/CMakeFiles/hadas_dynn.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/hw/CMakeFiles/hadas_hw.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/supernet/CMakeFiles/hadas_supernet.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/data/CMakeFiles/hadas_data.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/nn/CMakeFiles/hadas_nn.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/exec/CMakeFiles/hadas_exec.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/obs/CMakeFiles/hadas_obs.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/hadas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
