# Empty dependencies file for bench_fig7_dissim.
# This may be replaced when dependencies are built.
