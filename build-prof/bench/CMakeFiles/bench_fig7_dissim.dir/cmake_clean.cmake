file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dissim.dir/bench_fig7_dissim.cpp.o"
  "CMakeFiles/bench_fig7_dissim.dir/bench_fig7_dissim.cpp.o.d"
  "bench_fig7_dissim"
  "bench_fig7_dissim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dissim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
