# Empty compiler generated dependencies file for bench_fig6_hv_rod.
# This may be replaced when dependencies are built.
