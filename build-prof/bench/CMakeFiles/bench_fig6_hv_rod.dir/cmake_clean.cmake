file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hv_rod.dir/bench_fig6_hv_rod.cpp.o"
  "CMakeFiles/bench_fig6_hv_rod.dir/bench_fig6_hv_rod.cpp.o.d"
  "bench_fig6_hv_rod"
  "bench_fig6_hv_rod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hv_rod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
