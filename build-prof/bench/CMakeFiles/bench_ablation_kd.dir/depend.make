# Empty dependencies file for bench_ablation_kd.
# This may be replaced when dependencies are built.
