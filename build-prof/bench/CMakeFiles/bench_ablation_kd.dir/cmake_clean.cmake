file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kd.dir/bench_ablation_kd.cpp.o"
  "CMakeFiles/bench_ablation_kd.dir/bench_ablation_kd.cpp.o.d"
  "bench_ablation_kd"
  "bench_ablation_kd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
