# Empty dependencies file for bench_dist_net.
# This may be replaced when dependencies are built.
