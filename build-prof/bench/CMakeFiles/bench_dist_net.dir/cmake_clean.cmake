file(REMOVE_RECURSE
  "CMakeFiles/bench_dist_net.dir/bench_dist_net.cpp.o"
  "CMakeFiles/bench_dist_net.dir/bench_dist_net.cpp.o.d"
  "bench_dist_net"
  "bench_dist_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dist_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
