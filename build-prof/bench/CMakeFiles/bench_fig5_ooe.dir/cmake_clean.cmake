file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_ooe.dir/bench_fig5_ooe.cpp.o"
  "CMakeFiles/bench_fig5_ooe.dir/bench_fig5_ooe.cpp.o.d"
  "bench_fig5_ooe"
  "bench_fig5_ooe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ooe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
