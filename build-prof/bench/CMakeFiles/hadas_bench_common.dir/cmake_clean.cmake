file(REMOVE_RECURSE
  "CMakeFiles/hadas_bench_common.dir/fig5_data.cpp.o"
  "CMakeFiles/hadas_bench_common.dir/fig5_data.cpp.o.d"
  "libhadas_bench_common.a"
  "libhadas_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
