file(REMOVE_RECURSE
  "libhadas_bench_common.a"
)
