# Empty dependencies file for hadas_bench_common.
# This may be replaced when dependencies are built.
