file(REMOVE_RECURSE
  "CMakeFiles/bench_serving.dir/bench_serving.cpp.o"
  "CMakeFiles/bench_serving.dir/bench_serving.cpp.o.d"
  "bench_serving"
  "bench_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
