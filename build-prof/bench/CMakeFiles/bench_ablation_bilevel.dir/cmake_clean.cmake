file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bilevel.dir/bench_ablation_bilevel.cpp.o"
  "CMakeFiles/bench_ablation_bilevel.dir/bench_ablation_bilevel.cpp.o.d"
  "bench_ablation_bilevel"
  "bench_ablation_bilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
