# Empty dependencies file for bench_ablation_bilevel.
# This may be replaced when dependencies are built.
