file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_supernet.dir/bench_ablation_supernet.cpp.o"
  "CMakeFiles/bench_ablation_supernet.dir/bench_ablation_supernet.cpp.o.d"
  "bench_ablation_supernet"
  "bench_ablation_supernet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_supernet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
