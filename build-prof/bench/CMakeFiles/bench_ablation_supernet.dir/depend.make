# Empty dependencies file for bench_ablation_supernet.
# This may be replaced when dependencies are built.
