# Empty dependencies file for bench_observability.
# This may be replaced when dependencies are built.
