file(REMOVE_RECURSE
  "CMakeFiles/bench_observability.dir/bench_observability.cpp.o"
  "CMakeFiles/bench_observability.dir/bench_observability.cpp.o.d"
  "bench_observability"
  "bench_observability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_observability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
