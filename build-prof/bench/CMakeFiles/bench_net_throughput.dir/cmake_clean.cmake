file(REMOVE_RECURSE
  "CMakeFiles/bench_net_throughput.dir/bench_net_throughput.cpp.o"
  "CMakeFiles/bench_net_throughput.dir/bench_net_throughput.cpp.o.d"
  "bench_net_throughput"
  "bench_net_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_net_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
