# Empty compiler generated dependencies file for bench_net_throughput.
# This may be replaced when dependencies are built.
