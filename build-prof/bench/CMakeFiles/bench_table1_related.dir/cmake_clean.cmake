file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_related.dir/bench_table1_related.cpp.o"
  "CMakeFiles/bench_table1_related.dir/bench_table1_related.cpp.o.d"
  "bench_table1_related"
  "bench_table1_related.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_related.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
