# Empty compiler generated dependencies file for hadasd.
# This may be replaced when dependencies are built.
