file(REMOVE_RECURSE
  "CMakeFiles/hadasd.dir/hadasd.cpp.o"
  "CMakeFiles/hadasd.dir/hadasd.cpp.o.d"
  "hadasd"
  "hadasd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadasd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
