# Empty dependencies file for hadas.
# This may be replaced when dependencies are built.
