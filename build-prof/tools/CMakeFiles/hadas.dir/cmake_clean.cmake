file(REMOVE_RECURSE
  "CMakeFiles/hadas.dir/hadas_cli.cpp.o"
  "CMakeFiles/hadas.dir/hadas_cli.cpp.o.d"
  "hadas"
  "hadas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
