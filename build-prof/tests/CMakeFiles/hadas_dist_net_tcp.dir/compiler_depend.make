# Empty compiler generated dependencies file for hadas_dist_net_tcp.
# This may be replaced when dependencies are built.
