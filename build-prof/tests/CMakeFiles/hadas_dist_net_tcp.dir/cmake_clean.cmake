file(REMOVE_RECURSE
  "CMakeFiles/hadas_dist_net_tcp.dir/test_dist_net_tcp.cpp.o"
  "CMakeFiles/hadas_dist_net_tcp.dir/test_dist_net_tcp.cpp.o.d"
  "hadas_dist_net_tcp"
  "hadas_dist_net_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_dist_net_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
