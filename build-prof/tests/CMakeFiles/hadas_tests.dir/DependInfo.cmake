
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bench_data.cpp" "tests/CMakeFiles/hadas_tests.dir/test_bench_data.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_bench_data.cpp.o.d"
  "/root/repo/tests/test_core_checkpoint.cpp" "tests/CMakeFiles/hadas_tests.dir/test_core_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_core_checkpoint.cpp.o.d"
  "/root/repo/tests/test_core_constraints.cpp" "tests/CMakeFiles/hadas_tests.dir/test_core_constraints.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_core_constraints.cpp.o.d"
  "/root/repo/tests/test_core_engine.cpp" "tests/CMakeFiles/hadas_tests.dir/test_core_engine.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_core_engine.cpp.o.d"
  "/root/repo/tests/test_core_multi_device.cpp" "tests/CMakeFiles/hadas_tests.dir/test_core_multi_device.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_core_multi_device.cpp.o.d"
  "/root/repo/tests/test_core_nsga2.cpp" "tests/CMakeFiles/hadas_tests.dir/test_core_nsga2.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_core_nsga2.cpp.o.d"
  "/root/repo/tests/test_core_pareto.cpp" "tests/CMakeFiles/hadas_tests.dir/test_core_pareto.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_core_pareto.cpp.o.d"
  "/root/repo/tests/test_core_rod.cpp" "tests/CMakeFiles/hadas_tests.dir/test_core_rod.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_core_rod.cpp.o.d"
  "/root/repo/tests/test_core_sensitivity.cpp" "tests/CMakeFiles/hadas_tests.dir/test_core_sensitivity.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_core_sensitivity.cpp.o.d"
  "/root/repo/tests/test_core_serialize.cpp" "tests/CMakeFiles/hadas_tests.dir/test_core_serialize.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_core_serialize.cpp.o.d"
  "/root/repo/tests/test_core_warmstart.cpp" "tests/CMakeFiles/hadas_tests.dir/test_core_warmstart.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_core_warmstart.cpp.o.d"
  "/root/repo/tests/test_cross_device.cpp" "tests/CMakeFiles/hadas_tests.dir/test_cross_device.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_cross_device.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/hadas_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_dist_island.cpp" "tests/CMakeFiles/hadas_tests.dir/test_dist_island.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_dist_island.cpp.o.d"
  "/root/repo/tests/test_dist_net.cpp" "tests/CMakeFiles/hadas_tests.dir/test_dist_net.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_dist_net.cpp.o.d"
  "/root/repo/tests/test_durable.cpp" "tests/CMakeFiles/hadas_tests.dir/test_durable.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_durable.cpp.o.d"
  "/root/repo/tests/test_dynn_bank.cpp" "tests/CMakeFiles/hadas_tests.dir/test_dynn_bank.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_dynn_bank.cpp.o.d"
  "/root/repo/tests/test_dynn_cost.cpp" "tests/CMakeFiles/hadas_tests.dir/test_dynn_cost.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_dynn_cost.cpp.o.d"
  "/root/repo/tests/test_dynn_dynamic_eval.cpp" "tests/CMakeFiles/hadas_tests.dir/test_dynn_dynamic_eval.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_dynn_dynamic_eval.cpp.o.d"
  "/root/repo/tests/test_dynn_placement.cpp" "tests/CMakeFiles/hadas_tests.dir/test_dynn_placement.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_dynn_placement.cpp.o.d"
  "/root/repo/tests/test_dynn_tap_quality.cpp" "tests/CMakeFiles/hadas_tests.dir/test_dynn_tap_quality.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_dynn_tap_quality.cpp.o.d"
  "/root/repo/tests/test_exec_determinism.cpp" "tests/CMakeFiles/hadas_tests.dir/test_exec_determinism.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_exec_determinism.cpp.o.d"
  "/root/repo/tests/test_exec_pool.cpp" "tests/CMakeFiles/hadas_tests.dir/test_exec_pool.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_exec_pool.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/hadas_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_fleet_registry.cpp" "tests/CMakeFiles/hadas_tests.dir/test_fleet_registry.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_fleet_registry.cpp.o.d"
  "/root/repo/tests/test_fleet_search.cpp" "tests/CMakeFiles/hadas_tests.dir/test_fleet_search.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_fleet_search.cpp.o.d"
  "/root/repo/tests/test_fleet_serve.cpp" "tests/CMakeFiles/hadas_tests.dir/test_fleet_serve.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_fleet_serve.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/hadas_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_hw_faults.cpp" "tests/CMakeFiles/hadas_tests.dir/test_hw_faults.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_hw_faults.cpp.o.d"
  "/root/repo/tests/test_hw_proxy.cpp" "tests/CMakeFiles/hadas_tests.dir/test_hw_proxy.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_hw_proxy.cpp.o.d"
  "/root/repo/tests/test_hw_thermal.cpp" "tests/CMakeFiles/hadas_tests.dir/test_hw_thermal.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_hw_thermal.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/hadas_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_misc_coverage.cpp" "tests/CMakeFiles/hadas_tests.dir/test_misc_coverage.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_misc_coverage.cpp.o.d"
  "/root/repo/tests/test_net_backed.cpp" "tests/CMakeFiles/hadas_tests.dir/test_net_backed.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_net_backed.cpp.o.d"
  "/root/repo/tests/test_net_frame.cpp" "tests/CMakeFiles/hadas_tests.dir/test_net_frame.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_net_frame.cpp.o.d"
  "/root/repo/tests/test_net_loopback.cpp" "tests/CMakeFiles/hadas_tests.dir/test_net_loopback.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_net_loopback.cpp.o.d"
  "/root/repo/tests/test_net_resume.cpp" "tests/CMakeFiles/hadas_tests.dir/test_net_resume.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_net_resume.cpp.o.d"
  "/root/repo/tests/test_nn_losses.cpp" "tests/CMakeFiles/hadas_tests.dir/test_nn_losses.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_nn_losses.cpp.o.d"
  "/root/repo/tests/test_nn_matrix.cpp" "tests/CMakeFiles/hadas_tests.dir/test_nn_matrix.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_nn_matrix.cpp.o.d"
  "/root/repo/tests/test_nn_mlp.cpp" "tests/CMakeFiles/hadas_tests.dir/test_nn_mlp.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_nn_mlp.cpp.o.d"
  "/root/repo/tests/test_nn_trainer.cpp" "tests/CMakeFiles/hadas_tests.dir/test_nn_trainer.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_nn_trainer.cpp.o.d"
  "/root/repo/tests/test_obs_determinism.cpp" "tests/CMakeFiles/hadas_tests.dir/test_obs_determinism.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_obs_determinism.cpp.o.d"
  "/root/repo/tests/test_obs_metrics.cpp" "tests/CMakeFiles/hadas_tests.dir/test_obs_metrics.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_obs_metrics.cpp.o.d"
  "/root/repo/tests/test_paper_claims.cpp" "tests/CMakeFiles/hadas_tests.dir/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_paper_claims.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/hadas_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_runtime_drift.cpp" "tests/CMakeFiles/hadas_tests.dir/test_runtime_drift.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_runtime_drift.cpp.o.d"
  "/root/repo/tests/test_runtime_governor.cpp" "tests/CMakeFiles/hadas_tests.dir/test_runtime_governor.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_runtime_governor.cpp.o.d"
  "/root/repo/tests/test_runtime_predictive.cpp" "tests/CMakeFiles/hadas_tests.dir/test_runtime_predictive.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_runtime_predictive.cpp.o.d"
  "/root/repo/tests/test_runtime_serve.cpp" "tests/CMakeFiles/hadas_tests.dir/test_runtime_serve.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_runtime_serve.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/hadas_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_supernet.cpp" "tests/CMakeFiles/hadas_tests.dir/test_supernet.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_supernet.cpp.o.d"
  "/root/repo/tests/test_supernet_ofa.cpp" "tests/CMakeFiles/hadas_tests.dir/test_supernet_ofa.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_supernet_ofa.cpp.o.d"
  "/root/repo/tests/test_supernet_trainer.cpp" "tests/CMakeFiles/hadas_tests.dir/test_supernet_trainer.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_supernet_trainer.cpp.o.d"
  "/root/repo/tests/test_util_json.cpp" "tests/CMakeFiles/hadas_tests.dir/test_util_json.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_util_json.cpp.o.d"
  "/root/repo/tests/test_util_linalg.cpp" "tests/CMakeFiles/hadas_tests.dir/test_util_linalg.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_util_linalg.cpp.o.d"
  "/root/repo/tests/test_util_misc.cpp" "tests/CMakeFiles/hadas_tests.dir/test_util_misc.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_util_misc.cpp.o.d"
  "/root/repo/tests/test_util_rng.cpp" "tests/CMakeFiles/hadas_tests.dir/test_util_rng.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_util_rng.cpp.o.d"
  "/root/repo/tests/test_util_statistics.cpp" "tests/CMakeFiles/hadas_tests.dir/test_util_statistics.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_util_statistics.cpp.o.d"
  "/root/repo/tests/test_util_strict_parse.cpp" "tests/CMakeFiles/hadas_tests.dir/test_util_strict_parse.cpp.o" "gcc" "tests/CMakeFiles/hadas_tests.dir/test_util_strict_parse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/bench/CMakeFiles/hadas_bench_common.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/core/CMakeFiles/hadas_core.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/dist/CMakeFiles/hadas_dist.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/net/CMakeFiles/hadas_net.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/runtime/CMakeFiles/hadas_runtime.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/dynn/CMakeFiles/hadas_dynn.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/hw/CMakeFiles/hadas_hw.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/supernet/CMakeFiles/hadas_supernet.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/data/CMakeFiles/hadas_data.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/nn/CMakeFiles/hadas_nn.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/exec/CMakeFiles/hadas_exec.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/obs/CMakeFiles/hadas_obs.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/hadas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
