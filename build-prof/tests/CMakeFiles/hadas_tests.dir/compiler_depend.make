# Empty compiler generated dependencies file for hadas_tests.
# This may be replaced when dependencies are built.
