# Empty compiler generated dependencies file for hadas_durable_property.
# This may be replaced when dependencies are built.
