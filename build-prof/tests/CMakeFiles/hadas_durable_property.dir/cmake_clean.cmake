file(REMOVE_RECURSE
  "CMakeFiles/hadas_durable_property.dir/test_durable_property.cpp.o"
  "CMakeFiles/hadas_durable_property.dir/test_durable_property.cpp.o.d"
  "hadas_durable_property"
  "hadas_durable_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_durable_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
