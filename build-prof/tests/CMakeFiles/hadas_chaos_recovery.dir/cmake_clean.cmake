file(REMOVE_RECURSE
  "CMakeFiles/hadas_chaos_recovery.dir/test_chaos_recovery.cpp.o"
  "CMakeFiles/hadas_chaos_recovery.dir/test_chaos_recovery.cpp.o.d"
  "hadas_chaos_recovery"
  "hadas_chaos_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_chaos_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
