# Empty compiler generated dependencies file for hadas_chaos_recovery.
# This may be replaced when dependencies are built.
