file(REMOVE_RECURSE
  "CMakeFiles/hadas_signal_shutdown.dir/test_signal_shutdown.cpp.o"
  "CMakeFiles/hadas_signal_shutdown.dir/test_signal_shutdown.cpp.o.d"
  "hadas_signal_shutdown"
  "hadas_signal_shutdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_signal_shutdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
