# Empty dependencies file for hadas_signal_shutdown.
# This may be replaced when dependencies are built.
