file(REMOVE_RECURSE
  "CMakeFiles/hadas_dist_chaos.dir/test_dist_chaos.cpp.o"
  "CMakeFiles/hadas_dist_chaos.dir/test_dist_chaos.cpp.o.d"
  "hadas_dist_chaos"
  "hadas_dist_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadas_dist_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
