# Empty compiler generated dependencies file for hadas_dist_chaos.
# This may be replaced when dependencies are built.
