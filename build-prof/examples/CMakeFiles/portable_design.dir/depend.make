# Empty dependencies file for portable_design.
# This may be replaced when dependencies are built.
