file(REMOVE_RECURSE
  "CMakeFiles/portable_design.dir/portable_design.cpp.o"
  "CMakeFiles/portable_design.dir/portable_design.cpp.o.d"
  "portable_design"
  "portable_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portable_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
