file(REMOVE_RECURSE
  "CMakeFiles/device_comparison.dir/device_comparison.cpp.o"
  "CMakeFiles/device_comparison.dir/device_comparison.cpp.o.d"
  "device_comparison"
  "device_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
