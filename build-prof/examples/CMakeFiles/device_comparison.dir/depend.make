# Empty dependencies file for device_comparison.
# This may be replaced when dependencies are built.
