# Empty dependencies file for runtime_deployment.
# This may be replaced when dependencies are built.
