file(REMOVE_RECURSE
  "CMakeFiles/runtime_deployment.dir/runtime_deployment.cpp.o"
  "CMakeFiles/runtime_deployment.dir/runtime_deployment.cpp.o.d"
  "runtime_deployment"
  "runtime_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
