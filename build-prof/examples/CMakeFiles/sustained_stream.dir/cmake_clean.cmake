file(REMOVE_RECURSE
  "CMakeFiles/sustained_stream.dir/sustained_stream.cpp.o"
  "CMakeFiles/sustained_stream.dir/sustained_stream.cpp.o.d"
  "sustained_stream"
  "sustained_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sustained_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
