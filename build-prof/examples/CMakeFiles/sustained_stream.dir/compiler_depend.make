# Empty compiler generated dependencies file for sustained_stream.
# This may be replaced when dependencies are built.
