file(REMOVE_RECURSE
  "CMakeFiles/dvfs_explorer.dir/dvfs_explorer.cpp.o"
  "CMakeFiles/dvfs_explorer.dir/dvfs_explorer.cpp.o.d"
  "dvfs_explorer"
  "dvfs_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
