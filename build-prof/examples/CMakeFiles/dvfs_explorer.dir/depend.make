# Empty dependencies file for dvfs_explorer.
# This may be replaced when dependencies are built.
