// hadas — command-line front end to the library.
//
//   hadas devices
//   hadas baselines --device tx2-gpu
//   hadas search    --device tx2-gpu --out result.json
//                   [--pop N] [--gens N] [--ioe-per-gen N] [--seed S]
//                   [--checkpoint F] [--faults rate=0.05,noise=0.01]
//   hadas show      result.json
//   hadas deploy    --device tx2-gpu --result result.json [--index I]
//                   [--policy entropy|confidence|oracle] [--threshold T]
//   hadas client    --connect host:port --session ID [--out report.json]
//
// Every command is deterministic given its arguments.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "core/multi_device.hpp"
#include "core/sensitivity.hpp"
#include "core/serialize.hpp"
#include "data/sample_stream.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "exec/chaos.hpp"
#include "net/client.hpp"
#include "net/session.hpp"
#include "hw/fleet/registry.hpp"
#include "net/socket.hpp"
#include "runtime/serve/fleet_failover.hpp"
#include "runtime/serve/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/deployment.hpp"
#include "runtime/serve/supervisor.hpp"
#include "serve_setup.hpp"
#include "supernet/baselines.hpp"
#include "util/durable/durable_file.hpp"
#include "util/strutil.hpp"
#include "util/table.hpp"

using namespace hadas;
using tools::Args;
using tools::ObsOutputs;
using tools::device_map;
using tools::obs_setup;
using tools::obs_write;
using tools::parse_device;
using tools::parse_space;

namespace {

/// Cooperative-shutdown flag set by SIGINT/SIGTERM. Long-running commands
/// (search, worker, the dist coordinator) poll it at checkpoint boundaries,
/// persist their state and exit 0 — so an orchestrator's TERM is a clean
/// "pause", resumable with the same command line.
std::atomic<bool> g_cancel{false};

extern "C" void handle_cancel_signal(int) {
  g_cancel.store(true, std::memory_order_relaxed);
}

void install_cancel_handlers() {
  std::signal(SIGINT, handle_cancel_signal);
  std::signal(SIGTERM, handle_cancel_signal);
}

/// The flags each subcommand accepts. Parsing validates against this, so a
/// typo'd --flag fails loudly instead of being silently ignored (and, e.g.,
/// silently running a search with default budgets).
const std::map<std::string, std::set<std::string>>& command_flags() {
  static const std::map<std::string, std::set<std::string>> map = {
      {"devices", {}},
      {"baselines", {"device"}},
      {"search",
       {"device", "out", "pop", "gens", "ioe-per-gen", "ioe-pop", "ioe-gens",
        "seed", "train-size", "epochs", "max-latency-ms", "space", "resume",
        "checkpoint", "checkpoint-every", "checkpoint-keep", "faults",
        "threads", "metrics-out", "trace-out", "dist", "dist-workdir",
        "dist-mode", "migrate-every", "migrants", "heartbeat-ms",
        "island-retries", "listen", "fleet", "fleet-seed"}},
      {"worker",
       {"spec", "island", "poll-ms", "wait-timeout-ms", "connect",
        "state-dir"}},
      {"show", {}},
      {"verify-checkpoint", {}},
      {"metrics-dump", {"format"}},
      {"deploy",
       {"device", "result", "index", "policy", "threshold", "train-size",
        "epochs", "space", "stream-seed"}},
      {"sensitivity", {"device", "result", "index", "baseline", "space"}},
      {"serve",
       {"device", "result", "index", "baseline", "policy", "threshold",
        "requests", "rate", "queue", "deadline-ms", "watchdog", "degraded",
        "faults", "failover", "failover-faults", "thermal", "train-size",
        "epochs", "space", "stream-seed", "trace-seed", "out", "journal",
        "journal-every", "journal-keep", "threads", "metrics-out",
        "trace-out"}},
      {"portable",
       {"pop", "gens", "backbones", "ioe-pop", "ioe-gens", "train-size",
        "epochs", "seed", "space", "threads", "out", "fleet", "fleet-seed",
        "fleet-state", "kill-per-round", "recover-per-round",
        "degrade-per-round", "chaos-rounds", "chaos-seed", "serve-requests",
        "serve-rate", "serve-faults", "serve-index", "serve-out",
        "stream-seed", "metrics-out", "trace-out"}},
      {"device", {"device", "fleet", "fleet-seed", "fleet-state"}},
      {"client",
       {"connect", "session", "state", "out", "requests", "rate",
        "trace-seed", "batch", "retries", "backoff-ms"}},
  };
  return map;
}

int cmd_devices() {
  util::TextTable table({"name", "device", "core DVFS", "emc DVFS"},
                        {util::Align::kLeft, util::Align::kLeft,
                         util::Align::kRight, util::Align::kRight});
  for (const auto& [name, target] : device_map()) {
    const auto device = hw::make_device(target);
    table.add_row({name, device.name, std::to_string(device.core_freqs_hz.size()),
                   std::to_string(device.emc_freqs_hz.size())});
  }
  table.print(std::cout);
  return 0;
}

/// The registry a `hadas device` invocation operates on: resumed from the
/// durable fleet checkpoint when --fleet-state names an existing file,
/// otherwise provisioned fresh from --fleet/--fleet-seed (deterministic, so
/// repeated invocations see the same fleet).
hw::fleet::FleetRegistry device_cmd_registry(const Args& args) {
  if (const auto state = args.get("fleet-state"))
    if (std::ifstream(*state).good()) return hw::fleet::FleetRegistry::load(*state);
  hw::fleet::FleetConfig config;
  config.devices = args.get_or("fleet", config.devices);
  config.seed = args.get_or("fleet-seed", std::size_t{config.seed});
  return hw::fleet::FleetRegistry(std::move(config));
}

/// `hadas device examine|validate|reset`: xbutil-style fleet device
/// management. Devices are addressed by BDF (--device 0000:01:00.1) or
/// --device all (the default for examine/validate).
int cmd_device(const Args& args) {
  static const char* kUsage =
      "usage: hadas device examine|validate|reset [--device BDF|all]\n"
      "       [--fleet N] [--fleet-seed S] [--fleet-state F]";
  if (args.positional().empty()) throw std::invalid_argument(kUsage);
  const std::string action = args.positional().front();
  if (action != "examine" && action != "validate" && action != "reset")
    throw std::invalid_argument("unknown device action '" + action +
                                "' (expected examine, validate or reset)\n" +
                                kUsage);

  hw::fleet::FleetRegistry registry = device_cmd_registry(args);
  const std::string selector = args.get_or("device", std::string("all"));
  std::vector<hw::fleet::Bdf> selected;
  if (selector == "all") {
    selected = registry.members();
  } else {
    const hw::fleet::Bdf bdf = hw::fleet::parse_bdf("--device", selector);
    if (!registry.contains(bdf))
      throw std::invalid_argument(
          "no device at " + bdf.str() + " (the fleet has " +
          std::to_string(registry.size()) +
          " devices; `hadas device examine` lists them)");
    selected.push_back(bdf);
  }

  if (action == "examine") {
    if (selected.size() == 1) {
      const hw::fleet::DeviceInfo info = registry.examine(selected.front());
      util::TextTable table({"field", "value"},
                            {util::Align::kLeft, util::Align::kLeft});
      table.set_title("device " + info.bdf.str());
      table.add_row({"device", std::string(hw::fleet::target_key(info.target)) +
                                   " (" + hw::target_name(info.target) + ")"});
      table.add_row({"group", std::to_string(info.group)});
      table.add_row({"lifecycle", hw::fleet::lifecycle_name(info.state)});
      table.add_row({"breaker", hw::breaker_state_name(info.breaker)});
      table.add_row({"temperature", util::fmt_fixed(info.temperature_c, 1) + " C"});
      table.add_row({"transitions", std::to_string(info.transitions)});
      table.add_row({"last transition round",
                     std::to_string(info.last_transition_round)});
      table.add_row({"thermal trips", std::to_string(info.thermal_trips)});
      table.add_row({"resets", std::to_string(info.resets)});
      table.add_row({"measurements / failures",
                     std::to_string(info.health.measurements) + " / " +
                         std::to_string(info.health.failed_measurements)});
      table.print(std::cout);
    } else {
      util::TextTable table(
          {"bdf", "device", "lifecycle", "breaker", "temp C", "transitions"},
          {util::Align::kLeft, util::Align::kLeft, util::Align::kLeft,
           util::Align::kLeft, util::Align::kRight, util::Align::kRight});
      table.set_title("fleet: " + std::to_string(registry.size()) +
                      " devices, " +
                      std::to_string(registry.serviceable_count()) +
                      " serviceable (round " + std::to_string(registry.round()) +
                      ")");
      for (const auto& bdf : selected) {
        const hw::fleet::DeviceInfo info = registry.examine(bdf);
        table.add_row({info.bdf.str(), hw::fleet::target_key(info.target),
                       hw::fleet::lifecycle_name(info.state),
                       hw::breaker_state_name(info.breaker),
                       util::fmt_fixed(info.temperature_c, 1),
                       std::to_string(info.transitions)});
      }
      table.print(std::cout);
      std::string tally;
      for (const auto& [state, count] : registry.tally()) {
        if (!tally.empty()) tally += ", ";
        tally += std::to_string(count) + " " +
                 hw::fleet::lifecycle_name(state);
      }
      std::cout << "state tally: " << tally << "\n";
    }
    return 0;
  }

  if (action == "validate") {
    std::size_t failed = 0;
    for (const auto& bdf : selected) {
      const hw::fleet::ValidationReport report = registry.validate(bdf);
      util::TextTable table({"check", "result", "note"},
                            {util::Align::kLeft, util::Align::kLeft,
                             util::Align::kLeft});
      table.set_title("validation of " + bdf.str());
      for (const auto& check : report.checks)
        table.add_row({check.name, check.passed ? "pass" : "FAIL", check.note});
      table.print(std::cout);
      if (!report.passed()) ++failed;
    }
    if (failed > 0) {
      std::cout << failed << " of " << selected.size()
                << " device(s) FAILED validation\n";
      return 1;
    }
    std::cout << "all " << selected.size() << " device(s) passed validation\n";
    return 0;
  }

  // reset
  for (const auto& bdf : selected) {
    const hw::fleet::Lifecycle before = registry.examine(bdf).state;
    registry.reset_device(bdf);
    std::cout << bdf.str() << ": " << hw::fleet::lifecycle_name(before)
              << " -> " << hw::fleet::lifecycle_name(registry.examine(bdf).state)
              << " (fresh breaker, ambient temperature)\n";
  }
  if (const auto state = args.get("fleet-state")) {
    registry.save(*state);
    std::cout << "fleet state -> " << *state << "\n";
  }
  return 0;
}

int cmd_baselines(const Args& args) {
  const hw::Target target = parse_device(args.get_or("device", "tx2-gpu"));
  const auto space = supernet::SearchSpace::attentive_nas();
  const core::StaticEvaluator evaluator(space, target);
  util::TextTable table({"model", "accuracy", "latency ms", "energy mJ", "MMACs"},
                        {util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight});
  table.set_title("AttentiveNAS baselines on " + hw::target_name(target));
  for (const auto& baseline : supernet::attentive_nas_baselines()) {
    const core::StaticEval eval = evaluator.evaluate(baseline.config);
    const auto cost = evaluator.cost_model().analyze(baseline.config);
    table.add_row({baseline.name, util::fmt_pct(eval.accuracy, 2),
                   util::fmt_fixed(eval.latency_s * 1e3, 2),
                   util::fmt_fixed(eval.energy_j * 1e3, 2),
                   util::fmt_fixed(cost.total_macs / 1e6, 0)});
  }
  table.print(std::cout);
  return 0;
}

/// `hadas search --dist K`: island-model distributed search. The outer
/// population is partitioned into K islands evolved by `hadas worker`
/// subprocesses, with ring migration every --migrate-every generations; the
/// coordinator supervises (heartbeats, restarts, per-island circuit
/// breaker) and merges the island fronts.
int run_dist_search(const Args& args, std::size_t islands) {
  if (args.get("checkpoint") || args.get("checkpoint-every"))
    throw std::invalid_argument(
        "--checkpoint/--checkpoint-every cannot be combined with --dist: the "
        "--dist-workdir owns every island's checkpoint chain");
  if (const auto resume = args.get("resume"); resume && *resume != "auto")
    throw std::invalid_argument(
        "--dist resumes from its workdir; only '--resume auto' is accepted");

  dist::DistSpec spec;
  spec.device = args.get_or("device", std::string("tx2-gpu"));
  spec.space = args.get_or("space", std::string("attentive"));
  spec.outer_population = args.get_or("pop", spec.outer_population);
  spec.outer_generations = args.get_or("gens", spec.outer_generations);
  spec.ioe_backbones_per_generation =
      args.get_or("ioe-per-gen", spec.ioe_backbones_per_generation);
  spec.ioe_population = args.get_or("ioe-pop", spec.ioe_population);
  spec.ioe_generations = args.get_or("ioe-gens", spec.ioe_generations);
  spec.seed = args.get_or("seed", std::size_t{2023});
  spec.train_size = args.get_or("train-size", spec.train_size);
  spec.epochs = args.get_or("epochs", spec.epochs);
  spec.max_latency_s = args.get_or("max-latency-ms", 0.0) * 1e-3;
  spec.faults = args.get_or("faults", std::string());
  spec.checkpoint_keep = args.get_or("checkpoint-keep", spec.checkpoint_keep);
  spec.threads = args.get_or("threads", spec.threads);
  spec.islands = islands;
  spec.migration_every = args.get_or("migrate-every", spec.migration_every);
  spec.migrants = args.get_or("migrants", spec.migrants);

  // --fleet N: scope each island to one fleet device group instead of the
  // spec-wide --device. Islands are assigned the serviceable groups
  // round-robin, so a 4-group fleet with 4 islands searches every hardware
  // model concurrently and the merge unions their fronts.
  if (const std::size_t fleet_devices = args.get_or("fleet", std::size_t{0});
      fleet_devices > 0) {
    hw::fleet::FleetConfig fleet_config;
    fleet_config.devices = fleet_devices;
    fleet_config.seed =
        args.get_or("fleet-seed", std::size_t{fleet_config.seed});
    const hw::fleet::FleetRegistry registry(std::move(fleet_config));
    std::vector<std::size_t> groups;
    for (std::size_t g = 0; g < registry.group_count(); ++g)
      if (registry.group_serviceable(g) > 0) groups.push_back(g);
    if (groups.empty())
      throw std::invalid_argument(
          "--fleet registry has no serviceable device to scope islands to");
    spec.island_devices.reserve(spec.islands);
    for (std::size_t i = 0; i < spec.islands; ++i)
      spec.island_devices.push_back(
          hw::fleet::target_key(registry.group_target(groups[i % groups.size()])));
    std::cout << "fleet-scoped islands (" << fleet_devices << " devices, "
              << groups.size() << " group(s)):";
    for (std::size_t i = 0; i < spec.islands; ++i)
      std::cout << " " << i << "=" << spec.island_devices[i];
    std::cout << "\n";
  } else if (args.get("fleet-seed")) {
    throw std::invalid_argument("--fleet-seed requires --fleet N");
  }

  const std::string workdir =
      args.get_or("dist-workdir", std::string("hadas_dist"));
  const std::string out_path =
      args.get_or("out", std::string("hadas_result.json"));
  const ObsOutputs obs_out = obs_setup(args);

  dist::DistOptions options;
  // --listen switches the transport to multi-host: workers dial in over TCP
  // instead of being forked locally. It implies --dist-mode net.
  const std::string mode = args.get_or(
      "dist-mode", args.get("listen") ? std::string("net") : std::string("spawn"));
  if (mode == "inline") {
    options.spawn = false;
  } else if (mode == "net") {
    if (!args.get("listen"))
      throw std::invalid_argument(
          "--dist-mode net needs --listen HOST:PORT (the endpoint remote "
          "workers dial)");
    options.listen = args.get_hostport("listen");
  } else if (mode != "spawn") {
    throw std::invalid_argument("unknown --dist-mode '" + mode +
                                "' (expected spawn, inline or net)");
  }
  if (args.get("listen") && mode != "net")
    throw std::invalid_argument(
        "--listen only makes sense with --dist-mode net (workers are " + mode +
        (mode == "inline" ? "d" : "ed") + " locally and need no endpoint)");
  options.heartbeat_ms = args.get_or("heartbeat-ms", options.heartbeat_ms);
  options.island_failure_threshold =
      args.get_or("island-retries", options.island_failure_threshold);
  // Workers give up waiting for missing inbound migrants a bit after the
  // coordinator would declare them hung, never before.
  options.worker_wait_timeout_ms =
      std::max(options.worker_wait_timeout_ms, 4 * options.heartbeat_ms);
  if (const char* keep = std::getenv("HADAS_CHAOS_RESPAWN_KEEP"))
    options.chaos_respawn_keep = *keep != '\0';
  options.cancel = &g_cancel;
  install_cancel_handlers();

  std::cout << "distributed search: " << spec.islands << " island(s) x "
            << spec.outer_generations << " generations, migration every "
            << spec.migration_every << " (" << mode << " mode) in " << workdir
            << "\n";
  if (options.listen.has_value())
    // Flushed readiness banner: two-process drivers wait for this line
    // before dialing workers in (dials before the bind retry anyway).
    std::cout << "coordinator accepting workers on " << options.listen->host
              << ":" << options.listen->port << std::endl;
  dist::DistCoordinator coordinator(spec, workdir, options);
  const dist::DistReport report = coordinator.run();
  std::cout << "workers: " << report.workers_spawned << " spawned, "
            << report.workers_restarted << " restarted, "
            << report.workers_quarantined << " quarantined, "
            << report.heartbeat_misses << " heartbeat miss(es); "
            << report.migrants_exchanged << " migrants exchanged\n";
  if (report.interrupted) {
    std::cout << "interrupted: island state checkpointed in " << workdir
              << "; rerun the same command to continue\n";
    obs_write(obs_out);
    return 0;
  }
  core::save_json(out_path, report.merged);
  std::cout << "merged Pareto set: "
            << report.merged.at("final_pareto").as_array().size()
            << " designs -> " << out_path << "\n";
  obs_write(obs_out);
  return 0;
}

/// `hadas worker`: one island of a distributed search — spawned by the
/// coordinator against a shared workdir (--spec), or dialed into a
/// `hadas search --listen` coordinator from another machine (--connect).
int cmd_worker(const Args& args) {
  if (const auto connect = args.get("connect")) {
    if (args.get("spec"))
      throw std::invalid_argument(
          "--spec cannot be combined with --connect: a net worker receives "
          "the spec in the coordinator's welcome");
    if (args.get("poll-ms"))
      throw std::invalid_argument(
          "--poll-ms cannot be combined with --connect: a net worker is "
          "driven by the coordinator's stream, not a workdir poll");
    const auto island_arg = args.get("island");
    if (!island_arg)
      throw std::invalid_argument(
          "usage: hadas worker --connect HOST:PORT --island I "
          "[--state-dir DIR]");
    dist::NetWorkerConfig config;
    config.connect = args.get_hostport("connect");
    config.island = util::parse_size("--island", *island_arg);
    config.state_dir = args.get_or(
        "state-dir", "hadas_worker_island" + std::to_string(config.island));
    config.wait_timeout_ms =
        args.get_or("wait-timeout-ms", config.wait_timeout_ms);
    config.cancel = &g_cancel;
    install_cancel_handlers();
    std::cout << "net worker: island " << config.island << " -> "
              << config.connect.host << ":" << config.connect.port
              << ", state in " << config.state_dir << std::endl;
    dist::NetWorker worker(nullptr, config);
    const int code = worker.run();
    if (code == dist::kWorkerExitDone)
      std::cout << "island " << config.island << " complete ("
                << worker.reconnects() << " reconnect(s))\n";
    return code;
  }
  if (args.get("state-dir"))
    throw std::invalid_argument(
        "--state-dir requires --connect (a workdir worker's state lives in "
        "the shared --spec directory)");
  const auto spec_file = args.get("spec");
  const auto island_arg = args.get("island");
  if (!spec_file || !island_arg)
    throw std::invalid_argument(
        "usage: hadas worker --spec <workdir>/dist_spec.json --island I");
  const dist::DistSpec spec = dist::load_spec(*spec_file);
  const std::size_t island = util::parse_size("--island", *island_arg);
  if (island >= spec.islands)
    throw std::invalid_argument("--island " + std::to_string(island) +
                                " out of range (spec has " +
                                std::to_string(spec.islands) + " islands)");
  const std::size_t slash = spec_file->find_last_of('/');
  const std::string workdir =
      slash == std::string::npos ? "." : spec_file->substr(0, slash);

  dist::WorkerOptions options;
  options.poll_ms = args.get_or("poll-ms", options.poll_ms);
  options.wait_timeout_ms =
      args.get_or("wait-timeout-ms", options.wait_timeout_ms);
  options.cancel = &g_cancel;
  install_cancel_handlers();
  return dist::run_worker(spec, workdir, island, options);
}

int cmd_search(const Args& args) {
  if (const std::size_t islands = args.get_or("dist", std::size_t{0});
      islands > 0)
    return run_dist_search(args, islands);
  if (args.get("fleet") || args.get("fleet-seed"))
    throw std::invalid_argument(
        "--fleet scopes islands of a distributed search; it requires --dist K "
        "(for a fleet-wide joint search use `hadas portable --fleet N`)");
  const hw::Target target = parse_device(args.get_or("device", "tx2-gpu"));
  const std::string out_path = args.get_or("out", std::string("hadas_result.json"));

  core::HadasConfig config;
  config.outer_population = args.get_or("pop", std::size_t{16});
  config.outer_generations = args.get_or("gens", std::size_t{6});
  config.ioe_backbones_per_generation = args.get_or("ioe-per-gen", std::size_t{2});
  config.ioe.nsga.population = args.get_or("ioe-pop", std::size_t{30});
  config.ioe.nsga.generations = args.get_or("ioe-gens", std::size_t{20});
  config.seed = args.get_or("seed", std::size_t{2023});
  config.data.train_size = args.get_or("train-size", std::size_t{1500});
  config.bank.train.epochs = args.get_or("epochs", std::size_t{8});
  config.max_latency_s = args.get_or("max-latency-ms", 0.0) * 1e-3;
  config.checkpoint_path = args.get_or("checkpoint", std::string());
  config.checkpoint_every = args.get_or("checkpoint-every", std::size_t{1});
  config.checkpoint_keep = args.get_or("checkpoint-keep", std::size_t{3});
  config.exec.threads = args.get_or("threads", config.exec.threads);
  if (const auto faults = args.get("faults"))
    config.robust.faults = hw::parse_fault_config(*faults);
  config.cancel = &g_cancel;
  install_cancel_handlers();
  const ObsOutputs obs_out = obs_setup(args);

  const supernet::SearchSpace space = parse_space(args);
  core::WarmStart warm;
  if (const auto resume = args.get("resume")) {
    if (*resume == "auto") {
      // Resume from the checkpoint chain (the engine does this whenever
      // --checkpoint is set); "auto" just asserts that intent instead of
      // naming a warm-start result file.
      if (config.checkpoint_path.empty())
        throw std::invalid_argument(
            "--resume auto needs --checkpoint F (the chain to resume from)");
    } else {
      const auto solutions =
          core::final_pareto_from_json(core::load_json(*resume));
      warm = core::warm_start_from_solutions(space, solutions);
      std::cout << "warm-starting from " << *resume << " ("
                << warm.known.size() << " known backbones)\n";
    }
  }

  std::cout << "searching on " << hw::target_name(target) << " ("
            << config.outer_population << "x" << config.outer_generations
            << " outer, " << config.ioe.nsga.population << "x"
            << config.ioe.nsga.generations << " inner)...\n";
  core::HadasEngine engine(space, target, config);
  const core::HadasResult result = engine.run(warm);

  if (!result.resumed_from_file.empty()) {
    std::cout << "resumed from " << result.resumed_from_file
              << " (generation " << result.resumed_from_generation << ")";
    if (result.corrupt_checkpoints_skipped > 0)
      std::cout << ", skipped " << result.corrupt_checkpoints_skipped
                << " corrupt snapshot(s)";
    std::cout << "\n";
  }
  if (result.interrupted) {
    std::cout << "interrupted at generation boundary";
    if (!config.checkpoint_path.empty())
      std::cout << "; checkpoint saved — rerun with --resume auto to continue";
    std::cout << "\n";
    core::export_search_metrics(engine, result);
    obs_write(obs_out);
    return 0;
  }
  core::save_json(out_path, core::result_to_json(result, target));
  if (engine.static_evaluator().robust().active()) {
    const hw::HealthReport& h = result.device_health;
    std::cout << "device health: breaker " << hw::breaker_state_name(h.state)
              << ", " << h.measurements << " measurements, " << h.retries
              << " retries, " << h.transient_failures << " transient failures, "
              << h.quarantined << " quarantined, " << h.failed_measurements
              << " hard failures, " << h.breaker_trips << " breaker trips\n";
  }
  std::cout << "explored " << result.backbones.size() << " backbones, "
            << result.inner_evaluations << " inner evaluations\n"
            << "final Pareto set: " << result.final_pareto.size()
            << " designs -> " << out_path << "\n";
  core::export_search_metrics(engine, result);
  obs_write(obs_out);
  return 0;
}

int cmd_show(const Args& args) {
  if (args.positional().empty())
    throw std::invalid_argument("usage: hadas show <result.json>");
  const auto json = core::load_json(args.positional().front());
  const auto solutions = core::final_pareto_from_json(json);
  util::TextTable table({"#", "backbone", "exits", "core", "emc", "static acc",
                         "dyn acc", "E/sample mJ", "gain"},
                        {util::Align::kRight, util::Align::kLeft,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight});
  table.set_title("HADAS result: " + json.at("device").as_string() + " (" +
                  std::to_string(json.at("explored_backbones").as_index()) +
                  " backbones explored)");
  for (std::size_t i = 0; i < solutions.size(); ++i) {
    const auto& sol = solutions[i];
    table.add_row({std::to_string(i),
                   "r" + std::to_string(sol.backbone.resolution) + "/" +
                       std::to_string(sol.backbone.total_layers()) + "L",
                   std::to_string(sol.placement.count()),
                   std::to_string(sol.setting.core_idx),
                   std::to_string(sol.setting.emc_idx),
                   util::fmt_pct(sol.static_eval.accuracy, 2),
                   util::fmt_pct(sol.dynamic.oracle_accuracy, 2),
                   util::fmt_fixed(sol.dynamic.energy_per_sample_j * 1e3, 2),
                   util::fmt_pct(sol.dynamic.energy_gain, 1)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_verify_checkpoint(const Args& args) {
  if (args.positional().empty())
    throw std::invalid_argument("usage: hadas verify-checkpoint <file>");
  const std::string path = args.positional().front();
  const auto info = util::durable::DurableFile::inspect(path);
  if (!info.exists) {
    std::cerr << path << ": no such file\n";
    return 1;
  }

  util::TextTable table({"field", "value"},
                        {util::Align::kLeft, util::Align::kLeft});
  table.set_title("durable envelope of " + path);
  if (info.legacy) {
    table.add_row({"envelope", "none (legacy pre-durable payload)"});
  } else {
    table.add_row({"header", info.header_ok ? "ok" : "MALFORMED"});
    table.add_row({"version", std::to_string(info.version)});
    table.add_row({"format tag", info.format_tag});
    table.add_row({"payload bytes declared / file size",
                   std::to_string(info.declared_bytes) + " / " +
                       std::to_string(info.file_bytes) +
                       (info.length_ok ? "" : "  (TRUNCATED)")});
    table.add_row({"CRC-64 declared", info.crc_declared});
    table.add_row({"CRC-64 actual",
                   info.crc_actual + (info.checksum_ok ? "" : "  (MISMATCH)")});
    table.add_row({"envelope", info.valid() ? "valid" : "CORRUPT"});
  }

  // Envelope aside, run the full load path (parse + invariant validation)
  // of whatever the format tag says this file is — search checkpoints,
  // dist-layer artifacts, net session journals and serve journals all
  // triage through the same command — and report the payload's identity.
  try {
    const std::string tag = info.format_tag;
    if (info.legacy || tag == core::kCheckpointFormatTag) {
      const core::SearchCheckpoint checkpoint = core::load_checkpoint(path);
      table.add_row({"payload", "valid checkpoint"});
      table.add_row({"fingerprint", checkpoint.fingerprint});
      table.add_row({"next generation", std::to_string(checkpoint.next_generation)});
      table.add_row({"population", std::to_string(checkpoint.population.size())});
      table.add_row({"backbones", std::to_string(checkpoint.backbones.size())});
      table.add_row({"outer / inner evaluations",
                     std::to_string(checkpoint.outer_evaluations) + " / " +
                         std::to_string(checkpoint.inner_evaluations)});
    } else if (tag == dist::kDistSpecFormatTag) {
      const dist::DistSpec spec = dist::load_spec(path);
      table.add_row({"payload", "valid dist spec"});
      table.add_row({"device / space", spec.device + " / " + spec.space});
      table.add_row({"population x generations",
                     std::to_string(spec.outer_population) + " x " +
                         std::to_string(spec.outer_generations)});
      table.add_row({"islands", std::to_string(spec.islands)});
      table.add_row({"migration every / migrants",
                     std::to_string(spec.migration_every) + " / " +
                         std::to_string(spec.migrants)});
    } else if (tag == dist::kMigrantsFormatTag) {
      const dist::MigrantSet migrants = dist::load_migrants_file(path);
      table.add_row({"payload", "valid migrant set"});
      table.add_row({"island", std::to_string(migrants.island)});
      table.add_row({"round", std::to_string(migrants.round)});
      table.add_row({"genomes", std::to_string(migrants.genomes.size())});
    } else if (tag == dist::kIslandResultFormatTag) {
      const util::Json result = dist::load_island_result(path);
      table.add_row({"payload", "valid island result"});
      table.add_row({"island",
                     std::to_string(result.at("island").as_index())});
      table.add_row({"next generation",
                     std::to_string(result.at("next_generation").as_index())});
      table.add_row({"Pareto designs",
                     std::to_string(result.at("final_pareto").as_array().size())});
    } else if (tag == hw::fleet::kFleetFormatTag) {
      const hw::fleet::FleetRegistry fleet = hw::fleet::FleetRegistry::load(path);
      table.add_row({"payload", "valid fleet checkpoint"});
      table.add_row({"devices / serviceable",
                     std::to_string(fleet.size()) + " / " +
                         std::to_string(fleet.serviceable_count())});
      std::string tally;
      for (const auto& [state, count] : fleet.tally()) {
        if (!tally.empty()) tally += ", ";
        tally += std::to_string(count) + " " + hw::fleet::lifecycle_name(state);
      }
      table.add_row({"state tally", tally});
      table.add_row({"chaos round", std::to_string(fleet.round())});
      table.add_row({"last transition round",
                     std::to_string(fleet.last_transition_round())});
    } else if (tag == net::kSessionFormatTag) {
      const auto session = net::load_session_state(path);
      table.add_row({"payload", "valid net session journal"});
      table.add_row({"session id", session->session_id});
      table.add_row({"server fingerprint", session->fingerprint});
      table.add_row({"write acked / unacked bytes",
                     std::to_string(session->write_acked) + " / " +
                         std::to_string(session->write_unacked.size())});
      table.add_row({"read sequence", std::to_string(session->read_seq)});
    } else if (tag == dist::kDistSessionFormatTag) {
      const auto session =
          net::load_session_state(path, dist::kDistSessionFormatTag);
      table.add_row({"payload", "valid dist-net session journal"});
      table.add_row({"session id", session->session_id});
      table.add_row({"spec fingerprint", session->fingerprint});
      table.add_row({"write acked / unacked bytes",
                     std::to_string(session->write_acked) + " / " +
                         std::to_string(session->write_unacked.size())});
      table.add_row({"read sequence", std::to_string(session->read_seq)});
      // The app document tells the two roles apart: the coordinator journals
      // which inbound rounds it pushed, a worker which rounds it uploaded.
      if (session->app.contains("pushed"))
        table.add_row({"role / migrant rounds pushed",
                       "coordinator / " +
                           std::to_string(session->app.at("pushed").size())});
      if (session->app.contains("sent"))
        table.add_row({"role / migrant rounds uploaded",
                       "worker / " +
                           std::to_string(session->app.at("sent").size())});
      if (session->app.contains("final_sent"))
        table.add_row({"island result uploaded",
                       session->app.at("final_sent").as_bool() ? "yes" : "no"});
    } else if (tag == runtime::serve::kServeJournalFormatTag) {
      const std::string payload =
          util::durable::DurableFile::read(path, tag);
      runtime::serve::ServeJournalSnapshot snapshot;
      try {
        snapshot = runtime::serve::journal_snapshot_from_json(
            util::Json::parse(payload));
      } catch (const util::durable::CheckpointCorruptError&) {
        throw;
      } catch (const std::exception& e) {
        throw util::durable::CheckpointCorruptError(
            path, 0, util::durable::CorruptStage::kParse, e.what());
      }
      table.add_row({"payload", "valid serve journal"});
      table.add_row({"fingerprint", snapshot.fingerprint});
      table.add_row({"next request index", std::to_string(snapshot.next_index)});
      table.add_row({"lanes", std::to_string(snapshot.lanes.size())});
    } else {
      table.add_row({"payload", "unknown format tag (envelope " +
                                    std::string(info.valid() ? "valid" : "CORRUPT") +
                                    ", payload not triaged)"});
    }
    table.print(std::cout);
    return 0;
  } catch (const util::durable::CheckpointCorruptError& e) {
    table.add_row({"payload", std::string("CORRUPT (") +
                                  util::durable::corrupt_stage_name(e.stage()) +
                                  " at byte " +
                                  std::to_string(e.byte_offset()) + ")"});
    table.print(std::cout);
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

int cmd_deploy(const Args& args) {
  const hw::Target target = parse_device(args.get_or("device", "tx2-gpu"));
  const std::string result_path =
      args.get_or("result", std::string("hadas_result.json"));
  const std::size_t index = args.get_or("index", std::size_t{0});
  const std::string policy_name = args.get_or("policy", std::string("entropy"));

  const auto solutions =
      core::final_pareto_from_json(core::load_json(result_path));
  if (index >= solutions.size())
    throw std::invalid_argument("--index out of range (have " +
                                std::to_string(solutions.size()) + " designs)");
  const core::FinalSolution& sol = solutions[index];

  core::HadasConfig config;
  config.data.train_size = args.get_or("train-size", std::size_t{1500});
  config.bank.train.epochs = args.get_or("epochs", std::size_t{8});
  const supernet::SearchSpace space = parse_space(args);
  core::HadasEngine engine(space, target, config);

  std::cout << "training exit bank for the selected design...\n";
  const auto& bank = engine.exit_bank(sol.backbone);
  const auto& costs = engine.cost_table(sol.backbone);
  const runtime::DeploymentSimulator sim(bank, costs);
  const data::SampleStream stream(engine.task(), 2000,
                                  args.get_or("stream-seed", std::size_t{5}));

  std::unique_ptr<runtime::ExitPolicy> policy;
  if (policy_name == "oracle") {
    policy = std::make_unique<runtime::OraclePolicy>();
  } else if (policy_name == "confidence") {
    policy = std::make_unique<runtime::ConfidencePolicy>(
        args.get_or("threshold", 0.6));
  } else if (policy_name == "entropy") {
    double threshold = args.get_or("threshold", -1.0);
    if (threshold < 0.0) {
      threshold = sim.calibrate_entropy_threshold(
          sol.placement, sol.setting, stream, bank.backbone_accuracy() - 0.02);
      std::cout << "calibrated entropy threshold: "
                << util::fmt_fixed(threshold, 3) << "\n";
    }
    policy = std::make_unique<runtime::EntropyPolicy>(threshold);
  } else {
    throw std::invalid_argument("unknown --policy '" + policy_name + "'");
  }

  const auto report = sim.run(sol.placement, sol.setting, *policy, stream);
  util::TextTable table({"metric", "value"},
                        {util::Align::kLeft, util::Align::kRight});
  table.set_title("deployment of design #" + std::to_string(index) + " with " +
                  policy->name() + " controller");
  table.add_row({"samples", std::to_string(report.samples)});
  table.add_row({"accuracy", util::fmt_pct(report.accuracy, 2)});
  table.add_row({"avg energy", util::fmt_fixed(report.avg_energy_j * 1e3, 2) + " mJ"});
  table.add_row({"avg latency", util::fmt_fixed(report.avg_latency_s * 1e3, 2) + " ms"});
  table.add_row({"energy gain vs static", util::fmt_pct(report.energy_gain, 1)});
  table.print(std::cout);
  return 0;
}

int cmd_serve(const Args& args) {
  const ObsOutputs obs_out = obs_setup(args);
  const tools::ServeStack stack(args);

  runtime::serve::TrafficConfig traffic;
  traffic.requests = args.get_or("requests", std::size_t{1000});
  traffic.arrival_rate_hz = args.get_or("rate", 100.0);
  traffic.seed = args.get_or("trace-seed", std::size_t{0x5E21});
  const auto trace = runtime::serve::poisson_trace(*stack.stream, traffic);

  std::cout << "replaying " << trace.size() << " requests at "
            << util::fmt_fixed(traffic.arrival_rate_hz, 0) << " req/s ("
            << (stack.supervisor->envelope_active()
                    ? "robustness envelope active"
                    : "pass-through")
            << ")...\n";
  const runtime::serve::ServeReport report =
      stack.supervisor->run(*stack.placement, stack.ladder_view(), trace);

  util::TextTable table({"metric", "value"},
                        {util::Align::kLeft, util::Align::kRight});
  table.set_title("serving report (" + stack.policy_name + " ladder)");
  table.add_row({"offered / admitted / shed",
                 std::to_string(report.offered) + " / " +
                     std::to_string(report.admitted) + " / " +
                     std::to_string(report.shed + report.shed_no_device)});
  table.add_row({"accuracy", util::fmt_pct(report.deployment.accuracy, 2)});
  std::string percentile_cell =
      util::fmt_fixed(report.p50_latency_s * 1e3, 2) + " / " +
      util::fmt_fixed(report.p95_latency_s * 1e3, 2) + " / " +
      util::fmt_fixed(report.p99_latency_s * 1e3, 2) + " ms";
  if (report.percentiles_low_confidence())
    percentile_cell += " (low confidence, n=" + std::to_string(report.completed) +
                       " < " + std::to_string(runtime::serve::ServeReport::kPercentileConfidenceMin) + ")";
  table.add_row({"p50 / p95 / p99 latency", percentile_cell});
  table.add_row({"deadline miss rate", util::fmt_pct(report.miss_rate, 2)});
  table.add_row({"watchdog fallbacks", std::to_string(report.watchdog_fallbacks)});
  table.add_row({"failovers / devices lost",
                 std::to_string(report.failovers) + " / " +
                     std::to_string(report.devices_lost)});
  table.add_row({"degraded entries", std::to_string(report.degraded_entries)});
  table.add_row({"final mode", runtime::serve::serve_mode_name(report.final_mode)});
  table.add_row({"makespan", util::fmt_fixed(report.makespan_s, 3) + " s"});
  table.add_row({"energy gain vs static",
                 util::fmt_pct(report.deployment.energy_gain, 1)});
  table.print(std::cout);

  if (const auto out = args.get("out")) {
    core::save_json(*out, report.to_json());
    std::cout << "serve report -> " << *out << "\n";
  }
  obs_write(obs_out);
  return 0;
}

int cmd_sensitivity(const Args& args) {
  const hw::Target target = parse_device(args.get_or("device", "tx2-gpu"));
  const std::string result_path =
      args.get_or("result", std::string("hadas_result.json"));
  const std::size_t index = args.get_or("index", std::size_t{0});

  supernet::BackboneConfig backbone;
  if (args.get("baseline")) {
    const std::string name = *args.get("baseline");
    bool found = false;
    for (const auto& baseline : supernet::attentive_nas_baselines())
      if (baseline.name == name) {
        backbone = baseline.config;
        found = true;
      }
    if (!found) throw std::invalid_argument("unknown --baseline '" + name + "'");
  } else {
    const auto solutions =
        core::final_pareto_from_json(core::load_json(result_path));
    if (index >= solutions.size())
      throw std::invalid_argument("--index out of range");
    backbone = solutions[index].backbone;
  }

  const core::StaticEvaluator evaluator(parse_space(args), target);
  const auto report = core::analyze_sensitivity(evaluator, backbone);
  util::TextTable table({"gene", "choices", "max acc drop", "max energy saving",
                         "acc%/J of best save"},
                        {util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight});
  table.set_title("single-gene sensitivity of " + backbone.describe().substr(0, 44) +
                  "... on " + hw::target_name(target));
  for (const auto& gene : report) {
    if (gene.cardinality <= 1) continue;
    table.add_row({gene.name, std::to_string(gene.cardinality),
                   util::fmt_pct(gene.max_accuracy_drop, 2),
                   util::fmt_fixed(gene.max_energy_saving_j * 1e3, 2) + " mJ",
                   gene.max_energy_saving_j > 1e-9
                       ? util::fmt_fixed(gene.accuracy_per_joule * 100.0, 1)
                       : std::string("-")});
  }
  table.print(std::cout);
  return 0;
}

/// Fleet serve phase of `hadas portable`: deploy one searched design across
/// every serviceable fleet device, replay a Poisson trace through the
/// registry-wide failover plan, and fold the report's outcomes (dropouts,
/// breaker trips, final temperatures) back into device lifecycles.
int run_fleet_serve(const Args& args, core::MultiDeviceEngine& engine,
                    const core::MultiDeviceResult& result,
                    hw::fleet::FleetRegistry& registry,
                    const std::string& fleet_state_path) {
  if (result.pareto.empty())
    throw std::runtime_error("fleet serve: the search produced no designs");
  const std::size_t index = args.get_or("serve-index", std::size_t{0});
  const core::FleetDeployment deployment =
      engine.fleet_deployment(result, index);

  // Re-key the deployment (indexed by active_targets) by registry group id.
  std::vector<const dynn::MultiExitCostTable*> tables(registry.group_count(),
                                                      nullptr);
  std::vector<hw::DvfsSetting> settings(registry.group_count());
  std::size_t primary_group = 0;
  for (std::size_t i = 0; i < result.active_targets.size(); ++i)
    for (std::size_t g = 0; g < registry.group_count(); ++g)
      if (registry.group_target(g) == result.active_targets[i]) {
        tables[g] = deployment.tables[i].get();
        settings[g] = deployment.settings[i];
        if (i == 0) primary_group = g;
      }

  hw::FaultConfig fault_template;
  if (const auto faults = args.get("serve-faults"))
    fault_template = hw::parse_fault_config(*faults);
  const runtime::serve::FleetServePlan plan = runtime::serve::plan_fleet_lanes(
      registry, primary_group, tables, settings, fault_template);

  runtime::serve::ServeConfig serve_config;
  const runtime::serve::ServeSupervisor supervisor(*deployment.bank,
                                                   plan.lanes, serve_config);
  const auto ladder = runtime::serve::entropy_ladder(0.5, 0.15, 3);

  runtime::serve::TrafficConfig traffic;
  traffic.requests = args.get_or("serve-requests", std::size_t{400});
  traffic.arrival_rate_hz = args.get_or("serve-rate", 100.0);
  const data::SampleStream stream(engine.task(), 2000,
                                  args.get_or("stream-seed", std::size_t{5}));
  const auto trace = runtime::serve::poisson_trace(stream, traffic);

  std::cout << "serving design #" << index << " across " << plan.lanes.size()
            << " fleet lane(s) (" << trace.size() << " requests)...\n";
  const runtime::serve::ServeReport report = supervisor.run(
      deployment.placement, runtime::serve::ladder_view(ladder), trace);
  const std::size_t transitions =
      runtime::serve::apply_serve_report(registry, plan, report);
  std::cout << "served " << report.admitted << "/" << report.offered
            << " requests; " << report.failovers << " failover(s), "
            << report.devices_lost << " device(s) lost, " << transitions
            << " fleet lifecycle transition(s) applied\n";
  if (!fleet_state_path.empty()) {
    registry.save(fleet_state_path);
    std::cout << "fleet state -> " << fleet_state_path << "\n";
  }
  if (const auto out = args.get("serve-out")) {
    core::save_json(*out, report.to_json());
    std::cout << "serve report -> " << *out << "\n";
  }
  return 0;
}

int cmd_portable(const Args& args) {
  core::MultiDeviceConfig config;
  config.outer_population = args.get_or("pop", std::size_t{16});
  config.outer_generations = args.get_or("gens", std::size_t{5});
  config.inner_backbones = args.get_or("backbones", std::size_t{2});
  config.inner_nsga.population = args.get_or("ioe-pop", std::size_t{24});
  config.inner_nsga.generations = args.get_or("ioe-gens", std::size_t{14});
  config.data.train_size = args.get_or("train-size", std::size_t{1500});
  config.bank.train.epochs = args.get_or("epochs", std::size_t{8});
  config.seed = args.get_or("seed", std::size_t{4242});
  config.exec.threads = args.get_or("threads", config.exec.threads);
  const ObsOutputs obs_out = obs_setup(args);

  // Fleet mode: search over a BDF-addressed device registry (one
  // measurement context per device group) under the rolling chaos schedule,
  // instead of the fixed four-target list.
  std::optional<hw::fleet::FleetRegistry> fleet;
  const std::string fleet_state = args.get_or("fleet-state", std::string());
  if (args.get("fleet") || !fleet_state.empty()) {
    if (!fleet_state.empty() && std::ifstream(fleet_state).good()) {
      // Resume: the checkpoint carries the full config (chaos schedule
      // included), so the chaos flags of this invocation are ignored.
      fleet.emplace(hw::fleet::FleetRegistry::load(fleet_state));
      std::cout << "resumed fleet state from " << fleet_state << " (round "
                << fleet->round() << ")\n";
    } else {
      hw::fleet::FleetConfig fleet_config;
      fleet_config.devices = args.get_or("fleet", fleet_config.devices);
      fleet_config.seed =
          args.get_or("fleet-seed", std::size_t{fleet_config.seed});
      fleet_config.chaos.kill_per_round =
          args.get_or("kill-per-round", std::size_t{0});
      fleet_config.chaos.recover_per_round =
          args.get_or("recover-per-round", std::size_t{0});
      fleet_config.chaos.degrade_per_round =
          args.get_or("degrade-per-round", std::size_t{0});
      fleet_config.chaos.rounds = args.get_or("chaos-rounds", std::size_t{0});
      fleet_config.chaos.seed =
          args.get_or("chaos-seed", std::size_t{fleet_config.chaos.seed});
      fleet.emplace(std::move(fleet_config));
    }
    config.fleet = &*fleet;
    config.fleet_state_path = fleet_state;
    std::cout << "fleet: " << fleet->size() << " devices, "
              << fleet->serviceable_count() << " serviceable";
    if (fleet->config().chaos.active())
      std::cout << " (rolling chaos: " << fleet->config().chaos.kill_per_round
                << " kill / " << fleet->config().chaos.recover_per_round
                << " recover / " << fleet->config().chaos.degrade_per_round
                << " degrade per round, " << fleet->config().chaos.rounds
                << " rounds)";
    std::cout << "\n";
  } else {
    for (const char* flag : {"fleet-seed", "kill-per-round", "recover-per-round",
                             "degrade-per-round", "chaos-rounds", "chaos-seed",
                             "serve-requests", "serve-rate", "serve-faults",
                             "serve-index", "serve-out"})
      if (args.get(flag))
        throw std::invalid_argument("--" + std::string(flag) +
                                    " requires fleet mode (--fleet N or "
                                    "--fleet-state F)");
  }

  std::cout << "cross-device joint search (one backbone+exits, per-device"
               " DVFS)...\n";
  const supernet::SearchSpace space = parse_space(args);
  core::MultiDeviceEngine engine(space, config);
  const core::MultiDeviceResult result = engine.run();

  util::TextTable table({"#", "backbone", "exits", "dyn acc", "worst gain",
                         "mean gain"},
                        {util::Align::kRight, util::Align::kLeft,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight});
  table.set_title("portable Pareto designs (worst-device gain x accuracy)");
  for (std::size_t i = 0; i < result.pareto.size(); ++i) {
    const auto& sol = result.pareto[i];
    table.add_row({std::to_string(i),
                   "r" + std::to_string(sol.backbone.resolution) + "/" +
                       std::to_string(sol.backbone.total_layers()) + "L",
                   std::to_string(sol.placement.count()),
                   util::fmt_pct(sol.oracle_accuracy, 2),
                   util::fmt_pct(sol.worst_gain, 1),
                   util::fmt_pct(sol.mean_gain, 1)});
  }
  table.print(std::cout);
  if (fleet)
    std::cout << "fleet after search: " << fleet->serviceable_count() << "/"
              << fleet->size() << " serviceable, " << result.fleet_rounds
              << " chaos round(s), " << result.fleet_restarts
              << " membership restart(s)\n";
  if (const auto out = args.get("out")) {
    core::save_json(*out, core::multi_device_result_to_json(result));
    std::cout << "result -> " << *out << "\n";
  }

  int code = 0;
  if (args.get("serve-requests") || args.get("serve-out"))
    code = run_fleet_serve(args, engine, result, *fleet, fleet_state);
  obs_write(obs_out);
  return code;
}

int cmd_metrics_dump(const Args& args) {
  if (args.positional().empty())
    throw std::invalid_argument(
        "usage: hadas metrics-dump <metrics.json> [--format table|prom]");
  const std::string path = args.positional().front();
  const util::Json snapshot = core::load_json(path);
  const std::string format = args.get_or("format", std::string("table"));

  if (format == "prom") {
    std::cout << obs::MetricsRegistry::prometheus_from_json(snapshot);
    return 0;
  }
  if (format != "table")
    throw std::invalid_argument("unknown --format '" + format +
                                "' (expected table or prom)");

  util::TextTable table({"metric", "kind", "value"},
                        {util::Align::kLeft, util::Align::kLeft,
                         util::Align::kRight});
  table.set_title("metrics snapshot: " + path);
  if (snapshot.contains("counters"))
    for (const auto& [name, value] : snapshot.at("counters").as_object())
      table.add_row({name, "counter", std::to_string(value.as_index())});
  if (snapshot.contains("gauges"))
    for (const auto& [name, value] : snapshot.at("gauges").as_object())
      table.add_row({name, "gauge", util::fmt_fixed(value.as_number(), 4)});
  if (snapshot.contains("histograms"))
    for (const auto& [name, hist] : snapshot.at("histograms").as_object())
      table.add_row({name, "histogram",
                     std::to_string(hist.at("count").as_index()) + " obs, sum " +
                         util::fmt_fixed(hist.at("sum").as_number(), 4)});
  table.print(std::cout);
  return 0;
}

int cmd_client(const Args& args) {
  net::ClientConfig config;
  config.connect = args.get_hostport("connect");
  config.session_id = args.get_or("session", std::string("default"));
  config.state_path = args.get_or(
      "state", "hadas_client_" + config.session_id + ".json");
  config.traffic.requests = args.get_or("requests", std::size_t{1000});
  config.traffic.arrival_rate_hz = args.get_or("rate", 100.0);
  config.traffic.seed = args.get_or("trace-seed", std::size_t{0x5E21});
  config.batch = args.get_or("batch", config.batch);
  if (config.batch == 0 || config.batch > net::kMaxRequestBatch)
    throw std::invalid_argument(
        "invalid value '" + std::to_string(config.batch) +
        "' for --batch (a request batch must fit one wire frame: 1.." +
        std::to_string(net::kMaxRequestBatch) + ")");
  config.max_connect_attempts =
      args.get_or("retries", config.max_connect_attempts);
  config.reconnect_backoff_ms = static_cast<int>(args.get_or(
      "backoff-ms", std::size_t(config.reconnect_backoff_ms)));

  net::TcpSocketHandler handler;
  net::ServeClient client(handler, config);
  std::cout << "session '" << config.session_id << "' -> "
            << config.connect.host << ":" << config.connect.port
            << " (" << config.traffic.requests << " requests at "
            << util::fmt_fixed(config.traffic.arrival_rate_hz, 0)
            << " req/s)\n";
  client.run();
  std::cout << "done (" << client.reconnects() << " reconnects); server "
            << client.server_fingerprint() << "\n";

  // The report arrives pre-rendered (pretty JSON + newline); write the raw
  // bytes so the file byte-compares against `hadas serve --out`.
  if (const auto out = args.get("out")) {
    std::ofstream file(*out, std::ios::binary);
    if (!file)
      throw std::runtime_error("cannot open --out file '" + *out + "'");
    file << client.report();
    std::cout << "serve report -> " << *out << "\n";
  } else {
    std::cout << client.report();
  }
  return 0;
}

void print_usage() {
  std::cout << "usage: hadas <command> [options]\n\n"
               "commands:\n"
               "  devices                      list hardware targets\n"
               "  device examine|validate|reset  manage a fleet device\n"
               "         [--device BDF|all]    address one device (or every one)\n"
               "         [--fleet N]           fleet size when provisioning fresh\n"
               "         [--fleet-seed S] [--fleet-state F]\n"
               "  baselines --device D         evaluate a0..a6 on a device\n"
               "  search --device D --out F    run a bi-level search\n"
               "         [--resume F|auto]     warm-start from a saved result,\n"
               "                               or 'auto' = continue from the\n"
               "                               --checkpoint chain\n"
               "         [--space attentive|ofa] [--max-latency-ms T]\n"
               "         [--checkpoint F]      save/resume generation snapshots\n"
               "         [--checkpoint-every N] [--checkpoint-keep K]\n"
               "         [--faults CFG]        inject faults, e.g.\n"
               "                               rate=0.05,noise=0.01,nan=0.01\n"
               "         [--threads N]         worker threads (0 = auto)\n"
               "         [--metrics-out F]     write a metrics snapshot JSON\n"
               "         [--trace-out F]       write a Chrome trace_event JSON\n"
               "         [--dist K]            island-model distributed search\n"
               "         [--dist-workdir DIR]  durable state of the dist run\n"
               "         [--dist-mode spawn|inline|net] worker subprocesses\n"
               "                               (default), in-process reference\n"
               "                               mode, or remote workers\n"
               "         [--listen HOST:PORT]  accept remote workers (net mode)\n"
               "         [--migrate-every N] [--migrants M]\n"
               "         [--heartbeat-ms T]    worker hang deadline\n"
               "         [--island-retries N]  failures before quarantine\n"
               "         [--fleet N [--fleet-seed S]] scope islands to fleet\n"
               "                               device groups (round-robin)\n"
               "  worker --spec F --island I   one island of a --dist search\n"
               "                               (spawned by the coordinator)\n"
               "  worker --connect HOST:PORT --island I [--state-dir DIR]\n"
               "                               dial a --listen coordinator from\n"
               "                               another machine\n"
               "  show F                       print a saved result\n"
               "  verify-checkpoint F          inspect a durable state file:\n"
               "                               search checkpoint, dist spec,\n"
               "                               migrant set, island result, net\n"
               "                               or dist-net session, serve\n"
               "                               journal, or fleet state\n"
               "  deploy --device D --result F simulate a saved design\n"
               "  sensitivity --device D       per-gene ablation of a design\n"
               "    (--baseline aN | --result F [--index I])\n"
               "  serve --device D             replay a traffic trace through a design\n"
               "    (--baseline aN | --result F [--index I])\n"
               "         [--requests N] [--rate HZ] [--queue CAP]\n"
               "         [--deadline-ms T] [--watchdog FACTOR]\n"
               "         [--degraded on|off] [--thermal on|off]\n"
               "         [--faults CFG] [--failover D2 [--failover-faults CFG]]\n"
               "         [--journal F]        periodic durable snapshot + resume\n"
               "         [--journal-every N] [--journal-keep K]\n"
               "         [--threads N] [--metrics-out F] [--trace-out F]\n"
               "         [--out F]            save the full serve report JSON\n"
               "  metrics-dump F               print a --metrics-out snapshot\n"
               "         [--format table|prom] table (default) or Prometheus text\n"
               "  portable                     cross-device joint search\n"
               "         [--fleet N]           search a BDF-addressed fleet\n"
               "                               (one context per device group)\n"
               "         [--fleet-seed S] [--fleet-state F]\n"
               "         [--kill-per-round K --recover-per-round R\n"
               "          --degrade-per-round D --chaos-rounds N\n"
               "          [--chaos-seed S]]    rolling-death schedule\n"
               "         [--out F]             save the full result JSON\n"
               "         [--serve-requests N [--serve-rate HZ]\n"
               "          [--serve-index I] [--serve-faults CFG]\n"
               "          [--serve-out F]]     serve a design fleet-wide after\n"
               "                               the search, with failover\n"
               "         [--threads N] [--metrics-out F] [--trace-out F]\n"
               "  client --connect HOST:PORT   stream a trace to a hadasd daemon\n"
               "         [--session ID]        resumable session identity\n"
               "         [--state F]           durable client journal path\n"
               "         [--requests N] [--rate HZ] [--trace-seed S]\n"
               "         [--retries N] [--backoff-ms T]\n"
               "         [--out F]             save the returned serve report\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    // Deterministic fault-injection schedule for crash-recovery testing;
    // no-op unless HADAS_CHAOS is set (see src/exec/chaos.hpp).
    exec::ChaosEngine::install_from_env();
    if (command == "help" || command == "--help") {
      print_usage();
      return 0;
    }
    const auto flags = command_flags().find(command);
    if (flags == command_flags().end()) {
      std::cerr << "unknown command '" << command << "'\n";
      print_usage();
      return 2;
    }
    const Args args(argc, argv, 2, "hadas " + command, flags->second);
    if (command == "devices") return cmd_devices();
    if (command == "device") return cmd_device(args);
    if (command == "baselines") return cmd_baselines(args);
    if (command == "search") return cmd_search(args);
    if (command == "worker") return cmd_worker(args);
    if (command == "show") return cmd_show(args);
    if (command == "verify-checkpoint") return cmd_verify_checkpoint(args);
    if (command == "deploy") return cmd_deploy(args);
    if (command == "sensitivity") return cmd_sensitivity(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "metrics-dump") return cmd_metrics_dump(args);
    if (command == "portable") return cmd_portable(args);
    if (command == "client") return cmd_client(args);
    std::cerr << "unknown command '" << command << "'\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
