#!/usr/bin/env python3
"""CI perf gate for bench_parallel_scaling.

Usage: check_perf_baseline.py <bench_out/parallel_scaling.json> <baseline.json>

Fails (exit 1) when:
  * the bench result is missing, unparsable, or not fingerprint-identical
    across thread counts (the bench itself also exits non-zero on that), or
  * the fastest single-thread run is more than `regression_tolerance`
    (default 15%) slower than the committed baseline seconds.

The durable-format header line ("%HADAS-DURABLE ...") is stripped before
JSON parsing. Prints a one-line verdict either way so the CI log shows the
measured number next to the bound.
"""

import json
import sys


def load_json(path: str):
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    lines = [ln for ln in text.splitlines() if not ln.startswith("%")]
    return json.loads("\n".join(lines))


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    result = load_json(argv[1])
    baseline = load_json(argv[2])

    if not result.get("all_identical", False):
        print("perf-smoke: FAIL — fronts not bit-identical across thread counts")
        return 1

    single = [r["seconds"] for r in result.get("runs", [])
              if r.get("threads") == 1]
    if not single:
        print("perf-smoke: FAIL — no single-thread run in bench output")
        return 1
    measured = min(single)

    ref = float(baseline["single_thread_seconds"])
    tol = float(baseline.get("regression_tolerance", 0.15))
    bound = ref * (1.0 + tol)
    if measured > bound:
        print(f"perf-smoke: FAIL — single-thread {measured:.2f}s exceeds "
              f"{bound:.2f}s (baseline {ref:.2f}s + {tol:.0%})")
        return 1
    print(f"perf-smoke: OK — single-thread {measured:.2f}s within "
          f"{bound:.2f}s (baseline {ref:.2f}s + {tol:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
