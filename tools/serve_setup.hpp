// Shared CLI plumbing for the hadas front ends (`hadas`, `hadasd`): flag
// parsing, device/space lookup, observability sinks, and the serve stack —
// engine + trained exit bank + cost tables + policy ladder + lanes +
// supervisor — built from one flag set so `hadas serve`, `hadasd` and a
// remote `hadas client` all describe the same deterministic run and their
// reports byte-compare.

#pragma once

#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/hadas_engine.hpp"
#include "core/serialize.hpp"
#include "data/sample_stream.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/serve/supervisor.hpp"
#include "supernet/baselines.hpp"
#include "util/strutil.hpp"

namespace hadas::tools {

inline const std::map<std::string, hw::Target>& device_map() {
  static const std::map<std::string, hw::Target> map = {
      {"agx-gpu", hw::Target::kAgxVoltaGpu},
      {"agx-cpu", hw::Target::kCarmelCpu},
      {"tx2-gpu", hw::Target::kTx2PascalGpu},
      {"tx2-cpu", hw::Target::kDenverCpu},
  };
  return map;
}

inline hw::Target parse_device(const std::string& name) {
  const auto it = device_map().find(name);
  if (it == device_map().end())
    throw std::invalid_argument("unknown device '" + name +
                                "' (try: hadas devices)");
  return it->second;
}

/// Minimal flag parser: --key value pairs after the subcommand, checked
/// against the subcommand's allowed flag set so a typo'd --flag fails
/// loudly instead of being silently ignored.
class Args {
 public:
  Args(int argc, char** argv, int start, const std::string& command,
       const std::set<std::string>& allowed) {
    for (int i = start; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        positional_.push_back(key);
        continue;
      }
      key = key.substr(2);
      if (!allowed.count(key))
        throw std::invalid_argument("unknown option --" + key + " for '" +
                                    command + "' (see: help)");
      if (i + 1 >= argc)
        throw std::invalid_argument("missing value for --" + key);
      values_[key] = argv[++i];
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt
                               : std::optional<std::string>(it->second);
  }
  std::string get_or(const std::string& key, const std::string& fallback) const {
    return get(key).value_or(fallback);
  }
  std::size_t get_or(const std::string& key, std::size_t fallback) const {
    const auto v = get(key);
    return v ? util::parse_size("--" + key, *v) : fallback;
  }
  double get_or(const std::string& key, double fallback) const {
    const auto v = get(key);
    return v ? util::parse_double("--" + key, *v) : fallback;
  }
  /// Strict host:port flag (e.g. --listen, --connect); rejection messages
  /// name the flag.
  util::HostPort get_hostport(const std::string& key) const {
    const auto v = get(key);
    if (!v) throw std::invalid_argument("missing required --" + key);
    return util::parse_hostport("--" + key, *v);
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Observability file sinks requested on the command line. Requesting
/// either output turns the obs master switch on (and the trace sink for
/// --trace-out); results themselves are unaffected — instrumentation is
/// strictly observe-only.
struct ObsOutputs {
  std::string metrics_path;
  std::string trace_path;
};

inline ObsOutputs obs_setup(const Args& args) {
  ObsOutputs out;
  out.metrics_path = args.get_or("metrics-out", std::string());
  out.trace_path = args.get_or("trace-out", std::string());
  if (!out.metrics_path.empty() || !out.trace_path.empty())
    obs::set_enabled(true);
  if (!out.trace_path.empty()) obs::TraceSink::global().enable();
  return out;
}

inline void obs_write(const ObsOutputs& out) {
  if (!out.metrics_path.empty()) {
    obs::write_metrics_file(out.metrics_path);
    std::cout << "metrics -> " << out.metrics_path << "\n";
  }
  if (!out.trace_path.empty()) {
    obs::TraceSink::global().save(out.trace_path);
    std::cout << "trace (" << obs::TraceSink::global().size() << " events) -> "
              << out.trace_path << "\n";
  }
}

inline supernet::SearchSpace parse_space(const Args& args) {
  const std::string name = args.get_or("space", std::string("attentive"));
  if (name == "attentive") return supernet::SearchSpace::attentive_nas();
  if (name == "ofa") return supernet::SearchSpace::once_for_all();
  throw std::invalid_argument("unknown --space '" + name +
                              "' (attentive | ofa)");
}

/// The flags ServeStack consumes — shared verbatim by `hadas serve` and
/// `hadasd` so both ends of the wire can be launched with the same set.
inline const std::set<std::string>& serve_stack_flags() {
  static const std::set<std::string> flags = {
      "device",   "result",          "index",    "baseline", "policy",
      "threshold", "queue",          "deadline-ms", "watchdog", "degraded",
      "faults",   "failover",        "failover-faults", "thermal",
      "train-size", "epochs",        "space",    "stream-seed", "threads"};
  return flags;
}

/// Everything a serving front end needs, built once from CLI flags: the
/// engine (which trains the exit bank), cost tables, placement + DVFS
/// setting, the policy ladder, serving lanes (with optional failover
/// replica), the sample stream, and the supervisor itself. The fingerprint
/// canonically describes the resolved stack; hadasd sends it in WELCOME so
/// a resuming client refuses a daemon whose configuration changed.
class ServeStack {
 public:
  explicit ServeStack(const Args& args) {
    target = parse_device(args.get_or("device", "tx2-gpu"));
    policy_name = args.get_or("policy", std::string("entropy"));

    // The design to serve: a saved search result (--result/--index) or a
    // named baseline backbone with a canonical two-exit placement.
    if (const auto baseline_name = args.get("baseline")) {
      bool found = false;
      for (const auto& baseline : supernet::attentive_nas_baselines())
        if (baseline.name == *baseline_name) {
          backbone = baseline.config;
          found = true;
        }
      if (!found)
        throw std::invalid_argument("unknown --baseline '" + *baseline_name +
                                    "'");
    } else {
      const std::string result_path =
          args.get_or("result", std::string("hadas_result.json"));
      const std::size_t index = args.get_or("index", std::size_t{0});
      const auto solutions =
          core::final_pareto_from_json(core::load_json(result_path));
      if (index >= solutions.size())
        throw std::invalid_argument("--index out of range (have " +
                                    std::to_string(solutions.size()) +
                                    " designs)");
      backbone = solutions[index].backbone;
      placement = solutions[index].placement;
      setting = solutions[index].setting;
    }

    core::HadasConfig config;
    config.data.train_size = args.get_or("train-size", std::size_t{1500});
    config.bank.train.epochs = args.get_or("epochs", std::size_t{8});
    const supernet::SearchSpace space = parse_space(args);
    engine = std::make_unique<core::HadasEngine>(space, target, config);

    std::cout << "training exit bank for the served design...\n";
    bank = &engine->exit_bank(backbone);
    costs = &engine->cost_table(backbone);
    if (!placement) {
      // Canonical placement for baselines: exits at ~1/3 and ~2/3 depth.
      const std::size_t layers = bank->total_layers();
      const std::size_t early =
          std::max(dynn::ExitPlacement::kFirstEligible, layers / 3);
      const std::size_t late = std::max(early + 1, 2 * layers / 3);
      placement.emplace(layers, std::vector<std::size_t>{early, late});
    }
    if (!setting) setting = hw::default_setting(costs->evaluator().device());

    // Policy ladder: level 0 serves normal mode; entropy ladders shift the
    // threshold up per degraded level (cheaper exits).
    threshold = args.get_or("threshold", 0.5);
    if (policy_name == "oracle") {
      ladder.push_back(std::make_unique<runtime::OraclePolicy>());
    } else if (policy_name == "confidence") {
      ladder.push_back(std::make_unique<runtime::ConfidencePolicy>(threshold));
    } else if (policy_name == "entropy") {
      ladder = runtime::serve::entropy_ladder(threshold, 0.15, 3);
    } else {
      throw std::invalid_argument("unknown --policy '" + policy_name + "'");
    }

    // Serving lanes: the target device, plus an optional failover replica.
    runtime::serve::ServeLane primary{costs, *setting, hw::FaultConfig{}};
    if (const auto faults = args.get("faults"))
      primary.faults = hw::parse_fault_config(*faults);
    lanes.push_back(primary);
    if (const auto failover = args.get("failover")) {
      failover_eval.emplace(hw::make_device(parse_device(*failover)));
      failover_costs.emplace(costs->network(), *failover_eval);
      runtime::serve::ServeLane replica{
          &*failover_costs, hw::default_setting(failover_eval->device()),
          hw::FaultConfig{}};
      if (const auto faults = args.get("failover-faults"))
        replica.faults = hw::parse_fault_config(*faults);
      lanes.push_back(replica);
    }

    serve_config.admission.queue_capacity =
        args.get_or("queue", std::size_t{0});
    serve_config.slo.deadline_s = args.get_or("deadline-ms", 0.0) * 1e-3;
    serve_config.watchdog.overrun_factor = args.get_or("watchdog", 0.0);
    serve_config.degraded.enabled =
        args.get_or("degraded", std::string("off")) == "on";
    serve_config.thermal_enabled =
        args.get_or("thermal", std::string("off")) == "on";
    serve_config.journal.path = args.get_or("journal", std::string());
    serve_config.journal.every = args.get_or("journal-every", std::size_t{64});
    serve_config.journal.keep = args.get_or("journal-keep", std::size_t{3});
    serve_config.exec.threads =
        args.get_or("threads", serve_config.exec.threads);

    stream = std::make_unique<data::SampleStream>(
        engine->task(), 2000, args.get_or("stream-seed", std::size_t{5}));
    supervisor = std::make_unique<runtime::serve::ServeSupervisor>(
        *bank, lanes, serve_config);

    // Canonical description of the resolved stack. Every knob that changes
    // the report is included, so equal fingerprints imply byte-equal runs.
    std::string exits;
    for (const std::size_t layer : placement->positions())
      exits += std::to_string(layer) + ".";
    fingerprint =
        "hadas-serve|dev=" + hw::target_name(target) +
        "|bb=" + backbone.describe() + "|exits=" + exits +
        "|dvfs=" + std::to_string(setting->core_idx) + ":" +
        std::to_string(setting->emc_idx) + "|policy=" + policy_name + ":" +
        util::fmt_fixed(threshold, 6) +
        "|queue=" + std::to_string(serve_config.admission.queue_capacity) +
        "|deadline=" + util::fmt_fixed(serve_config.slo.deadline_s, 6) +
        "|watchdog=" + util::fmt_fixed(serve_config.watchdog.overrun_factor, 3) +
        "|degraded=" + (serve_config.degraded.enabled ? "on" : "off") +
        "|thermal=" + (serve_config.thermal_enabled ? "on" : "off") +
        "|faults=" + args.get_or("faults", std::string()) +
        "|failover=" + args.get_or("failover", std::string()) + ":" +
        args.get_or("failover-faults", std::string()) +
        "|stream=" + std::to_string(stream->size()) + ":" +
        std::to_string(args.get_or("stream-seed", std::size_t{5})) +
        "|threads=" + std::to_string(serve_config.exec.threads);
  }

  std::vector<const runtime::ExitPolicy*> ladder_view() const {
    return runtime::serve::ladder_view(ladder);
  }

  hw::Target target{};
  std::string policy_name;
  double threshold = 0.5;
  supernet::BackboneConfig backbone;
  std::unique_ptr<core::HadasEngine> engine;
  const dynn::ExitBank* bank = nullptr;
  const dynn::MultiExitCostTable* costs = nullptr;
  std::optional<dynn::ExitPlacement> placement;
  std::optional<hw::DvfsSetting> setting;
  std::vector<std::unique_ptr<runtime::ExitPolicy>> ladder;
  std::optional<hw::HardwareEvaluator> failover_eval;
  std::optional<dynn::MultiExitCostTable> failover_costs;
  std::vector<runtime::serve::ServeLane> lanes;
  runtime::serve::ServeConfig serve_config;
  std::unique_ptr<data::SampleStream> stream;
  std::unique_ptr<runtime::serve::ServeSupervisor> supervisor;
  std::string fingerprint;
};

}  // namespace hadas::tools
