// hadasd — the networked serving daemon.
//
//   hadasd --listen host:port [--state-dir DIR] [--once N] [stack flags]
//   hadasd --loopback [--requests N] [--rate HZ] [--out F] [stack flags]
//
// The daemon builds the same serve stack `hadas serve` would (same flags,
// same deterministic report) and serves it to any number of concurrent
// `hadas client` sessions over the resumable wire protocol: clients can be
// killed, reconnected or severed mid-frame and still receive a report
// byte-identical to an uninterrupted local run.
//
// --loopback runs a daemon and one client in-process over the deterministic
// fake network (no TCP, optionally with --flaky N seeded severs) — the
// quickest way to see the protocol end to end, and what CI drives.

#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>

#include "exec/chaos.hpp"
#include "net/client.hpp"
#include "net/fake_socket.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "runtime/serve/bridge.hpp"
#include "serve_setup.hpp"

using namespace hadas;
using tools::Args;

namespace {

net::ServeDaemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_stop();
}

const std::set<std::string>& daemon_flags() {
  static std::set<std::string> flags = [] {
    std::set<std::string> set = tools::serve_stack_flags();
    for (const char* extra :
         {"listen", "state-dir", "once", "loopback", "flaky", "flaky-seed",
          "requests", "rate", "trace-seed", "session", "out", "metrics-out",
          "trace-out"})
      set.insert(extra);
    return set;
  }();
  return flags;
}

void print_usage() {
  std::cout
      << "usage: hadasd (--listen HOST:PORT | --loopback on) [options]\n\n"
         "  --listen HOST:PORT     accept hadas client sessions over TCP\n"
         "  --state-dir DIR        session journal directory (default .)\n"
         "  --once N               exit after N completed sessions\n"
         "  --loopback on          serve one in-process client over the\n"
         "                         deterministic fake network instead of TCP\n"
         "    [--requests N] [--rate HZ] [--trace-seed S] [--session ID]\n"
         "    [--flaky N] [--flaky-seed S]  sever the first N connections\n"
         "    [--out F]            save the loopback client's report\n"
         "  serve stack flags (as for `hadas serve`):\n"
         "    --device D, --baseline aN | --result F [--index I],\n"
         "    --policy P, --threshold T, --queue CAP, --deadline-ms T,\n"
         "    --watchdog FACTOR, --degraded on|off, --thermal on|off,\n"
         "    --faults CFG, --failover D2, --train-size N, --epochs N,\n"
         "    --space S, --stream-seed S, --threads N\n"
         "  --metrics-out F, --trace-out F\n";
}

int run_loopback(const Args& args, const tools::ServeStack& stack,
                 const runtime::serve::SupervisorBridge& bridge,
                 const std::string& state_dir) {
  auto network = std::make_shared<net::FakeNetwork>();
  net::FakeSocketHandler handler(network);

  net::DaemonConfig daemon_config;
  daemon_config.listen = {"loopback", 1};
  daemon_config.state_dir = state_dir;
  daemon_config.once = 1;
  net::ServeDaemon daemon(handler, bridge, daemon_config);
  daemon.start();

  net::ClientConfig client_config;
  client_config.connect = {"loopback", 1};
  client_config.session_id = args.get_or("session", std::string("loopback"));
  client_config.state_path =
      state_dir + "/client-" + client_config.session_id + ".json";
  client_config.traffic.requests = args.get_or("requests", std::size_t{1000});
  client_config.traffic.arrival_rate_hz = args.get_or("rate", 100.0);
  client_config.traffic.seed = args.get_or("trace-seed", std::size_t{0x5E21});

  net::FlakyConfig flaky;
  flaky.severs = args.get_or("flaky", std::size_t{0});
  flaky.seed = args.get_or("flaky-seed", std::size_t{0x5EFEED});
  net::FlakySocketHandler chaos(handler, flaky);
  net::ServeClient client(flaky.severs > 0
                              ? static_cast<net::SocketHandler&>(chaos)
                              : static_cast<net::SocketHandler&>(handler),
                          client_config);

  std::cout << "loopback session '" << client_config.session_id << "': "
            << client_config.traffic.requests << " requests"
            << (flaky.severs > 0
                    ? " with " + std::to_string(flaky.severs) + " severs"
                    : "")
            << "...\n";
  // Deterministic cooperative interleaving — the same schedule every run.
  while (!client.done()) {
    client.step();
    daemon.step();
  }
  std::cout << "session complete (" << client.reconnects()
            << " reconnects, " << chaos.severed() << " severs)\n";

  if (const auto out = args.get("out")) {
    std::ofstream file(*out, std::ios::binary);
    if (!file)
      throw std::runtime_error("cannot open --out file '" + *out + "'");
    file << client.report();
    std::cout << "serve report -> " << *out << "\n";
  }
  (void)stack;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    exec::ChaosEngine::install_from_env();
    if (argc >= 2 && (std::string(argv[1]) == "help" ||
                      std::string(argv[1]) == "--help")) {
      print_usage();
      return 0;
    }
    const Args args(argc, argv, 1, "hadasd", daemon_flags());
    const bool loopback =
        args.get_or("loopback", std::string("off")) != "off";
    if (!loopback && !args.get("listen")) {
      print_usage();
      return 2;
    }

    // Validate the endpoint before the (expensive) stack build, so a
    // malformed --listen fails in milliseconds with an error naming it.
    std::optional<util::HostPort> listen;
    if (!loopback) listen = args.get_hostport("listen");

    const std::string state_dir = args.get_or("state-dir", std::string("."));
    std::filesystem::create_directories(state_dir);

    const tools::ObsOutputs obs_out = tools::obs_setup(args);
    const tools::ServeStack stack(args);
    const runtime::serve::SupervisorBridge bridge(
        *stack.supervisor, *stack.placement, stack.ladder_view(),
        *stack.stream, stack.fingerprint);

    int rc = 0;
    if (loopback) {
      rc = run_loopback(args, stack, bridge, state_dir);
    } else {
      net::DaemonConfig daemon_config;
      daemon_config.listen = *listen;
      daemon_config.state_dir = state_dir;
      daemon_config.once = args.get_or("once", std::size_t{0});
      net::TcpSocketHandler handler;
      net::ServeDaemon daemon(handler, bridge, daemon_config);
      daemon.start();
      g_daemon = &daemon;
      std::signal(SIGINT, handle_signal);
      std::signal(SIGTERM, handle_signal);
      // Flushed immediately: the banner is a readiness signal supervisors
      // and tests wait on, and stdout is fully buffered when redirected.
      std::cout << "hadasd listening on " << listen->host << ":"
                << listen->port << " (state in " << state_dir << ")\n"
                << "serving " << stack.fingerprint << std::endl;
      daemon.run();
      g_daemon = nullptr;
      std::cout << "hadasd: " << daemon.sessions_completed()
                << " sessions completed\n";
    }
    tools::obs_write(obs_out);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
