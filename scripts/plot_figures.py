#!/usr/bin/env python3
"""Plot the paper's figures from the bench CSV dumps.

Usage:
    python3 scripts/plot_figures.py [bench_out_dir] [output_dir]

Requires matplotlib. Each bench binary writes its series under bench_out/
(see README); this script turns them into PNGs shaped like the paper's
figures:
  fig1_motivation.png   - Fig. 1 stage-wise accuracy/energy bars
  fig5_ooe_<dev>.png    - Fig. 5 top row (static Pareto fronts vs a0..a6)
  fig5_ioe_<dev>.png    - Fig. 5 bottom row (IOE clouds + fronts)
  fig6_hv_rod.png       - Fig. 6 hypervolume and ratio-of-dominance bars
  fig7_dissim.png       - Fig. 7 dissimilarity ablation
"""

import csv
import pathlib
import sys

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")


def read_csv(path):
    with open(path) as handle:
        return list(csv.DictReader(handle))


def pareto_front(points):
    """Non-dominated subset (maximize both axes), sorted by x."""
    front = [
        p
        for p in points
        if not any(q[0] >= p[0] and q[1] >= p[1] and q != p for q in points)
    ]
    return sorted(set(front))


def plot_fig1(src, out):
    path = src / "fig1_motivation.csv"
    if not path.exists():
        return
    rows = read_csv(path)
    fig, (ax_acc, ax_energy) = plt.subplots(1, 2, figsize=(9, 3.2))
    models = [r["model"] for r in rows]
    x = range(len(models))
    ax_acc.bar([i - 0.2 for i in x], [float(r["acc_static"]) * 100 for r in rows],
               width=0.4, label="static")
    ax_acc.bar([i + 0.2 for i in x], [float(r["acc_dyn"]) * 100 for r in rows],
               width=0.4, label="dynamic (oracle)")
    ax_acc.set_xticks(list(x), models, rotation=15)
    ax_acc.set_ylabel("accuracy (%)")
    ax_acc.legend()
    for i, key, label in ((-0.27, "e_static_mj", "Static"),
                          (0.0, "e_dyn_mj", "Dyn"),
                          (0.27, "e_dyn_hw_mj", "Dyn w/ HW")):
        ax_energy.bar([j + i for j in x], [float(r[key]) for r in rows],
                      width=0.25, label=label)
    ax_energy.set_xticks(list(x), models, rotation=15)
    ax_energy.set_ylabel("energy (mJ)")
    ax_energy.legend()
    fig.suptitle("Fig. 1 — motivational example (TX2 Pascal GPU)")
    fig.tight_layout()
    fig.savefig(out / "fig1_motivation.png", dpi=150)
    plt.close(fig)


def plot_fig5_ooe(src, out):
    for path in sorted(src.glob("fig5_ooe_*.csv")):
        rows = read_csv(path)
        fig, ax = plt.subplots(figsize=(4.2, 3.4))
        hadas = [r for r in rows if r["source"] == "hadas"]
        ax.scatter([float(r["energy_mj"]) for r in hadas],
                   [float(r["accuracy"]) * 100 for r in hadas],
                   s=8, alpha=0.4, label="explored")
        front = [r for r in hadas if r["on_front"] == "1"]
        front_pts = sorted((float(r["energy_mj"]), float(r["accuracy"]) * 100)
                           for r in front)
        if front_pts:
            ax.plot([p[0] for p in front_pts], [p[1] for p in front_pts],
                    "o-", color="tab:red", label="HADAS front")
        base = [r for r in rows if r["source"].startswith("a")]
        ax.scatter([float(r["energy_mj"]) for r in base],
                   [float(r["accuracy"]) * 100 for r in base],
                   marker="^", color="k", label="a0..a6")
        for r in base:
            ax.annotate(r["source"], (float(r["energy_mj"]),
                                      float(r["accuracy"]) * 100), fontsize=7)
        ax.set_xlabel("energy (mJ)")
        ax.set_ylabel("accuracy (%)")
        ax.set_title(path.stem.replace("fig5_ooe_", "Fig.5 top: "))
        ax.legend(fontsize=7)
        fig.tight_layout()
        fig.savefig(out / (path.stem + ".png"), dpi=150)
        plt.close(fig)


def plot_fig5_ioe(src, out):
    for path in sorted(src.glob("fig5_points_*.csv")):
        rows = read_csv(path)
        fig, ax = plt.subplots(figsize=(4.2, 3.4))
        for source, color in (("hadas", "tab:blue"), ("baseline", "tab:orange")):
            pts = [(float(r["energy_gain"]) * 100, float(r["mean_n"]) * 100)
                   for r in rows if r["source"] == source]
            ax.scatter([p[0] for p in pts], [p[1] for p in pts], s=4, alpha=0.15,
                       color=color)
            front = pareto_front(pts)
            ax.plot([p[0] for p in front], [p[1] for p in front], "o-",
                    color=color, markersize=3,
                    label=("HADAS" if source == "hadas" else "opt. baselines"))
        ax.set_xlabel("energy efficiency gain (%)")
        ax.set_ylabel("average N_i (%)")
        ax.set_title(path.stem.replace("fig5_points_", "Fig.5 bottom: "))
        ax.legend(fontsize=7)
        fig.tight_layout()
        fig.savefig(out / (path.stem.replace("points", "ioe") + ".png"), dpi=150)
        plt.close(fig)


def plot_fig6(src, out):
    path = src / "fig6_hv_rod.csv"
    if not path.exists():
        return
    rows = read_csv(path)
    fig, (ax_hv, ax_rod) = plt.subplots(1, 2, figsize=(9, 3.2))
    devices = [r["device"] for r in rows]
    x = range(len(devices))
    for ax, key_h, key_b, title in ((ax_hv, "hv_hadas", "hv_baseline", "hypervolume"),
                                    (ax_rod, "rod_hadas", "rod_baseline",
                                     "ratio of dominance")):
        ax.bar([i - 0.2 for i in x], [float(r[key_h]) for r in rows], width=0.4,
               label="HADAS")
        ax.bar([i + 0.2 for i in x], [float(r[key_b]) for r in rows], width=0.4,
               label="opt. baselines")
        ax.set_xticks(list(x), [d.split()[0] + "\n" + d.split()[-1] for d in devices],
                      fontsize=7)
        ax.set_title(title)
        ax.legend(fontsize=7)
    fig.suptitle("Fig. 6 — search efficacy")
    fig.tight_layout()
    fig.savefig(out / "fig6_hv_rod.png", dpi=150)
    plt.close(fig)


def plot_fig7(src, out):
    path = src / "fig7_dissim.csv"
    if not path.exists():
        return
    rows = read_csv(path)
    fig, ax = plt.subplots(figsize=(4.8, 3.2))
    gammas = [float(r["gamma"]) for r in rows]
    ax.plot(gammas, [float(r["hv_with"]) for r in rows], "o-", label="HV with dissim")
    ax.plot(gammas, [float(r["hv_without"]) for r in rows], "s--",
            label="HV without dissim")
    ax.set_xscale("log", base=2)
    ax.set_xlabel("gamma")
    ax.set_ylabel("hypervolume")
    ax.set_title("Fig. 7 — dissimilarity ablation")
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(out / "fig7_dissim.png", dpi=150)
    plt.close(fig)


def main():
    src = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "bench_out")
    out = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "bench_out/plots")
    out.mkdir(parents=True, exist_ok=True)
    plot_fig1(src, out)
    plot_fig5_ooe(src, out)
    plot_fig5_ioe(src, out)
    plot_fig6(src, out)
    plot_fig7(src, out)
    print(f"plots written to {out}")


if __name__ == "__main__":
    main()
